"""Figure 13: overall performance vs AutoDSE.

Paper headline (geomean speedup over untuned AutoDSE):
  suite overlays  : 1.21x (DSP), 1.13x (MachSuite), 1.25x (Vision)
  vs *tuned* AD   : 0.71x, 0.37x, 0.65x
  workload overlays reach mean 1.45x untuned AD; the General overlay is
  comparable on DSP/MachSuite and ~0.68x on Vision.

Shape assertions: suite overlays are competitive with (>= ~0.7x) untuned
AutoDSE everywhere and beat it in aggregate; tuned AutoDSE beats every
overlay class; the General overlay trails the specialized ones.
"""

import pytest

from repro.harness import (
    fig13_geomeans,
    fig13_overall,
    geomean,
    render_table,
)

#: Full-DSE sweeps: deselect with -m 'not tier2' for the fast path.
pytestmark = pytest.mark.tier2


#: Paper geomeans: suite-OG vs untuned AD, and suite-OG vs *tuned* AD.
PAPER_GEOMEANS = {
    "dsp": {"suite_og": 1.21, "vs_tuned": 0.71},
    "machsuite": {"suite_og": 1.13, "vs_tuned": 0.37},
    "vision": {"suite_og": 1.25, "vs_tuned": 0.65},
}


def test_fig13_overall_performance(once):
    rows = once(fig13_overall)
    print()
    print(
        render_table(
            ["workload", "suite", "tuned-AD", "general-OG", "suite-OG", "w/l-OG"],
            [
                (
                    r.workload, r.suite,
                    f"{r.tuned_ad:.2f}x",
                    f"{r.general_og:.2f}x" if r.general_og else "n/a",
                    f"{r.suite_og:.2f}x",
                    f"{r.workload_og:.2f}x",
                )
                for r in rows
            ],
            title="Fig. 13: speedup over untuned AutoDSE",
        )
    )
    means = fig13_geomeans(rows)
    print()
    print(
        render_table(
            ["suite", "metric", "paper", "measured"],
            [
                (s, "suite-OG vs untuned AD",
                 f"{PAPER_GEOMEANS[s]['suite_og']:.2f}x",
                 f"{means[s]['suite_og']:.2f}x")
                for s in means
            ]
            + [
                (s, "suite-OG vs tuned AD",
                 f"{PAPER_GEOMEANS[s]['vs_tuned']:.2f}x",
                 f"{means[s]['suite_og'] / means[s]['tuned_ad']:.2f}x")
                for s in means
            ],
            title="Fig. 13 geomeans: paper vs measured",
        )
    )
    # Shape: overlays are competitive with untuned AutoDSE...
    for suite, m in means.items():
        assert m["suite_og"] >= 0.55, suite
    assert geomean([m["suite_og"] for m in means.values()]) >= 0.95
    # ...but manual tuning flips the result to AutoDSE (paper Q1/Q2).
    for suite, m in means.items():
        assert m["suite_og"] < m["tuned_ad"], suite
    # The General overlay trails specialization (fewer tiles fit).
    for suite, m in means.items():
        assert m["general_og"] <= m["suite_og"] * 1.05, suite


def test_fig13_workload_overlays_beat_general(once):
    rows = once(fig13_overall)
    wl = geomean([r.workload_og for r in rows if r.workload_og > 0])
    gen = geomean([r.general_og for r in rows if r.general_og > 0])
    assert wl > gen