"""Figure 16: FPGA resource breakdown.

Paper: (a) every generated overlay consumes 81-97% of LUTs — LUTs are the
limiting resource, the DSE greedily consumes the device, and the NoC is
among the biggest components at high tile counts; (b) AutoDSE designs use
far less (mostly under ~35% LUT) since generality is not their goal.
"""

import pytest

from repro.harness import fig16_autodse, fig16_overlays, render_table

#: Full-DSE sweeps: deselect with -m 'not tier2' for the fast path.
pytestmark = pytest.mark.tier2



def test_fig16_overlay_breakdown(once):
    rows = once(fig16_overlays)
    print()
    print(
        render_table(
            ["design", "LUT", "FF", "BRAM", "DSP", "pe", "n/w", "vp",
             "spad", "dma", "core", "noc"],
            [
                (
                    r.label, f"{r.lut:.0%}", f"{r.ff:.0%}", f"{r.bram:.0%}",
                    f"{r.dsp:.0%}",
                    *(f"{r.by_category[c]:.0%}" for c in
                      ("pe", "n/w", "vp", "spad", "dma", "core", "noc")),
                )
                for r in rows
            ],
            title="Fig. 16a: overlay resource occupation (fraction of device)",
        )
    )
    for r in rows:
        # LUTs are the limiting resource for every overlay...
        assert r.lut >= max(r.ff, r.bram, r.dsp), r.label
        # ...and the DSE fills most of the device (paper: 81-97%).
        assert r.lut > 0.6, r.label
        assert r.lut <= 1.0, r.label
    # At high tile counts the NoC is a major LUT component (paper Q4).
    assert any(r.by_category["noc"] > 0.05 for r in rows)


def test_fig16_autodse_breakdown(once):
    rows = once(fig16_autodse)
    print()
    print(
        render_table(
            ["kernel", "LUT", "FF", "BRAM", "DSP"],
            [
                (r.label, f"{r.lut:.1%}", f"{r.ff:.1%}", f"{r.bram:.1%}",
                 f"{r.dsp:.1%}")
                for r in rows
            ],
            title="Fig. 16b: AutoDSE (tuned) resource occupation",
        )
    )
    # AutoDSE consumes far fewer resources than the overlays.
    assert max(r.lut for r in rows) < 0.65
    assert sum(r.lut for r in rows) / len(rows) < 0.25