"""Table IV: HLS initiation intervals before/after manual kernel tuning.

These are the paper's measured Merlin/Vivado IIs, which our HLS baseline
model encodes; the benchmark verifies the table regenerates exactly and
that the modeled designs actually exhibit the II change.
"""

from repro.harness import render_table, table4_hls_ii
from repro.hls import evaluate_design
from repro.workloads import get_workload

PAPER_TABLE4 = {
    "cholesky": (10, 5),
    "crs": (4, 2),
    "fft": (2, 1),
    "bgr2grey": (9, 1),
    "blur": (6, 1),
    "channel-ext": (8, 1),
    "stencil-3d": (6, 1),
}


def test_table4_hls_ii(once):
    rows = once(table4_hls_ii)
    print()
    print(
        render_table(
            ["workload", "cause", "untuned II", "tuned II"],
            [
                (r["workload"], r["cause"], r["untuned_ii"], r["tuned_ii"])
                for r in rows
            ],
            title="Table IV: HLS initiation interval optimization",
        )
    )
    measured = {r["workload"]: (r["untuned_ii"], r["tuned_ii"]) for r in rows}
    assert measured == PAPER_TABLE4
    # The designs the explorer produces really run at those IIs.
    for name, (untuned_ii, tuned_ii) in PAPER_TABLE4.items():
        w = get_workload(name)
        assert evaluate_design(w, 1, tuned=False).ii == untuned_ii
        assert evaluate_design(w, 1, tuned=True).ii == tuned_ii
