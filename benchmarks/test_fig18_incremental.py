"""Figure 18: incremental design optimization (MachSuite).

Paper: adding workloads one at a time, the per-tile datapath grows (more
general PEs/ports/network) and the tile count falls from 15 to 10, at a
mean ~8% performance cost for the earlier workloads.
"""

import pytest

from repro.harness import (
    FIG18_ORDER,
    fig18_generality_cost,
    fig18_incremental,
    memoized,
    render_table,
)

#: Full-DSE sweeps: deselect with -m 'not tier2' for the fast path.
pytestmark = pytest.mark.tier2



def test_fig18_incremental(once):
    rows = once(fig18_incremental)
    print()
    print(
        render_table(
            ["added", "#workloads", "tiles", "LUT/tile", "datapath/tile",
             "geomean est IPC"],
            [
                (
                    r.added, r.num_workloads, r.tiles,
                    f"{r.lut_per_tile_fraction:.1%}",
                    f"{r.datapath_fraction:.1%}",
                    f"{r.geomean_ipc:.0f}",
                )
                for r in rows
            ],
            title="Fig. 18: incremental workload addition (MachSuite)",
        )
    )
    assert [r.added for r in rows] == [f"+{n}" for n in FIG18_ORDER]
    first, last = rows[0], rows[-1]
    # Generality costs tiles: the count shrinks as workloads accumulate.
    assert last.tiles <= first.tiles
    # And each tile's datapath gets bigger/more general.
    assert last.lut_per_tile_fraction >= first.lut_per_tile_fraction * 0.9
    # Supporting the whole suite costs the first workload only modest
    # performance (paper: mean ~8% across the suite).
    retained = fig18_generality_cost()
    print(f"\n{FIG18_ORDER[0]} retains {retained:.0%} of its dedicated-"
          "overlay performance on the shared overlay (paper: ~92%)")
    assert retained > 0.5