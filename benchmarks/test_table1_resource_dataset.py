"""Table I: hardware modules synthesized to train the ML resource model.

Paper: 100,000 PEs, 56,700 switches, 34,412 input ports, 25,796 output
ports, feeding a 3-layer MLP with an 80/10/10 split.  We regenerate the
dataset (scaled for runtime), train the per-family MLPs, and report test
error per resource class.
"""

from repro.harness import render_table
from repro.model.resource import MlEstimator, TABLE1_COUNTS
from repro.model.resource.dataset import generate_all

#: Fraction of the paper's module counts actually synthesized per run.
SCALE = 0.05


def _build():
    datasets = generate_all(scale=SCALE)
    estimator = MlEstimator(dataset_scale=SCALE)
    return datasets, estimator


def test_table1_resource_dataset(once):
    datasets, estimator = once(_build)
    rows = []
    for family, paper_count in TABLE1_COUNTS.items():
        data = datasets[family]
        err = estimator.training_error[family]
        rows.append(
            (
                family,
                paper_count,
                len(data.features),
                f"{err['lut']:.1%}",
                f"{err['ff']:.1%}",
                f"{err['dsp']:.1%}",
            )
        )
    print()
    print(
        render_table(
            ["family", "paper #synth", "ours #synth", "LUT err", "FF err", "DSP err"],
            rows,
            title="Table I: ML resource-model training set",
        )
    )
    # Model must be usable: LUT prediction within 25% on held-out test data.
    for family in TABLE1_COUNTS:
        assert estimator.training_error[family]["lut"] < 0.25, family
    # Dataset proportions follow the paper's counts.
    assert len(datasets["pe"].features) > len(datasets["switch"].features)
    assert len(datasets["switch"].features) > len(datasets["in_port"].features)
