"""Figure 11: stream-table one-hot bypass.

Paper: a flip-flop-based stream table creates a bubble when only one
stream is active — issue rate drops to one every two cycles; the one-hot
bypass forwards the updated entry combinationally and doubles the rate.
"""

from repro.sim import BandwidthPool, EngineSim, PortFifo, StreamState


def _issue_rate(onehot: bool, cycles: int = 400) -> float:
    port = PortFifo("p", capacity=1e9)
    engine = EngineSim("dma", bandwidth_bytes=8, onehot_bypass=onehot)
    engine.add_stream(
        StreamState(
            name="s0",
            total_elements=1e9,
            elements_per_cycle_cap=1.0,
            port=port,
            is_read=True,
            element_bytes=8,
        )
    )
    moved = 0.0
    for now in range(cycles):
        moved += engine.step(now)
    return moved / cycles


def test_fig11_onehot_bypass(once):
    with_bypass, without = once(lambda: (_issue_rate(True), _issue_rate(False)))
    print()
    print("Fig. 11: single-stream issue rate")
    print(f"  without one-hot bypass : {without:.3f} issues/cycle (paper: 0.5)")
    print(f"  with one-hot bypass    : {with_bypass:.3f} issues/cycle (paper: 1.0)")
    assert abs(without - 0.5) < 0.02
    assert abs(with_bypass - 1.0) < 0.02
    # The bypass exactly doubles single-stream issue rate (Fig. 11b).
    assert abs(with_bypass / without - 2.0) < 0.1


def test_fig11_multi_stream_needs_no_bypass(once):
    def build():
        port_a = PortFifo("a", capacity=1e9)
        port_b = PortFifo("b", capacity=1e9)
        engine = EngineSim("dma", bandwidth_bytes=16, onehot_bypass=False)
        for name, port in (("s0", port_a), ("s1", port_b)):
            engine.add_stream(
                StreamState(
                    name=name,
                    total_elements=1e9,
                    elements_per_cycle_cap=1.0,
                    port=port,
                    is_read=True,
                    element_bytes=8,
                )
            )
        moved = 0.0
        for now in range(400):
            moved += engine.step(now)
        return moved / 400

    rate = once(build)
    print(f"\n  two active streams, no bypass: {rate:.3f} elements/cycle")
    # With >= 2 ready streams the table pipelines naturally: no bubble.
    assert rate > 1.9
