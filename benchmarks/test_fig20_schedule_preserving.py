"""Figure 20: the effect of schedule-preserving transformations.

Paper: with node collapsing / edge-delay preservation / capability pruning
enabled, the DSE converges faster (mean 15% less DSE time) to designs with
1.09x better estimated IPC.
"""

import pytest

import statistics

from repro.harness import fig20_schedule_preserving, render_series, render_table
from repro.workloads import SUITE_NAMES

#: Full-DSE sweeps: deselect with -m 'not tier2' for the fast path.
pytestmark = pytest.mark.tier2



def test_fig20_schedule_preserving(once):
    results = once(lambda: [fig20_schedule_preserving(s) for s in SUITE_NAMES])
    print()
    print(
        render_table(
            ["suite", "IPC (preserved)", "IPC (non-preserved)",
             "IPC ratio", "time (p)", "time (np)"],
            [
                (
                    r.suite,
                    f"{r.preserved_ipc:.1f}", f"{r.nonpreserved_ipc:.1f}",
                    f"{r.ipc_improvement:.2f}x",
                    f"{r.preserved_hours:.1f}h", f"{r.nonpreserved_hours:.1f}h",
                )
                for r in results
            ],
            title="Fig. 20: schedule-preserving transforms "
            "(paper: 1.09x IPC, 15% less DSE time)",
        )
    )
    for r in results:
        tail = r.preserved_history[-6:]
        print(
            render_series(
                f"{r.suite} estimated-IPC trajectory (preserved, last points)",
                [(f"@{h:.1f}h" , ipc) for _, h, ipc in tail],
            )
        )
    ratios = [r.ipc_improvement for r in results]
    # Preserving transforms never hurt the converged design quality much
    # (annealing noise makes individual suites wobble)...
    assert min(ratios) > 0.7
    # ...and help in aggregate (paper: mean 1.09x estimated IPC).
    assert statistics.geometric_mean(ratios) > 1.0
    # Both configurations produce hours-scale DSE runs.
    for r in results:
        assert r.preserved_hours > 1.0 and r.nonpreserved_hours > 1.0