"""Figure 15: DSE and synthesis time comparison.

Paper: AutoDSE totals 52.6h (DSP), 69.2h (MachSuite), 92.8h (Vision) for
per-kernel designs; OverGen's suite DSE builds ONE overlay covering the
whole suite in ~47% of the combined time.  Times here are modeled
toolchain costs (see TimeModel / AutoDSE cost constants), so the shape —
one overlay DSE is far cheaper than per-kernel AutoDSE — is the claim.
"""

import pytest

from repro.harness import fig15_dse_time, fig15_summary, render_table

#: Full-DSE sweeps: deselect with -m 'not tier2' for the fast path.
pytestmark = pytest.mark.tier2


PAPER_TOTALS = {"dsp": 52.6, "machsuite": 69.2, "vision": 92.8}


def test_fig15_dse_time(once):
    rows = once(fig15_dse_time)
    print()
    print(
        render_table(
            ["suite", "design", "DSE h", "synth h", "total h"],
            [
                (r.suite, r.label, f"{r.dse_hours:.1f}", f"{r.synth_hours:.1f}",
                 f"{r.total_hours:.1f}")
                for r in rows
            ],
            title="Fig. 15: DSE + synthesis time (modeled hours)",
        )
    )
    summary = fig15_summary(rows)
    print()
    print(
        render_table(
            ["suite", "AutoDSE total (paper)", "AutoDSE total (ours)",
             "OverGen suite"],
            [
                (s, f"{PAPER_TOTALS[s]:.1f}h",
                 f"{summary[f'{s}_autodse_h']:.1f}h",
                 f"{summary[f'{s}_overgen_h']:.1f}h")
                for s in PAPER_TOTALS
            ],
            title="Fig. 15 summary (paper fraction: 47%, ours: "
            f"{summary['fraction']:.0%})",
        )
    )
    # The single suite overlay costs a fraction of per-kernel AutoDSE.
    assert summary["fraction"] < 0.6
    # And it is not trivially free: the DSE is hours-scale work.
    for s in PAPER_TOTALS:
        assert summary[f"{s}_overgen_h"] > 3.0
        # AutoDSE totals land in the paper's ballpark (tens of hours).
        assert 25.0 < summary[f"{s}_autodse_h"] < 150.0