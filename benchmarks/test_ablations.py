"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they isolate the value of each OverGen
mechanism on top of the baseline DSAGEN-style flow:

1. spatial memory topology vs a fully-connected memory crossbar (Fig. 4);
2. reuse-aware bottleneck modeling vs a reuse-blind model (Section IV);
3. the nested exhaustive system DSE vs fixed default system parameters;
4. pre-generated compilation variants vs recompiling every DSE iteration.
"""

import pytest

from repro.dse import DseConfig, TimeModel, explore
from repro.harness import render_table, suite_overlay
from repro.model.perf import estimate_ipc
from repro.model.resource import AnalyticEstimator
from repro.sim import simulate_schedule
from repro.workloads import get_suite

#: Full-DSE sweeps: deselect with -m 'not tier2' for the fast path.
pytestmark = pytest.mark.tier2



def test_ablation_spatial_memory_crossbar(once):
    """Fully connecting every engine to every port costs real area."""

    def build():
        res = suite_overlay("dsp")
        est = AnalyticEstimator()
        pruned_lut = est.tile(res.sysadg.adg).lut
        crossbar = res.sysadg.adg.clone()
        added = 0
        for engine in crossbar.engines:
            for port in crossbar.in_ports:
                if not crossbar.has_link(engine.node_id, port.node_id):
                    crossbar.add_link(engine.node_id, port.node_id)
                    added += 1
            for port in crossbar.out_ports:
                if not crossbar.has_link(port.node_id, engine.node_id):
                    crossbar.add_link(port.node_id, engine.node_id)
                    added += 1
        return pruned_lut, est.tile(crossbar).lut, added

    pruned, full, added = once(build)
    print(f"\nAblation 1 — spatial memory: pruned tile {pruned:,.0f} LUT, "
          f"full crossbar {full:,.0f} LUT (+{added} links, "
          f"{full / pruned - 1:+.1%})")
    assert full >= pruned  # crossbar can never be cheaper


def test_ablation_reuse_blind_model(once):
    """Without reuse annotations, the model grossly overstates bandwidth
    demand — fir's stationary filter tap alone is a 16x error source."""

    def build():
        res = suite_overlay("dsp")
        rows = []
        for name, schedule in res.schedules.items():
            aware = estimate_ipc(
                schedule.mdfg, schedule.binding(), res.sysadg.adg,
                res.sysadg.params,
            )
            blind = estimate_ipc(
                schedule.mdfg, schedule.binding(), res.sysadg.adg,
                res.sysadg.params, reuse_aware=False,
            )
            sim = simulate_schedule(schedule, res.sysadg)
            rows.append((name, aware.ipc, blind.ipc, sim.ipc))
        return rows

    rows = once(build)
    print()
    print(
        render_table(
            ["workload", "reuse-aware est", "reuse-blind est", "simulated"],
            [(n, f"{a:.1f}", f"{b:.1f}", f"{s:.1f}") for n, a, b, s in rows],
            title="Ablation 2 — reuse-aware vs reuse-blind performance model",
        )
    )
    # The blind model never predicts higher throughput, and for at least
    # one kernel it is badly pessimistic versus simulation.
    for name, aware, blind, sim in rows:
        assert blind <= aware + 1e-6, name
    errors_blind = [abs(b - s) / s for _, _, b, s in rows]
    errors_aware = [abs(a - s) / s for _, a, _, s in rows]
    assert sum(errors_aware) < sum(errors_blind)


def test_ablation_fixed_system_params(once):
    """Skipping the nested system sweep (stock 1-tile parameters) forfeits
    most of the performance the system dimensions provide."""

    def build():
        nested = suite_overlay("vision")
        fixed = explore(
            get_suite("vision"),
            DseConfig(iterations=150, seed=2, max_tiles=1),
            name="vision-1tile",
        )
        return nested.choice.objective, fixed.choice.objective

    nested, fixed = once(build)
    print(f"\nAblation 3 — nested system DSE: objective {nested:.1f} "
          f"vs fixed single-tile {fixed:.1f} ({nested / fixed:.1f}x)")
    assert nested > fixed * 2


def test_ablation_pregenerated_variants(once):
    """Recompiling every DSE iteration would dominate exploration time;
    pre-generated variants amortize compilation to a one-time cost."""

    def build():
        res = suite_overlay("machsuite")
        tm = TimeModel()
        actual_h = res.modeled_seconds / 3600.0
        n_variants = sum(
            len(vs.variants) for vs in res.variant_sets.values()
        )
        recompile_h = (
            res.stats.iterations * len(res.variant_sets) * tm.full_compile
        ) / 3600.0 + actual_h
        return actual_h, recompile_h

    actual, recompile = once(build)
    print(f"\nAblation 4 — pre-generated variants: DSE {actual:.1f}h "
          f"vs recompile-per-iteration {recompile:.1f}h "
          f"({recompile / actual:.1f}x slower)")
    assert recompile > actual * 2