"""Figure 17: "leave-one-out" flexibility (MachSuite).

Paper: an overlay generated WITHOUT one workload can still map it with mean
~49.5% performance degradation; compiling to an existing overlay is ~10^4x
faster than the HLS flow, and reconfiguration is ~5x10^4x faster than
reflashing the FPGA.

Known divergence: our compiler vectorizes by widening SIMD lanes rather
than duplicating instructions, so overlays keep fewer (wider) PEs; the
17-instruction stencil-2d graph can fail to map on an overlay never
exposed to it.  The other shape claims hold.
"""

import pytest

from repro.harness import fig17_leave_one_out, render_table

#: Full-DSE sweeps: deselect with -m 'not tier2' for the fast path.
pytestmark = pytest.mark.tier2



def test_fig17_leave_one_out(once):
    rows = once(fig17_leave_one_out)
    print()
    print(
        render_table(
            ["left-out workload", "maps?", "perf vs suite-OG",
             "compile speedup", "reconfig speedup"],
            [
                (
                    r.workload,
                    "yes" if r.mapped else "NO",
                    f"{r.relative_performance:.0%}" if r.mapped else "-",
                    f"{r.compile_speedup:,.0f}x" if r.mapped else "-",
                    f"{r.reconfig_speedup:,.0f}x" if r.mapped else "-",
                )
                for r in rows
            ],
            title="Fig. 17: leave-one-out flexibility (paper: ~50% perf, "
            "10^4x compile, 5x10^4x reconfig)",
        )
    )
    mapped = [r for r in rows if r.mapped]
    # Most workloads map onto the overlay that never saw them.
    assert len(mapped) >= 3
    for r in mapped:
        # Modest degradation, not collapse (paper mean: ~50%).
        assert r.relative_performance > 0.3, r.workload
        # Compilation is about four orders of magnitude faster than HLS.
        assert 1e3 < r.compile_speedup < 1e6, r.workload
        # Reconfiguration is about 10^4-10^5x faster than a reflash.
        assert 1e4 < r.reconfig_speedup < 1e6, r.workload