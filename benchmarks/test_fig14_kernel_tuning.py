"""Figure 14: effect of manually tuned kernels across frameworks.

Paper: nine workloads benefit from kernel tuning; AutoDSE benefits far more
heavily (II fixes, line buffers, database configs) than OverGen, whose
ISA/compiler handle variable trip counts and strided access natively.
"""

import pytest

from repro.harness import fig14_tuning, geomean, render_table
from repro.hls import kernel_info

#: Full-DSE sweeps: deselect with -m 'not tier2' for the fast path.
pytestmark = pytest.mark.tier2



def test_fig14_kernel_tuning(once):
    rows = once(fig14_tuning)
    print()
    print(
        render_table(
            ["workload", "AD untuned", "AD tuned", "w/l-OG", "tuning cause"],
            [
                (
                    r.workload,
                    f"{r.ad_untuned:.2f}x",
                    f"{r.ad_tuned:.2f}x",
                    f"{r.wl_og:.2f}x",
                    kernel_info(r.workload).cause or "db/line-buffer",
                )
                for r in rows
            ],
            title="Fig. 14: speedup over vanilla (untuned) AutoDSE",
        )
    )
    # Tuning always helps AutoDSE on these kernels...
    for r in rows:
        assert r.ad_tuned >= r.ad_untuned, r.workload
    # ...and substantially in aggregate (paper: these are the kernels where
    # HLS needs source-level help).
    assert geomean([r.ad_tuned for r in rows]) > 1.8
    # OverGen handles the II-hostile patterns natively: on the workloads
    # whose only problem is variable trip counts or strided access, the
    # *untuned* overlay already beats *untuned* AutoDSE.
    native = [
        r for r in rows
        if kernel_info(r.workload).cause is not None
        and not kernel_info(r.workload).line_buffer
    ]
    assert geomean([r.wl_og for r in native]) > 1.0