"""Figure 19: effect of DRAM channel count.

Paper (via VCS RTL simulation): memory-intensive kernels gain from extra
DRAM channels — AutoDSE by mean ~25% on MachSuite, OverGen workload
overlays by mean ~19% on a similar kernel set; compute-bound kernels are
flat.
"""

import pytest

from repro.harness import fig19_dram_channels, geomean, render_table

#: Full-DSE sweeps: deselect with -m 'not tier2' for the fast path.
pytestmark = pytest.mark.tier2


#: Kernels the paper calls out as benefiting (element-wise/memory bound).
MEMORY_BOUND = (
    "mm", "vecmax", "accumulate", "acc-sqr", "acc-weight", "derivative",
    "channel-ext", "convert-bit",
)


def test_fig19_dram_channels(once):
    rows = once(fig19_dram_channels)
    print()
    print(
        render_table(
            ["workload", "OG x2", "OG x4", "AD x2", "AD x4"],
            [
                (
                    r.workload,
                    f"{r.og_speedup[2]:.2f}", f"{r.og_speedup[4]:.2f}",
                    f"{r.ad_speedup[2]:.2f}", f"{r.ad_speedup[4]:.2f}",
                )
                for r in rows
            ],
            title="Fig. 19: speedup vs single DRAM channel",
        )
    )
    by_name = {r.workload: r for r in rows}
    # More channels never hurt.
    for r in rows:
        assert r.og_speedup[4] >= r.og_speedup[2] >= 0.99, r.workload
        assert r.ad_speedup[4] >= r.ad_speedup[2] >= 0.99, r.workload
    # Memory-bound kernels benefit measurably on the overlay side
    # (paper: OG mean ~19% on its benefiting set).
    og_gain = geomean([by_name[n].og_speedup[4] for n in MEMORY_BOUND])
    assert og_gain > 1.1
    # Somebody benefits on the AutoDSE side too (paper: mean 25% on
    # MachSuite kernels).
    ad_gain = max(r.ad_speedup[4] for r in rows)
    assert ad_gain > 1.1