"""Table II: workload specifications (size, dtype, ports/arrays/op mix).

The port/array/op counts come from each workload's best compiled mDFG, as
in the paper.  We check dtypes and suite membership exactly and the
structural counts for plausibility (the best DFG depends on our compiler's
unroll choices, so absolute op counts differ from the paper's).
"""

from repro.harness import render_table, table2_workload_specs

#: Paper Table II dtypes (exact) for cross-checking.
PAPER_DTYPES = {
    "cholesky": "f64", "fft": "f32x2", "fir": "f64", "solver": "f64",
    "mm": "f64", "stencil-3d": "i64", "crs": "f64", "gemm": "i64",
    "stencil-2d": "i64", "ellpack": "f64", "channel-ext": "i16",
    "bgr2grey": "i16", "blur": "i16", "accumulate": "i16", "acc-sqr": "i16",
    "vecmax": "i16", "acc-weight": "i16", "convert-bit": "i16",
    "derivative": "i16",
}


def test_table2_workload_specs(once):
    rows = once(table2_workload_specs)
    printable = [
        (
            r["workload"], r["suite"], r["size"], r["type"],
            r["ivp"], r["ovp"], r["arr"],
            f"{r['mul']},{r['add']},{r['div']}",
        )
        for r in rows
    ]
    print()
    print(
        render_table(
            ["workload", "suite", "size", "type", "#ivp", "#ovp", "#arr", "#m,a,d"],
            printable,
            title="Table II: workload specification (best DFG)",
        )
    )
    assert len(rows) == 19
    for r in rows:
        assert r["type"] == PAPER_DTYPES[r["workload"]], r["workload"]
        assert 1 <= r["ivp"] <= 20
        assert 1 <= r["ovp"] <= 5
        assert 1 <= r["arr"] <= 6
    # Pure data movement: channel extract has no arithmetic.
    chan = next(r for r in rows if r["workload"] == "channel-ext")
    assert chan["mul"] == 0 and chan["div"] == 0
