"""Temporal multiplexing benchmark (extension of Q5's reconfiguration claim).

The paper argues that microsecond reconfiguration "enables efficient
temporal multiplexing at very fine time scales".  This bench cycles the
vision suite's kernels on one overlay — the realistic camera-pipeline
pattern (extract -> convert -> blur -> accumulate per frame) — and
quantifies reconfiguration overhead versus the reflash-per-kernel
alternative.
"""

import pytest

from repro.harness import render_table, suite_overlay
from repro.sim import run_sequence

#: Full-DSE sweeps: deselect with -m 'not tier2' for the fast path.
pytestmark = pytest.mark.tier2


PIPELINE = ("channel-ext", "bgr2grey", "blur", "accumulate")


def test_temporal_multiplexing(once):
    def build():
        res = suite_overlay("vision")
        schedules = [res.schedules[name] for name in PIPELINE]
        return res, run_sequence(schedules, res.sysadg, repeats=4)

    res, result = once(build)
    freq = res.sysadg.params.frequency_mhz
    og_seconds = result.seconds(freq)
    reflash_seconds = result.reflash_alternative_seconds(freq)
    print()
    print(
        render_table(
            ["metric", "value"],
            [
                ("kernels per pass", len(PIPELINE)),
                ("passes", 4),
                ("configuration switches", result.switches),
                ("compute cycles", f"{result.compute_cycles:,.0f}"),
                ("reconfig cycles", f"{result.reconfig_cycles:,.0f}"),
                ("reconfig overhead", f"{result.reconfig_overhead:.2%}"),
                ("wall time (overlay)", f"{og_seconds * 1e3:.2f} ms"),
                ("wall time (reflash/kernel)", f"{reflash_seconds:.1f} s"),
                ("multiplexing advantage",
                 f"{reflash_seconds / og_seconds:,.0f}x"),
            ],
            title="Temporal multiplexing: 4-stage vision pipeline x 4 frames",
        )
    )
    # Reconfiguration stays a small tax on one overlay...
    assert result.reconfig_overhead < 0.25
    # ...while reflash-per-kernel would be orders of magnitude slower.
    assert reflash_seconds / og_seconds > 1e3