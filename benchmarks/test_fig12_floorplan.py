"""Figure 12: quad-tile General overlay floorplan.

Paper: four General tiles fill the XCVU9P (three stacked dies), the DRAM
controller's fixed location pulls DMA paths toward the bottom die, and the
resulting clock is 92.87 MHz with the critical path in L2 MSHR logic.
"""

import pytest

from repro.adg import general_overlay
from repro.rtl import NUM_SLRS, estimated_frequency, floorplan


def test_fig12_floorplan(once):
    plan = once(lambda: floorplan(general_overlay()))
    print()
    print(plan.ascii_art())
    freq = estimated_frequency(plan)
    print(f"estimated clock: {freq:.1f} MHz (paper: 92.87 MHz)")
    assert len(plan.placements) == 4
    # Tiles spread over all three dies (the device is nearly full).
    assert len({p.slr for p in plan.placements}) == NUM_SLRS
    # Die crossings exist (the motivation for conservative pipelining).
    assert plan.die_crossings >= 2
    # Clock lands in the paper's neighborhood.
    assert 75.0 < freq < 110.0
    # Bottom die (nearest DRAM) is the fullest or tied.
    assert plan.slr_utilization[0] >= plan.slr_utilization[NUM_SLRS - 1] - 0.05


@pytest.mark.tier2
def test_fig12_suite_overlay_floorplans(once):
    from repro.harness import suite_overlay

    plans = once(
        lambda: [floorplan(suite_overlay(s).sysadg) for s in
                 ("dsp", "machsuite", "vision")]
    )
    print()
    for plan in plans:
        print(plan.ascii_art())
        print()
    for plan in plans:
        # Suite overlays fit more (smaller) tiles than General's 4.
        assert len(plan.placements) > 4
