"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison; expensive artifacts (DSE runs, simulations)
are memoized process-wide, so the suite shares work across benchmarks.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one timed invocation.

    The experiment drivers are deterministic and cached; timing repeated
    invocations would only measure the cache.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
