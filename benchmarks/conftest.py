"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison; expensive artifacts (DSE runs, simulations)
are memoized process-wide and overlays additionally persist across
sessions via the :mod:`repro.engine` artifact store, so a warm-cache rerun
performs zero DSE iterations.  Run with ``pytest benchmarks/
--benchmark-only``; the DSE-heavy modules are marked ``tier2``, so
``-m "not tier2"`` keeps only the fast microbenchmarks.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one timed invocation.

    The experiment drivers are deterministic and cached; timing repeated
    invocations would only measure the cache.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print engine + cache hit/miss accounting at session end."""
    from repro.harness.cache import default_cache
    from repro.harness.experiments import peek_engine

    mem = default_cache().stats()
    terminalreporter.write_line(
        f"repro cache (memory): {mem['entries']} entries, "
        f"{mem['hits']} hits / {mem['misses']} misses"
    )
    engine = peek_engine()
    if engine is not None:
        terminalreporter.write_line("repro " + engine.stats.summary())
        if engine.store is not None:
            disk = engine.store.stats.as_dict()
            terminalreporter.write_line(
                f"repro artifact store ({engine.cache_dir}): "
                f"{disk['hits']} hits / {disk['misses']} misses / "
                f"{disk['puts']} puts"
            )
