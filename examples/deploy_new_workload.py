#!/usr/bin/env python3
"""Deploy a NEW application onto an overlay that has never seen it.

The usability pitch of the paper (Fig. 1 and Q5): once an overlay exists
for a domain, a new application in that domain needs only a software
compile (seconds) and a reconfiguration (microseconds) — versus hours or
days of HLS + synthesis + a full bitstream reflash.

We generate an overlay for four MachSuite kernels, then bring up ellpack —
which the DSE never saw — on it.

Run:  python examples/deploy_new_workload.py
"""

import time

from repro.compiler import generate_variants
from repro.dse import DseConfig, explore
from repro.hls import run_autodse
from repro.scheduler import schedule_workload
from repro.sim import simulate_schedule
from repro.workloads import get_suite, get_workload

NEW_APP = "ellpack"


def main() -> None:
    domain = [w for w in get_suite("machsuite") if w.name != NEW_APP]
    print(f"domain: {', '.join(w.name for w in domain)}")
    print("generating the domain overlay (one-time cost) ...")
    result = explore(domain, DseConfig(iterations=150, seed=2),
                     name="machsuite-domain")
    print(f"  overlay: {result.sysadg.summary()}")
    print(f"  one-time DSE+synthesis: {result.modeled_hours:.1f} modeled hours")

    # ---- a new application arrives ------------------------------------
    print(f"\nnew application: {NEW_APP}")
    new_workload = get_workload(NEW_APP)

    wall = time.perf_counter()
    variants = generate_variants(new_workload)
    schedule = schedule_workload(variants, result.sysadg.adg,
                                 result.sysadg.params)
    compile_wall = time.perf_counter() - wall
    if schedule is None:
        print("  does not map on this overlay: rerun the DSE with it included")
        return

    # The compiler's advice on whether re-specializing would pay (Q5).
    from repro.compiler import advise

    advice = advise(new_workload, result.sysadg.adg, result.sysadg.params,
                    variants=variants)
    print("\n" + advice.summary())
    print(f"  compiled + spatially scheduled in {compile_wall*1000:.0f} ms "
          f"of real time (variant {schedule.mdfg.variant})")

    reconfig_cycles = 1000 + 4 * schedule.mdfg.config_words
    reconfig_us = reconfig_cycles / result.sysadg.params.frequency_mhz
    print(f"  reconfiguration: {schedule.mdfg.config_words} config words "
          f"-> {reconfig_us:.1f} us (an FPGA reflash takes >1 s)")

    sim = simulate_schedule(schedule, result.sysadg)
    og_seconds = sim.seconds(result.sysadg.params.frequency_mhz)
    print(f"  runs at IPC {sim.ipc:.1f}, {og_seconds*1e6:.1f} us per frame")

    # ---- versus the HLS route ------------------------------------------
    ad = run_autodse(new_workload, tuned=False)
    print(f"\nthe HLS route for {NEW_APP} would cost "
          f"{ad.total_hours:.1f} hours of DSE + synthesis and a bitstream "
          f"reflash, to run in {ad.design.seconds*1e6:.1f} us "
          f"({ad.design.seconds / og_seconds:.2f}x our overlay's time)")


if __name__ == "__main__":
    main()
