#!/usr/bin/env python3
"""Generate a domain-specific overlay for a whole workload suite.

This is the headline OverGen flow (Fig. 3): feed a *domain* of applications
to the unified spatial + system DSE, get back one overlay that runs all of
them, then lower it to RTL and floorplan it.

Run:  python examples/generate_suite_overlay.py [dsp|machsuite|vision]
"""

import sys

from repro.dse import DseConfig, explore
from repro.model.resource import XCVU9P, system_breakdown, system_resources
from repro.rtl import emit_system, estimated_frequency, floorplan, rtl_stats
from repro.sim import simulate_schedule
from repro.workloads import get_suite


def main(suite: str = "dsp") -> None:
    workloads = get_suite(suite)
    print(f"running OverGen DSE for the {suite} suite "
          f"({', '.join(w.name for w in workloads)}) ...")
    result = explore(
        workloads,
        DseConfig(iterations=150, seed=2),
        name=f"{suite}-OG",
    )

    print(f"\nchosen design: {result.sysadg.summary()}")
    print(f"modeled DSE time: {result.modeled_hours:.1f} h "
          f"(stats: {result.stats.accepted} accepted / "
          f"{result.stats.iterations} iterations, "
          f"{result.stats.preserved_hits} schedules preserved)")

    util = system_resources(result.sysadg).utilization(XCVU9P)
    print("\nFPGA utilization: "
          + "  ".join(f"{k.upper()} {v:.0%}" for k, v in util.items()))
    print("per-category LUT share:")
    for cat, res in system_breakdown(result.sysadg).items():
        print(f"  {cat:5s} {res.lut / XCVU9P.lut:6.1%}")

    print("\nper-workload performance on the overlay:")
    for w in workloads:
        schedule = result.schedules[w.name]
        sim = simulate_schedule(schedule, result.sysadg)
        print(f"  {w.name:12s} variant={schedule.mdfg.variant:8s} "
              f"IPC={sim.ipc:7.1f}  cycles={sim.cycles:10,.0f}")

    plan = floorplan(result.sysadg)
    print("\n" + plan.ascii_art())
    print(f"estimated clock: {estimated_frequency(plan):.1f} MHz")

    rtl = emit_system(result.sysadg)
    out_path = f"/tmp/{suite}_overlay.v"
    with open(out_path, "w") as f:
        f.write(rtl)
    print(f"\nemitted RTL: {out_path} ({rtl_stats(rtl)['modules']} modules, "
          f"{rtl_stats(rtl)['lines']} lines)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "dsp")
