#!/usr/bin/env python3
"""Bring your own kernel: define a new workload and generate its overlay.

Demonstrates the public IR builder (the stand-in for C + ``#pragma dsa``),
the compiler's reuse analysis, and a single-workload DSE — i.e. everything
a downstream user needs to target OverGen with code of their own.

The kernel is a batched AXPY-with-clamp: out[i] = min(alpha*x[i] + y[i], cap)

Run:  python examples/custom_workload.py
"""

from repro.compiler import analyze_workload, generate_variants
from repro.dse import DseConfig, explore
from repro.ir import F32, WorkloadBuilder, vmin
from repro.sim import simulate_schedule


def build_workload():
    wb = WorkloadBuilder("axpy-clamp", suite="custom", dtype=F32,
                         size_desc="64x4096")
    n, batches = 4096, 64
    x = wb.array("x", n * batches)
    y = wb.array("y", n * batches)
    out = wb.array("out", n * batches)
    coef = wb.array("coef", 2)  # alpha and the clamp value
    b = wb.loop("b", batches)
    i = wb.loop("i", n)
    idx = b * n + i
    wb.assign(out[idx], vmin(coef[0] * x[idx] + y[idx], coef[1]))
    return wb.build()


def main() -> None:
    workload = build_workload()
    print(f"workload: {workload.name} "
          f"({workload.trip_product:,} iterations, {workload.dtype})")

    # Reuse analysis: what the spatial-memory DSE will reason about.
    analysis = analyze_workload(workload)
    for access in analysis.accesses:
        print(f"  {access.array}: traffic={access.traffic:,} "
              f"footprint={access.footprint:,} "
              f"stationary={access.stationary_reuse}")

    variants = generate_variants(workload)
    print(f"\ncompiled {len(variants.variants)} variants; "
          f"best: {variants.best.summary()}")

    print("\nrunning single-workload DSE ...")
    result = explore([workload], DseConfig(iterations=80, seed=1),
                     name="axpy-OG")
    print(f"  {result.sysadg.summary()}")

    schedule = result.schedules[workload.name]
    sim = simulate_schedule(schedule, result.sysadg)
    seconds = sim.seconds(result.sysadg.params.frequency_mhz)
    print(f"\nsimulated {schedule.mdfg.variant}: IPC {sim.ipc:.1f}, "
          f"{sim.cycles:,.0f} cycles ({seconds*1e6:.1f} us)")
    est = result.choice.estimates[workload.name]
    print(f"model estimate: IPC {est.ipc:.1f}, bottleneck {est.bottleneck}")


if __name__ == "__main__":
    main()
