#!/usr/bin/env python3
"""Quickstart: compile a kernel, map it onto the General overlay, simulate.

This walks the whole OverGen stack in one page:

1. pick a workload (the paper's FIR running example),
2. compile it to a family of mDFG variants,
3. schedule the best variant onto the hand-designed General overlay,
4. simulate the mapped kernel cycle-accurately,
5. compare against the analytical performance model and the HLS baseline.

Run:  python examples/quickstart.py
"""

from repro.adg import general_overlay
from repro.compiler import generate_variants
from repro.hls import run_autodse
from repro.scheduler import schedule_workload
from repro.sim import simulate_schedule
from repro.workloads import get_workload


def main() -> None:
    # 1. The workload: a tiled FIR filter (Fig. 5 of the paper).
    workload = get_workload("fir")
    print(f"workload: {workload.name} ({workload.size_desc}, {workload.dtype})")
    print(f"  loops: {' > '.join(l.var for l in workload.loops)}")

    # 2. Compile: one mDFG per transformation variant (unroll x recurrence).
    variants = generate_variants(workload)
    print(f"  compiled {len(variants.variants)} mDFG variants:")
    for mdfg in variants.variants[:4]:
        print(f"    {mdfg.summary()}")

    # 3. The target: the 4-tile General overlay (Table III).
    overlay = general_overlay()
    print(f"\noverlay: {overlay.summary()}")

    # 4. Spatial scheduling picks the best variant that maps.
    schedule = schedule_workload(variants, overlay.adg, overlay.params)
    assert schedule is not None, "fir must map onto the General overlay"
    est = schedule.estimate
    print(f"\nscheduled: {schedule.summary()}")
    print(f"  projected IPC {est.ipc:.1f}, bottleneck: {est.bottleneck}")

    # 5. Cycle-level simulation of the mapped kernel.
    sim = simulate_schedule(schedule, overlay)
    seconds = sim.seconds(overlay.params.frequency_mhz)
    print(f"\nsimulated: {sim.cycles:,.0f} cycles "
          f"({seconds * 1e6:,.1f} us @ {overlay.params.frequency_mhz} MHz)")
    print(f"  achieved IPC {sim.ipc:.1f} "
          f"(model predicted {est.ipc:.1f})")

    # 6. The HLS baseline for perspective.
    ad = run_autodse(workload, tuned=False)
    print(f"\nAutoDSE baseline: {ad.design.cycles:,.0f} cycles "
          f"({ad.design.seconds * 1e6:,.1f} us @ {ad.design.frequency_mhz} MHz)"
          f" after {ad.total_hours:.1f} modeled hours of DSE+synthesis")
    print(f"  overlay speedup vs untuned AutoDSE: "
          f"{ad.design.seconds / seconds:.2f}x")


if __name__ == "__main__":
    main()
