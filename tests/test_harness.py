"""Tests for the experiment harness (cheap paths only; DSE-heavy drivers
are exercised by the benchmark suite)."""

import pytest

from repro.harness import (
    autodse,
    cache_size,
    clear_cache,
    geomean,
    memoized,
    render_series,
    render_table,
    table2_workload_specs,
    table4_hls_ii,
)


class TestCache:
    def test_memoized_builds_once(self):
        clear_cache()
        calls = []

        def builder():
            calls.append(1)
            return 42

        assert memoized(("k",), builder) == 42
        assert memoized(("k",), builder) == 42
        assert len(calls) == 1
        assert cache_size() >= 1

    def test_distinct_keys_distinct_builds(self):
        clear_cache()
        assert memoized(("a",), lambda: 1) == 1
        assert memoized(("b",), lambda: 2) == 2
        assert cache_size() == 2


class TestRendering:
    def test_render_table_aligns(self):
        text = render_table(["name", "value"], [("a", 1.0), ("bbbb", 22.5)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines[1:2])) == 1

    def test_render_table_title(self):
        text = render_table(["x"], [(1,)], title="T")
        assert text.startswith("T\n")

    def test_render_series(self):
        text = render_series("s", [("a", 1.0), ("b", 2.0)])
        assert "#" in text
        assert "a" in text and "b" in text

    def test_render_series_zero_safe(self):
        text = render_series("s", [("a", 0.0)])
        assert "a" in text

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, 4.0]) == pytest.approx(4.0)  # zeros skipped


class TestCheapDrivers:
    def test_table2_has_19_rows(self):
        rows = table2_workload_specs()
        assert len(rows) == 19
        assert {r["suite"] for r in rows} == {"dsp", "machsuite", "vision"}

    def test_table4_matches_kernel_info(self):
        rows = table4_hls_ii()
        names = {r["workload"] for r in rows}
        assert names == {
            "cholesky", "crs", "fft", "bgr2grey", "blur", "channel-ext",
            "stencil-3d",
        }
        for r in rows:
            assert r["untuned_ii"] > r["tuned_ii"] or r["tuned_ii"] == 1

    def test_autodse_driver_caches(self):
        a = autodse("fir", tuned=False)
        b = autodse("fir", tuned=False)
        assert a is b
