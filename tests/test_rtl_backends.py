"""Multi-backend RTL emission: registry, golden identity, parity.

The verilog backend is golden-gated: its output must stay byte-identical
to the pre-refactor emitter (captured in ``tests/golden/``).  The migen
backend must agree with it structurally — same module and instance
inventory for the same design — even though the surface syntax differs.
"""

from pathlib import Path

import pytest

from repro.adg import (
    SysADG,
    SystemParams,
    general_overlay,
    mesh_adg,
    seed_for_workloads,
    universal_caps,
)
from repro.rtl import (
    BACKENDS,
    Backend,
    MigenBackend,
    VerilogBackend,
    all_modules,
    backend_names,
    build_design,
    design_stats,
    emit_system,
    emit_tile,
    get_backend,
    register_backend,
)
from repro.workloads import SUITE_NAMES, get_suite

GOLDEN = Path(__file__).parent / "golden"


def small_mesh():
    return mesh_adg(
        1, 2, universal_caps(), width_bits=64,
        in_port_widths=[8], out_port_widths=[8],
    )


@pytest.fixture(scope="module")
def overlay():
    return general_overlay()


class TestRegistry:
    def test_both_backends_registered(self):
        assert backend_names() == ["migen", "verilog"]

    def test_get_backend_returns_instances(self):
        assert isinstance(get_backend("verilog"), VerilogBackend)
        assert isinstance(get_backend("migen"), MigenBackend)

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError, match="migen, verilog"):
            get_backend("vhdl")

    def test_duplicate_registration_rejected(self):
        class Imposter(Backend):
            name = "verilog"

        with pytest.raises(ValueError, match="duplicate RTL backend"):
            register_backend(Imposter)
        # The original registration is untouched.
        assert BACKENDS["verilog"] is VerilogBackend

    def test_reregistering_same_class_is_idempotent(self):
        assert register_backend(VerilogBackend) is VerilogBackend


class TestGoldenIdentity:
    """The refactored verilog backend is byte-identical to the original."""

    def test_system_matches_golden(self, overlay):
        golden = (GOLDEN / "general_overlay_system.v").read_text()
        assert emit_system(overlay) == golden

    def test_tile_matches_golden(self):
        golden = (GOLDEN / "small_mesh_tile.v").read_text()
        assert emit_tile(small_mesh()) == golden

    def test_backend_entry_point_agrees_with_wrapper(self, overlay):
        backend = get_backend("verilog")
        assert backend.emit_system(overlay) == emit_system(overlay)
        assert backend.emit_tile(small_mesh()) == emit_tile(small_mesh())


def _family_overlay(suite: str) -> SysADG:
    adg = seed_for_workloads(get_suite(suite))
    return SysADG(
        adg=adg, params=SystemParams(num_tiles=2), name=f"{suite}-seed"
    )


class TestCrossBackendParity:
    def test_inventories_match_on_general_overlay(self, overlay):
        design = build_design(overlay)
        stats = design_stats(design)
        for name in backend_names():
            backend = get_backend(name)
            inv = backend.text_inventory(backend.render_design(design))
            assert inv["modules"] == stats["modules"], name
            assert inv["instances"] == stats["instances"], name

    @pytest.mark.parametrize("suite", SUITE_NAMES)
    def test_inventories_match_per_family(self, suite):
        design = build_design(_family_overlay(suite))
        inventories = {
            name: get_backend(name).text_inventory(
                get_backend(name).render_design(design)
            )
            for name in backend_names()
        }
        assert inventories["verilog"] == inventories["migen"]
        assert inventories["verilog"]["modules"] > 2

    def test_deterministic_across_runs(self, overlay):
        for name in backend_names():
            backend = get_backend(name)
            assert backend.emit_system(overlay) == backend.emit_system(overlay)

    def test_design_stats_counts_ir_not_text(self, overlay):
        design = build_design(overlay)
        stats = design_stats(design)
        assert stats["modules"] == len(all_modules(design))
        assert stats["instances"] >= stats["modules"] - 2
        assert stats["ports"] > 0 and stats["wires"] > 0


class TestMigenSurface:
    def test_emits_python_classes(self, overlay):
        text = get_backend("migen").emit_system(overlay)
        assert "from migen import" in text
        assert "class OvergenSystem(Module):" in text
        assert "TOP = OvergenSystem" in text

    def test_clock_and_reset_are_implicit(self):
        text = get_backend("migen").emit_tile(small_mesh())
        # migen's sys clock domain provides clk/rst; they are not ports.
        assert "self.clk" not in text
        assert "self.rst" not in text

    def test_external_blocks_become_specials(self, overlay):
        text = get_backend("migen").emit_system(overlay)
        assert 'self.specials += Instance("rocket_core"' in text
        assert "p_ENDPOINTS" in text

    def test_extension(self):
        assert get_backend("migen").extension == ".py"
        assert get_backend("verilog").extension == ".v"
