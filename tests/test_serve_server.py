"""End-to-end tests for the overlay-compilation server.

Each test runs server + clients inside one ``asyncio.run`` on a unix
socket under ``tmp_path`` (one test covers localhost TCP).  Slow-compute
behaviours (admission control, deadlines) monkeypatch the worker entry
point and use the in-process thread executor (``workers=0``) so the
patch is visible to the worker.
"""

import asyncio
import time

import pytest

from repro.dse import DseConfig, explore
from repro.engine import MetricsLogger
from repro.serve import (
    DeadlineError,
    OverlayServer,
    ServeClient,
    ServeConfig,
    ServeError,
    ShuttingDownError,
    canonical_dumps,
    single_shot,
)
from repro.serve.client import ServeConnectionError
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def sysadg():
    result = explore(
        [get_workload("vecmax")],
        DseConfig(iterations=10, seed=4),
        name="vecmax",
    )
    return result.sysadg


def make_server(sysadg, tmp_path, **overrides):
    defaults = dict(
        socket_path=str(tmp_path / "serve.sock"),
        workers=0,           # thread executor: fast + monkeypatchable
        queue_limit=64,
        default_timeout_s=30.0,
        drain_timeout_s=10.0,
    )
    defaults.update(overrides)
    config = ServeConfig(**defaults)
    server = OverlayServer(config, metrics=MetricsLogger())
    server.add_overlay(sysadg)
    return server


def client_for(server):
    kind, where = server.endpoint
    if kind == "unix":
        return ServeClient(socket_path=where)
    return ServeClient(host=where[0], port=where[1])


def serve_test(server, body):
    """Run ``await body()`` between server start and graceful shutdown."""

    async def run():
        await server.start()
        try:
            return await body()
        finally:
            await server.shutdown()
            await asyncio.wait_for(server.wait_closed(), timeout=10)

    return asyncio.run(run())


class TestComputeOps:
    def test_map_estimate_simulate_match_single_shot(self, sysadg, tmp_path):
        refs = {
            op: canonical_dumps(single_shot(op, sysadg, "vecmax"))
            for op in ("map", "estimate", "simulate")
        }
        server = make_server(sysadg, tmp_path)

        async def body():
            async with client_for(server) as client:
                for op, ref in refs.items():
                    result = await client.request(op, workload="vecmax")
                    assert canonical_dumps(result) == ref, op

        serve_test(server, body)

    def test_served_results_byte_identical_to_cli_json(
        self, sysadg, tmp_path, capsys
    ):
        from repro.adg import save_sysadg
        from repro.cli import main

        design = tmp_path / "design.json"
        save_sysadg(sysadg, str(design))
        assert main(["map", str(design), "vecmax", "--json"]) == 0
        cli_map = capsys.readouterr().out.strip()
        assert main(["simulate", str(design), "vecmax", "--json"]) == 0
        cli_sim = capsys.readouterr().out.strip()

        server = make_server(sysadg, tmp_path)

        async def body():
            async with client_for(server) as client:
                served_map = await client.request("map", workload="vecmax")
                served_sim = await client.request(
                    "simulate", workload="vecmax"
                )
                assert canonical_dumps(served_map) == cli_map
                assert canonical_dumps(served_sim) == cli_sim

        serve_test(server, body)

    def test_tcp_endpoint(self, sysadg, tmp_path):
        server = make_server(sysadg, tmp_path, socket_path=None, port=0)

        async def body():
            kind, (host, port) = server.endpoint
            assert kind == "tcp" and port > 0
            async with ServeClient(host=host, port=port) as client:
                pong = await client.ping()
                assert pong["pong"] is True
                result = await client.request("map", workload="vecmax")
                assert result["workload"] == "vecmax"

        serve_test(server, body)

    def test_cache_tiers_and_metrics_events(self, sysadg, tmp_path):
        store_dir = tmp_path / "store"
        server = make_server(sysadg, tmp_path, cache_dir=str(store_dir))

        async def body():
            async with client_for(server) as client:
                first = await client.request_raw(
                    {"op": "map", "workload": "vecmax"}
                )
                again = await client.request_raw(
                    {"op": "map", "workload": "vecmax"}
                )
                assert first["served"]["cache"] == "compute"
                assert again["served"]["cache"] == "memory"
                assert first["result"] == again["result"]

        serve_test(server, body)
        events = server.metrics.of_type("request")
        assert len(events) == 2
        assert [e["cache"] for e in events] == ["compute", "memory"]
        assert server.metrics.of_type("serve_summary")

        # A fresh server over the same store answers from disk.
        server2 = make_server(sysadg, tmp_path, cache_dir=str(store_dir))

        async def body2():
            async with client_for(server2) as client:
                warm = await client.request_raw(
                    {"op": "map", "workload": "vecmax"}
                )
                assert warm["served"]["cache"] == "disk"

        serve_test(server2, body2)
        assert server2.counters["computes"] == 0

    def test_unmappable_is_structured_and_consistent(self, sysadg, tmp_path):
        ref = single_shot("map", sysadg, "cholesky")
        server = make_server(sysadg, tmp_path)

        async def body():
            async with client_for(server) as client:
                if ref is None:
                    with pytest.raises(ServeError) as err:
                        await client.request("map", workload="cholesky")
                    assert err.value.code == "unmappable"
                    # The negative answer memoizes: ask again, same code.
                    with pytest.raises(ServeError) as err2:
                        await client.request("map", workload="cholesky")
                    assert err2.value.code == "unmappable"
                else:
                    result = await client.request("map", workload="cholesky")
                    assert canonical_dumps(result) == canonical_dumps(ref)

        serve_test(server, body)


class TestBadRequests:
    def test_unknown_workload_and_overlay(self, sysadg, tmp_path):
        server = make_server(sysadg, tmp_path)

        async def body():
            async with client_for(server) as client:
                with pytest.raises(ServeError) as err:
                    await client.request("map", workload="not-a-workload")
                assert err.value.code == "bad_request"
                with pytest.raises(ServeError) as err:
                    await client.request(
                        "map", workload="vecmax", overlay="nope"
                    )
                assert err.value.code == "bad_request"

        serve_test(server, body)

    def test_malformed_line_answers_bad_request(self, sysadg, tmp_path):
        server = make_server(sysadg, tmp_path)

        async def body():
            _, path = server.endpoint
            reader, writer = await asyncio.open_unix_connection(path)
            writer.write(b"this is not json\n")
            await writer.drain()
            import json

            line = await asyncio.wait_for(reader.readline(), timeout=5)
            doc = json.loads(line)
            assert doc["ok"] is False
            assert doc["error"]["code"] == "bad_request"
            writer.close()

        serve_test(server, body)


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_compile(
        self, sysadg, tmp_path, monkeypatch
    ):
        calls = []
        release = __import__("threading").Event()

        def slow_compute(op, design_doc, workload):
            calls.append(op)
            release.wait(timeout=10)
            return {"op": op, "workload": workload, "slow": True}

        monkeypatch.setattr("repro.serve.server.compute_op", slow_compute)
        server = make_server(sysadg, tmp_path)

        async def body():
            async with client_for(server) as client:
                waiters = [
                    asyncio.ensure_future(
                        client.request("map", workload="vecmax")
                    )
                    for _ in range(12)
                ]
                await asyncio.sleep(0.1)  # all 12 join the same flight
                release.set()
                results = await asyncio.gather(*waiters)
            blobs = {canonical_dumps(r) for r in results}
            assert len(blobs) == 1

        serve_test(server, body)
        assert len(calls) == 1
        assert server.counters["computes"] == 1
        assert server.counters["coalesced"] == 11
        assert server.flights.stats.followers == 11

    def test_distinct_ops_do_not_coalesce(self, sysadg, tmp_path):
        server = make_server(sysadg, tmp_path)

        async def body():
            async with client_for(server) as client:
                await asyncio.gather(
                    client.request("map", workload="vecmax"),
                    client.request("estimate", workload="vecmax"),
                    client.request("simulate", workload="vecmax"),
                )

        serve_test(server, body)
        assert server.counters["computes"] == 3


class TestAdmissionControl:
    def test_undersized_queue_sheds_with_overloaded(
        self, sysadg, tmp_path, monkeypatch
    ):
        def slow_compute(op, design_doc, workload):
            time.sleep(0.4)
            return {"op": op, "workload": workload}

        monkeypatch.setattr("repro.serve.server.compute_op", slow_compute)
        server = make_server(sysadg, tmp_path, queue_limit=2)
        outcomes = {"ok": 0, "overloaded": 0}

        async def body():
            async with client_for(server) as client:
                # 6 distinct keys so coalescing cannot absorb the burst.
                jobs = [
                    (op, wl)
                    for op in ("map", "estimate", "simulate")
                    for wl in ("vecmax", "fir")
                ]

                async def fire(op, wl):
                    try:
                        await client.request(op, workload=wl, timeout_s=30)
                        outcomes["ok"] += 1
                    except ServeError as exc:
                        assert exc.code == "overloaded", exc.code
                        assert exc.retryable
                        outcomes["overloaded"] += 1

                await asyncio.gather(*(fire(op, wl) for op, wl in jobs))

        serve_test(server, body)
        assert outcomes["overloaded"] >= 1     # shed, not queued
        assert outcomes["ok"] >= 2             # admitted ones finished
        assert outcomes["ok"] + outcomes["overloaded"] == 6
        assert server.gate.rejected == outcomes["overloaded"]
        assert server.gate.peak <= 2


class TestDeadlines:
    def test_deadline_expiry_is_structured_and_compute_survives(
        self, sysadg, tmp_path, monkeypatch
    ):
        def slow_compute(op, design_doc, workload):
            time.sleep(0.3)
            return {"op": op, "workload": workload, "finished": True}

        monkeypatch.setattr("repro.serve.server.compute_op", slow_compute)
        server = make_server(sysadg, tmp_path)

        async def body():
            async with client_for(server) as client:
                with pytest.raises(DeadlineError) as err:
                    await client.request(
                        "map", workload="vecmax", timeout_s=0.05
                    )
                assert err.value.code == "deadline" and err.value.retryable
                # The shared compute kept running; a patient retry gets
                # the memoized result without a second compile.
                result = await client.request(
                    "map", workload="vecmax", timeout_s=10
                )
                assert result["finished"] is True

        serve_test(server, body)
        assert server.counters["computes"] == 1


class TestDrain:
    def test_graceful_drain_finishes_inflight_then_rejects(
        self, sysadg, tmp_path, monkeypatch
    ):
        def slow_compute(op, design_doc, workload):
            time.sleep(0.2)
            return {"op": op, "workload": workload, "finished": True}

        monkeypatch.setattr("repro.serve.server.compute_op", slow_compute)
        server = make_server(sysadg, tmp_path)

        async def run():
            await server.start()
            async with client_for(server) as client:
                inflight = asyncio.ensure_future(
                    client.request("map", workload="vecmax", timeout_s=10)
                )
                await asyncio.sleep(0.05)  # the compute is now running
                assert (await client.shutdown())["draining"] is True
                result = await inflight  # drain waited for it
                assert result["finished"] is True
                with pytest.raises((ShuttingDownError, ServeConnectionError)):
                    await client.request("map", workload="vecmax")
            await asyncio.wait_for(server.wait_closed(), timeout=10)

        asyncio.run(run())
        assert server.metrics.of_type("serve_summary")

    def test_new_connections_refused_after_drain(self, sysadg, tmp_path):
        server = make_server(sysadg, tmp_path)

        async def run():
            await server.start()
            _, path = server.endpoint
            await server.shutdown()
            await asyncio.wait_for(server.wait_closed(), timeout=10)
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_unix_connection(path)

        asyncio.run(run())


class TestMultiOverlay:
    def test_requests_route_by_overlay_name(self, sysadg, tmp_path):
        server = make_server(sysadg, tmp_path)
        server.add_overlay(sysadg, name="second")

        async def body():
            async with client_for(server) as client:
                with pytest.raises(ServeError) as err:
                    await client.request("map", workload="vecmax")
                assert err.value.code == "bad_request"  # ambiguous
                result = await client.request(
                    "map", workload="vecmax", overlay="second"
                )
                assert result["workload"] == "vecmax"
                stats = await client.stats()
                assert sorted(stats["overlays"]) == ["second", "vecmax"]

        serve_test(server, body)
