"""Tests for the AutoDSE/HLS baseline model."""

import pytest

from repro.hls import (
    HLS_FREQUENCY_MHZ,
    KERNEL_INFO,
    design_resources,
    evaluate_design,
    hls_dram_bytes_per_cycle,
    kernel_info,
    run_autodse,
    run_autodse_suite,
    unroll_cap,
)
from repro.model.resource import XCVU9P
from repro.workloads import all_workloads, get_suite, get_workload


class TestKernelInfo:
    def test_table4_values(self):
        assert kernel_info("cholesky").untuned_ii == 10
        assert kernel_info("cholesky").tuned_ii == 5
        assert kernel_info("bgr2grey").untuned_ii == 9
        assert kernel_info("channel-ext").untuned_ii == 8

    def test_all_workloads_covered(self):
        for w in all_workloads():
            kernel_info(w.name)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            kernel_info("quicksort")

    def test_line_buffer_kernels(self):
        for name in ("stencil-2d", "blur", "derivative"):
            assert kernel_info(name).line_buffer, name

    def test_gemm_prebuilt_database(self):
        assert kernel_info("gemm").prebuilt_db


class TestDesignModel:
    def test_unroll_speeds_compute_bound(self):
        w = get_workload("mm")
        one = evaluate_design(w, 1, tuned=False)
        four = evaluate_design(w, 4, tuned=False)
        assert four.cycles < one.cycles

    def test_memory_floor(self):
        # channel-ext at huge unroll is DRAM-bound: cycles stop improving.
        w = get_workload("channel-ext")
        a = evaluate_design(w, 8, tuned=True)
        b = evaluate_design(w, 64, tuned=True)
        floor = w.footprint_bytes() / hls_dram_bytes_per_cycle(1)
        assert b.cycles >= floor

    def test_tuning_improves_ii_kernels(self):
        # Fixed unroll: strided-access kernels gain directly from the II fix.
        for name in ("blur", "stencil-3d", "channel-ext"):
            w = get_workload(name)
            untuned = evaluate_design(w, 4, tuned=False)
            tuned = evaluate_design(w, 4, tuned=True)
            assert tuned.cycles < untuned.cycles, name
        # Variable-trip kernels pay iteration padding at fixed unroll; the
        # win only materializes end-to-end (AutoDSE picks a bigger unroll).
        chol = get_workload("cholesky")
        assert (
            run_autodse(chol, tuned=True).design.cycles
            <= run_autodse(chol, tuned=False).design.cycles
        )

    def test_variable_trip_padding_costs_iterations(self):
        w = get_workload("cholesky")
        tuned = evaluate_design(w, 1, tuned=True)
        # Padded iteration space: nominal trips, not effective.
        assert tuned.cycles >= w.trip_product * tuned.ii / 1 * 0.99

    def test_resources_grow_with_unroll(self):
        w = get_workload("gemm")
        assert design_resources(w, 8, True).lut > design_resources(w, 1, True).lut

    def test_seconds_use_hls_clock(self):
        w = get_workload("vecmax")
        d = evaluate_design(w, 4, tuned=False)
        assert d.seconds == pytest.approx(
            d.cycles / (HLS_FREQUENCY_MHZ * 1e6)
        )

    def test_unroll_cap_hierarchy(self):
        w = get_workload("stencil-2d")
        assert unroll_cap(w, tuned=True) > unroll_cap(w, tuned=False)

    def test_unroll_cap_bounded_by_two_inner_loops(self):
        w = get_workload("gemm")  # inner two loops are 8 x 8
        assert unroll_cap(w, tuned=True) <= 64


class TestAutoDse:
    def test_picks_feasible_design(self):
        for w in get_suite("machsuite"):
            res = run_autodse(w)
            assert res.design.resources.fits_in(XCVU9P * 0.85), w.name
            assert res.design.unroll >= 1

    def test_deterministic(self):
        a = run_autodse(get_workload("fir"))
        b = run_autodse(get_workload("fir"))
        assert a.design == b.design
        assert a.dse_hours == b.dse_hours

    def test_dse_time_is_hours_scale(self):
        for w in get_suite("dsp"):
            res = run_autodse(w)
            assert 1.0 < res.total_hours < 40.0, w.name

    def test_tuned_never_slower(self):
        for w in all_workloads():
            untuned = run_autodse(w, tuned=False).design
            tuned = run_autodse(w, tuned=True).design
            assert tuned.cycles <= untuned.cycles * 1.01, w.name

    def test_suite_runner(self):
        results = run_autodse_suite(get_suite("dsp"))
        assert set(results) == {w.name for w in get_suite("dsp")}

    def test_prebuilt_db_shortens_exploration(self):
        gemm_tuned = run_autodse(get_workload("gemm"), tuned=True)
        gemm_untuned = run_autodse(get_workload("gemm"), tuned=False)
        assert gemm_tuned.evaluated_points < gemm_untuned.evaluated_points
