"""Property-based tests for the Pareto math (repro.search.pareto).

The frontier routines are pure functions over numeric vectors, so
hypothesis can hammer the contracts directly: frontier invariance under
permutation and duplication, dominance consistency, hypervolume
indifference to dominated points and monotonicity under additions, and
exact JSON round-trips of the frontier document.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search import (
    Axis,
    default_reference,
    dominates,
    export_frontier,
    frontier_doc,
    hypervolume,
    non_dominated,
    non_dominated_sort,
    parse_axis,
)
from repro.search.study import Study, Trial


@st.composite
def cloud(draw, max_points=12):
    dim = draw(st.integers(2, 3))
    senses = draw(
        st.lists(st.sampled_from(["min", "max"]), min_size=dim, max_size=dim)
    )
    coord = st.integers(0, 8).map(float)
    points = draw(
        st.lists(
            st.lists(coord, min_size=dim, max_size=dim),
            min_size=1,
            max_size=max_points,
        )
    )
    extra = draw(st.lists(coord, min_size=dim, max_size=dim))
    return points, extra, senses


class TestDominates:
    def test_strict_on_at_least_one_axis(self):
        senses = ["max", "min"]
        assert dominates([2.0, 1.0], [1.0, 1.0], senses)
        assert dominates([1.0, 0.5], [1.0, 1.0], senses)
        assert not dominates([1.0, 1.0], [1.0, 1.0], senses)
        assert not dominates([2.0, 2.0], [1.0, 1.0], senses)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates([1.0], [1.0, 2.0], ["min", "min"])

    @given(cloud())
    @settings(max_examples=60, deadline=None)
    def test_antisymmetric(self, c):
        points, _, senses = c
        for a in points:
            for b in points:
                assert not (
                    dominates(a, b, senses) and dominates(b, a, senses)
                )


class TestNonDominated:
    @given(cloud(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_frontier_values_invariant_under_permutation(self, c, rnd):
        points, _, senses = c
        front_a = sorted(tuple(points[i]) for i in non_dominated(points, senses))
        shuffled = list(points)
        rnd.shuffle(shuffled)
        front_b = sorted(
            tuple(shuffled[i]) for i in non_dominated(shuffled, senses)
        )
        assert front_a == front_b

    @given(cloud())
    @settings(max_examples=60, deadline=None)
    def test_duplicating_input_duplicates_frontier(self, c):
        points, _, senses = c
        front = sorted(tuple(points[i]) for i in non_dominated(points, senses))
        doubled = sorted(
            tuple((points + points)[i])
            for i in non_dominated(points + points, senses)
        )
        assert doubled == sorted(front + front)

    @given(cloud())
    @settings(max_examples=60, deadline=None)
    def test_no_frontier_point_is_dominated(self, c):
        points, _, senses = c
        for i in non_dominated(points, senses):
            assert not any(
                dominates(q, points[i], senses)
                for j, q in enumerate(points)
                if j != i
            )

    @given(cloud())
    @settings(max_examples=60, deadline=None)
    def test_sort_layers_partition_and_lead_with_frontier(self, c):
        points, _, senses = c
        layers = non_dominated_sort(points, senses)
        flat = [i for layer in layers for i in layer]
        assert sorted(flat) == list(range(len(points)))
        assert len(set(flat)) == len(flat)
        assert layers[0] == non_dominated(points, senses)
        # Every later-layer point is dominated by someone in an earlier layer.
        for depth, layer in enumerate(layers[1:], start=1):
            earlier = [i for previous in layers[:depth] for i in previous]
            for i in layer:
                assert any(
                    dominates(points[j], points[i], senses) for j in earlier
                )


class TestHypervolume:
    @given(cloud())
    @settings(max_examples=60, deadline=None)
    def test_dominated_points_contribute_nothing(self, c):
        points, _, senses = c
        reference = default_reference(points, senses)
        front = [points[i] for i in non_dominated(points, senses)]
        assert hypervolume(points, senses, reference) == pytest.approx(
            hypervolume(front, senses, reference)
        )

    @given(cloud())
    @settings(max_examples=60, deadline=None)
    def test_monotone_under_additions(self, c):
        points, extra, senses = c
        reference = default_reference(points + [extra], senses)
        assert hypervolume(
            points + [extra], senses, reference
        ) >= hypervolume(points, senses, reference) - 1e-9

    @given(cloud())
    @settings(max_examples=60, deadline=None)
    def test_positive_for_any_nonempty_cloud(self, c):
        points, _, senses = c
        # The default reference sits one unit beyond the worst value on
        # every axis, so every point dominates it strictly.
        assert hypervolume(points, senses) > 0.0

    def test_empty_is_zero(self):
        assert hypervolume([], ["min", "max"]) == 0.0


class TestAxisParsing:
    def test_explicit_sense(self):
        assert parse_axis("lut:min") == Axis("lut", "min")
        assert parse_axis("objective:max") == Axis("objective", "max")

    def test_sense_defaults_to_min(self):
        assert parse_axis("bram") == Axis("bram", "min")

    def test_bad_sense_raises(self):
        with pytest.raises(ValueError):
            parse_axis("lut:sideways")

    def test_empty_name_raises(self):
        with pytest.raises(ValueError):
            parse_axis(":max")

    def test_str_round_trip(self):
        for axis in (Axis("objective", "max"), Axis("lut", "min")):
            assert parse_axis(str(axis)) == axis


def _study_of(rows):
    trials = [
        Trial(
            index=i,
            strategy="t",
            kind="params",
            lineage={},
            seed=0,
            feasible=True,
            objective=float(objective),
            modeled_seconds=0.0,
            lut=float(lut),
            bram=float(bram),
            dsp=float(dsp),
        )
        for i, (objective, lut, bram, dsp) in enumerate(rows)
    ]
    return Study(
        key="k",
        strategy="t",
        seed=0,
        batch=1,
        workloads=["w"],
        config_fingerprint="",
        trials=trials,
    )


@given(
    st.lists(
        st.tuples(
            st.integers(1, 50),
            st.integers(1, 9),
            st.integers(0, 9),
            st.integers(0, 9),
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=60, deadline=None)
def test_frontier_doc_round_trips_through_json(rows):
    study = _study_of(rows)
    doc = frontier_doc(study)
    assert json.loads(json.dumps(doc)) == doc
    assert json.loads(export_frontier(study)) == doc
    # The export is canonical: re-exporting yields identical bytes.
    assert export_frontier(study) == export_frontier(study)
    # Frontier trials reference real feasible trials.
    indices = {t.index for t in study.feasible_trials()}
    assert all(p["trial"] in indices for p in doc["points"])
