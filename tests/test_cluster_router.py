"""Front-tier router tests: determinism, byte-identity, failover.

A real 2-shard cluster (two OverlayServers + the ClusterRouter, all on
one background event loop over unix sockets) serves the acceptance
criteria: responses through the router are byte-identical to the
1-shard path, identical requests always route to the same shard, stats
aggregate across shards, and a dead shard fails over within the bounded
retry budget.
"""

import asyncio
import copy
import threading

import pytest

from repro.adg import sysadg_from_dict, sysadg_to_dict
from repro.cluster import (
    SLOTS,
    BackendSpec,
    OverlayRegistry,
    RouterConfig,
    Topology,
    route_shard,
    route_slot,
    shard_of_slot,
)
from repro.cluster.router import ClusterRouter
from repro.dse import DseConfig, explore
from repro.engine import MetricsLogger
from repro.serve import (
    OverlayServer,
    ServeClient,
    ServeConfig,
    canonical_dumps,
    run_load,
    single_shot,
    wait_for_server,
    workload_fp,
)
from repro.workloads import get_workload


class TestRoutingMath:
    def test_route_slot_is_deterministic_and_bounded(self):
        a = route_slot("overlay-fp", "workload-fp")
        assert a == route_slot("overlay-fp", "workload-fp")
        assert 0 <= a < SLOTS
        assert a != route_slot("overlay-fp", "other-workload")
        # The separator means ("ab", "c") and ("a", "bc") differ.
        assert route_slot("ab", "c") != route_slot("a", "bc")

    def test_shard_assignment_is_contiguous_and_total(self):
        for shards in (1, 2, 3, 7):
            owners = [shard_of_slot(s, shards) for s in range(SLOTS)]
            assert set(owners) == set(range(shards))
            # ShardPlan gives contiguous ranges: owner is monotone.
            assert owners == sorted(owners)

    def test_single_shard_routes_everything_to_zero(self):
        for key in ("a", "b", "c"):
            assert route_shard(key, "wl", 1) == 0

    def test_topology_doc_roundtrip(self):
        topo = Topology(
            shards=[
                BackendSpec(index=0, socket_path="/tmp/a.sock"),
                BackendSpec(index=1, host="10.0.0.1", port=7000),
            ],
            overlays={"fam": "fp1"},
        )
        clone = Topology.from_doc(topo.as_doc())
        assert clone.as_doc() == topo.as_doc()
        assert clone.shard_for("fam", "wfp").index == topo.shard_for(
            "fam", "wfp"
        ).index


@pytest.fixture(scope="module")
def sysadg():
    return explore(
        [get_workload("vecmax"), get_workload("fir")],
        DseConfig(iterations=10, seed=4),
        name="vecmax",
    ).sysadg


@pytest.fixture()
def live_cluster(sysadg, tmp_path):
    """2 shards + router on one background loop; yields handles."""
    reg = OverlayRegistry(str(tmp_path / "reg"))
    doc = sysadg_to_dict(sysadg)
    reg.publish("fam", doc, note="v1")
    doc2 = copy.deepcopy(doc)
    doc2["params"]["frequency_mhz"] = round(
        doc2["params"]["frequency_mhz"] + 5.0, 2
    )
    reg.publish("fam", doc2, note="v2")

    shard_socks = [str(tmp_path / f"shard-{i}.sock") for i in range(2)]
    router_sock = str(tmp_path / "router.sock")
    shards = []
    for sock in shard_socks:
        config = ServeConfig(
            socket_path=sock,
            workers=0,
            queue_limit=128,
            drain_timeout_s=10.0,
            registry_dir=str(reg.root),
        )
        shards.append(OverlayServer(config, metrics=MetricsLogger()))
    router = ClusterRouter(
        RouterConfig(
            backends=[
                BackendSpec(index=i, socket_path=s)
                for i, s in enumerate(shard_socks)
            ],
            socket_path=router_sock,
            registry_dir=str(reg.root),
            health_interval_s=0.2,
        ),
        metrics=MetricsLogger(),
    )
    started = threading.Event()

    def run():
        async def serve():
            for shard in shards:
                await shard.start()
            await router.start()
            started.set()
            await router.wait_closed()
            for shard in shards:
                await shard.shutdown()  # idempotent if already drained

        asyncio.run(serve())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=15), "cluster thread never started"
    asyncio.run(
        wait_for_server(lambda: ServeClient(socket_path=router_sock))
    )
    yield router, router_sock, shards, shard_socks, reg
    try:
        asyncio.run(_request(router_sock, "shutdown"))
    except Exception:
        pass
    thread.join(timeout=20)
    assert not thread.is_alive(), "cluster thread failed to drain"


async def _request(sock, op, **kwargs):
    async with ServeClient(socket_path=sock) as client:
        return await client.request(op, **kwargs)


OPS = ("map", "estimate", "simulate", "remap")
WLS = ("vecmax", "fir")


class TestRouterServing:
    def test_routed_results_byte_identical_to_single_shot(
        self, live_cluster, sysadg
    ):
        _router, sock, _shards, _ss, reg = live_cluster
        report = asyncio.run(
            run_load(
                lambda: ServeClient(socket_path=sock),
                ops=OPS,
                workloads=WLS,
                overlays=("fam@v1",),
                requests=48,
                concurrency=8,
            )
        )
        assert report.errors == 0 and not report.mismatches
        v1 = sysadg_from_dict(reg.resolve("fam@v1").design_doc)
        for (op, wl, _ov), blob in report.results.items():
            assert blob == canonical_dumps(single_shot(op, v1, wl)), (
                op,
                wl,
            )

    def test_identical_requests_stick_to_one_shard(self, live_cluster):
        router, sock, shards, _ss, _reg = live_cluster
        for _ in range(6):
            asyncio.run(
                _request(sock, "map", workload="vecmax", overlay="fam@v1")
            )
        # All six landed on exactly one shard: its compute counter moved,
        # the other's did not (coalescing/caching only works with
        # affinity).  `requests` would also count health-sweep probes.
        compute_shards = [
            s for s in shards if s.counters["computes"] > 0
        ]
        assert len(compute_shards) == 1
        assert router.counters["routed"] >= 6

    def test_remap_versions_share_a_shard(self, live_cluster):
        """remap routes on the base name: v1's schedule must be on the
        shard that serves v2, or preservation can never happen."""
        _router, sock, shards, _ss, _reg = live_cluster
        asyncio.run(
            _request(sock, "remap", workload="vecmax", overlay="fam@v1")
        )
        asyncio.run(
            _request(sock, "remap", workload="vecmax", overlay="fam@v2")
        )
        preserved = sum(
            s.counters["remap_preserved"] for s in shards
        )
        assert preserved == 1

    def test_stats_aggregate_sums_shard_counters(self, live_cluster):
        _router, sock, shards, _ss, _reg = live_cluster
        asyncio.run(
            _request(sock, "map", workload="vecmax", overlay="fam@v1")
        )
        stats = asyncio.run(_request(sock, "stats"))
        assert stats["role"] == "router"
        assert len(stats["shards"]) == 2
        agg = stats["aggregate"]["counters"]
        assert agg["computes"] == sum(
            s.counters["computes"] for s in shards
        )

    def test_topology_reports_both_shards(self, live_cluster):
        _router, sock, _shards, shard_socks, _reg = live_cluster
        topo = asyncio.run(_request(sock, "topology"))
        assert topo["role"] == "router"
        assert [s["socket"] for s in topo["shards"]] == shard_socks
        assert topo["slots"] == SLOTS

    def test_cluster_mode_load_routes_like_the_router(self, live_cluster):
        router, sock, shards, _ss, reg = live_cluster
        report = asyncio.run(
            run_load(
                lambda: ServeClient(socket_path=sock),
                ops=("map", "simulate"),
                workloads=WLS,
                overlays=("fam@v1", "fam@v2"),
                requests=32,
                concurrency=8,
                cluster=True,
            )
        )
        assert report.errors == 0 and not report.mismatches
        assert sum(report.shard_requests.values()) == 32
        assert report.balance is not None
        # Direct-routed requests hit the same shard the router would
        # pick: re-deriving the owner per key matches the observation.
        topo = Topology.from_doc(asyncio.run(_request(sock, "topology")))
        for (_op, wl, ov), _blob in report.results.items():
            overlay_key = topo.overlays.get(ov, ov)
            owner = topo.shard_for(overlay_key, workload_fp(wl)).index
            assert owner in report.shard_requests

    def test_dead_shard_fails_over(self, live_cluster):
        router, sock, shards, shard_socks, _reg = live_cluster
        # Find a key owned by shard 0, then kill shard 0 directly.
        asyncio.run(_request(shard_socks[0], "shutdown"))
        for wl in WLS:
            doc = asyncio.run(
                _request(sock, "map", workload=wl, overlay="fam@v1")
            )
            assert doc["op"] == "map"
        assert router.counters["failovers"] >= 1
