"""Cross-cutting property-based tests on core invariants.

These pin down the contracts the subsystems rely on:

* reuse analysis agrees with brute-force enumeration of small loop nests;
* scheduler routes are link-contiguous, switch-interior, and exclusive;
* the performance model is monotone in every provisioned resource;
* simulator accounting conserves stream totals.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adg import SystemParams, general_overlay
from repro.compiler import affine_span, generate_variants, lower
from repro.ir import Affine, F64, I16, WorkloadBuilder
from repro.model.perf import estimate_ipc, preferred_binding
from repro.scheduler import schedule_mdfg, schedule_workload
from repro.workloads import get_workload


# ----------------------------------------------------------------------
# Reuse analysis vs brute force
# ----------------------------------------------------------------------
@st.composite
def small_nest(draw):
    trips = draw(
        st.lists(st.integers(1, 6), min_size=1, max_size=3)
    )
    coeffs = draw(
        st.lists(st.integers(-4, 4), min_size=len(trips), max_size=len(trips))
    )
    const = draw(st.integers(0, 5))
    return trips, coeffs, const


@given(small_nest())
@settings(max_examples=60, deadline=None)
def test_affine_span_covers_brute_force(case):
    trips, coeffs, const = case
    names = [f"v{i}" for i in range(len(trips))]
    wb = WorkloadBuilder("t", suite="test", dtype=F64)
    arr = wb.array("a", 10_000)
    for name, trip in zip(names, trips):
        wb.loop(name, trip)
    index = Affine.of(dict(zip(names, coeffs)), const)
    wb.assign(arr[0], arr[index])
    w = wb.build()
    # Brute force: enumerate every iteration point.
    touched = {
        index.evaluate(dict(zip(names, point)))
        for point in itertools.product(*(range(t) for t in trips))
    }
    span = affine_span(w, index)
    distinct = max(touched) - min(touched) + 1 if touched else 1
    # span is the exact interval width the analysis claims.
    assert span == distinct


# ----------------------------------------------------------------------
# Scheduler route invariants
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def overlay():
    return general_overlay()


@pytest.mark.parametrize(
    "name", ["fir", "mm", "bgr2grey", "stencil-3d", "crs", "blur"]
)
def test_route_invariants(overlay, name):
    schedule = schedule_workload(
        generate_variants(get_workload(name)), overlay.adg, overlay.params
    )
    assert schedule is not None
    adg = overlay.adg
    link_owner = {}
    for (src_dfg, dst_dfg, _slot), path in schedule.routes.items():
        # Endpoints match the placements.
        assert path[0] == schedule.placement[src_dfg]
        assert path[-1] == schedule.placement[dst_dfg]
        # Contiguous hardware links, interior hops are switches.
        for a, b in zip(path, path[1:]):
            assert adg.has_link(a, b), (name, a, b)
        from repro.adg import NodeKind

        for hop in path[1:-1]:
            assert adg.node(hop).kind is NodeKind.SWITCH
        # Link exclusivity: one value per link (same source may share).
        for link in zip(path, path[1:]):
            owner = link_owner.setdefault(link, src_dfg)
            assert owner == src_dfg, (name, link)


@pytest.mark.parametrize("name", ["fir", "gemm", "acc-weight"])
def test_dedicated_pe_exclusivity(overlay, name):
    schedule = schedule_workload(
        generate_variants(get_workload(name)), overlay.adg, overlay.params
    )
    pes = [
        hw
        for dfg, hw in schedule.placement.items()
        if overlay.adg.node(hw).kind.value == "pe"
    ]
    assert len(pes) == len(set(pes))


# ----------------------------------------------------------------------
# Performance-model monotonicity
# ----------------------------------------------------------------------
class TestModelMonotonicity:
    def _ipc(self, mdfg, overlay, **changes):
        from dataclasses import replace

        params = replace(overlay.params, **changes)
        binding = preferred_binding(mdfg, overlay.adg)
        return estimate_ipc(mdfg, binding, overlay.adg, params).ipc

    @pytest.mark.parametrize("name", ["vecmax", "fir", "ellpack", "blur"])
    def test_more_l2_banks_never_hurt(self, overlay, name):
        mdfg = lower(get_workload(name), unroll=2)
        assert self._ipc(mdfg, overlay, l2_banks=16) >= self._ipc(
            mdfg, overlay, l2_banks=1
        )

    @pytest.mark.parametrize("name", ["vecmax", "accumulate", "mm"])
    def test_more_noc_never_hurts(self, overlay, name):
        mdfg = lower(get_workload(name), unroll=2)
        assert self._ipc(mdfg, overlay, noc_bytes_per_cycle=64) >= self._ipc(
            mdfg, overlay, noc_bytes_per_cycle=16
        )

    @pytest.mark.parametrize("name", ["vecmax", "channel-ext"])
    def test_more_dram_never_hurts(self, overlay, name):
        mdfg = lower(get_workload(name), unroll=2)
        assert self._ipc(mdfg, overlay, dram_channels=4) >= self._ipc(
            mdfg, overlay, dram_channels=1
        )

    @pytest.mark.parametrize("name", ["fir", "mm", "bgr2grey"])
    def test_more_tiles_never_hurt(self, overlay, name):
        mdfg = lower(get_workload(name), unroll=2)
        binding = preferred_binding(mdfg, overlay.adg)
        a = estimate_ipc(
            mdfg, binding, overlay.adg, overlay.params, num_tiles=1
        ).ipc
        b = estimate_ipc(
            mdfg, binding, overlay.adg, overlay.params, num_tiles=8
        ).ipc
        assert b >= a

    @pytest.mark.parametrize("name", ["fir", "blur", "gemm"])
    def test_reuse_awareness_never_hurts(self, overlay, name):
        mdfg = lower(get_workload(name), unroll=2)
        binding = preferred_binding(mdfg, overlay.adg)
        aware = estimate_ipc(mdfg, binding, overlay.adg, overlay.params).ipc
        blind = estimate_ipc(
            mdfg, binding, overlay.adg, overlay.params, reuse_aware=False
        ).ipc
        assert aware >= blind


# ----------------------------------------------------------------------
# Simulator conservation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["vecmax", "bgr2grey", "mm"])
def test_sim_conserves_stream_totals(overlay, name):
    from repro.sim.simulator import build_tile

    mdfg = lower(get_workload(name), unroll=2)
    schedule = schedule_mdfg(mdfg, overlay.adg, overlay.params)
    tiles = max(1, min(overlay.params.num_tiles, int(mdfg.tile_parallelism)))
    engines, fabric, pools = build_tile(schedule, overlay, tiles)
    for now in range(300_000):
        if fabric.done:
            for e in engines:
                for s in e.streams:
                    if s.is_read and not s.done:
                        s.moved = s.total_elements
        if fabric.done and all(e.done for e in engines):
            break
        for p in pools:
            p.refill()
        for e in engines:
            e.step(now)
        fabric.step(now)
    assert fabric.done
    for engine in engines:
        for stream in engine.streams:
            # Moved never exceeds the stream's total.
            assert stream.moved <= stream.total_elements * (1 + 1e-6)
    for pool in pools:
        # Pools never hand out more than refill x cycles.
        assert pool.consumed_total <= pool.bytes_per_cycle * (now + 1) + 1e-6
