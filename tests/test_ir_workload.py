"""Tests for workload construction and validation."""

import pytest

from repro.ir import (
    F64,
    I16,
    I64,
    Op,
    WorkloadBuilder,
    WorkloadError,
    dtype_from_name,
)


def simple_workload(**kwargs):
    wb = WorkloadBuilder("t", suite="test", dtype=F64, **kwargs)
    a = wb.array("a", 64)
    b = wb.array("b", 64)
    i = wb.loop("i", 64)
    wb.assign(b[i], a[i] * 2)
    return wb.build()


class TestBuilder:
    def test_basic_build(self):
        w = simple_workload()
        assert w.name == "t"
        assert w.trip_product == 64
        assert len(w.statements) == 1

    def test_accumulate_marks_reduction(self):
        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        a = wb.array("a", 8)
        c = wb.array("c", 1)
        i = wb.loop("i", 8)
        wb.accumulate(c[0], a[i])
        w = wb.build()
        assert w.statements[0].is_reduction
        assert w.statements[0].reduction_op is Op.ADD

    def test_accumulate_sub_is_additive_reduction(self):
        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        a = wb.array("a", 8)
        c = wb.array("c", 8)
        i = wb.loop("i", 8)
        wb.accumulate(c[i], a[i], op=Op.SUB)
        w = wb.build()
        assert w.statements[0].reduction_op is Op.ADD
        # The combined expression must contain a SUB.
        assert Op.SUB in w.op_counts()

    def test_accumulate_rejects_unsupported_op(self):
        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        a = wb.array("a", 8)
        c = wb.array("c", 8)
        i = wb.loop("i", 8)
        with pytest.raises(WorkloadError):
            wb.accumulate(c[i], a[i], op=Op.SQRT)

    def test_reads_of_undeclared_array_rejected(self):
        from repro.ir import ArrayDecl

        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        wb.array("a", 8)
        ghost = ArrayDecl("ghost", 8)
        i = wb.loop("i", 8)
        wb.assign(wb._arrays[0][i], ghost[i])
        with pytest.raises(WorkloadError, match="undeclared"):
            wb.build()

    def test_unknown_loop_var_rejected(self):
        from repro.ir import Affine, Load

        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        a = wb.array("a", 8)
        wb.loop("i", 8)
        bad = Load("a", Affine.of({"q": 1}))
        wb.assign(a[0], bad)
        with pytest.raises(WorkloadError, match="unknown loop var"):
            wb.build()

    def test_duplicate_loop_var_rejected(self):
        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        a = wb.array("a", 8)
        i = wb.loop("i", 8)
        wb.loop("i", 4)
        wb.assign(a[i], a[i])
        with pytest.raises(WorkloadError, match="duplicate loop var"):
            wb.build()

    def test_empty_workload_rejected(self):
        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        with pytest.raises(WorkloadError):
            wb.build()

    def test_nonpositive_trip_rejected(self):
        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        a = wb.array("a", 8)
        i = wb.loop("i", 0)
        wb.assign(a[0], a[0])
        with pytest.raises(WorkloadError, match="trip"):
            wb.build()


class TestWorkloadQueries:
    def test_loop_lookup(self):
        w = simple_workload()
        assert w.loop("i").trip == 64
        with pytest.raises(KeyError):
            w.loop("zz")

    def test_array_lookup_and_dtype_default(self):
        w = simple_workload()
        assert w.array("a").size == 64
        assert w.array_dtype("a") is F64

    def test_array_dtype_override(self):
        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        a = wb.array("a", 8)
        c = wb.array("col", 8, dtype=I64)
        i = wb.loop("i", 8)
        wb.assign(a[i], a[c[i]])
        w = wb.build()
        assert w.array_dtype("col") is I64
        assert w.array_dtype("a") is F64

    def test_variable_trip_effective(self):
        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        a = wb.array("a", 64)
        i = wb.loop("i", 8)
        j = wb.loop("j", 8, variable_trip=True)
        wb.assign(a[i * 8 + j], a[i * 8 + j])
        w = wb.build()
        assert w.loop("j").effective_trip == 4.0
        assert w.effective_trip_product == 32.0
        assert w.has_variable_trip

    def test_memory_op_count(self):
        w = simple_workload()
        # one load + one store
        assert w.memory_op_count() == 2

    def test_footprint_bytes(self):
        w = simple_workload()
        assert w.footprint_bytes() == 2 * 64 * 8


class TestDtypes:
    def test_lookup_by_name(self):
        assert dtype_from_name("i16") is I16

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            dtype_from_name("i128")

    def test_f32x2_lanes(self):
        t = dtype_from_name("f32x2")
        assert t.bits == 64
        assert t.scalar_bits == 32
        assert t.bytes == 8
