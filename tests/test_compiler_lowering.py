"""Tests for workload -> mDFG lowering and variant generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    LoweringError,
    generate_variants,
    lower,
    max_unroll,
    unroll_candidates,
    uses_recurrence_engine,
)
from repro.dfg import ArrayPlacement, ComputeNode, StreamKind
from repro.ir import F64, I16, Op, WorkloadBuilder
from repro.workloads import all_workloads, get_workload


class TestBasicLowering:
    def test_fir_scalar(self):
        mdfg = lower(get_workload("fir"), unroll=1)
        mdfg.validate()
        ops = [n.op for n in mdfg.compute_nodes]
        assert Op.MUL in ops and Op.ADD in ops

    def test_unroll_multiplies_lanes(self):
        m1 = lower(get_workload("mm"), unroll=1)
        m4 = lower(get_workload("mm"), unroll=4)
        mul1 = next(n for n in m1.compute_nodes if n.op is Op.MUL)
        mul4 = next(n for n in m4.compute_nodes if n.op is Op.MUL)
        assert mul1.lanes == 1
        assert mul4.lanes == 4

    def test_unroll_beyond_max_rejected(self):
        w = get_workload("mm")  # f64: max 512/64 = 8 lanes
        with pytest.raises(LoweringError):
            lower(w, unroll=16)

    def test_unroll_zero_rejected(self):
        with pytest.raises(LoweringError):
            lower(get_workload("mm"), unroll=0)

    def test_max_unroll_respects_dtype(self):
        assert max_unroll(get_workload("mm")) == 8  # f64
        assert max_unroll(get_workload("accumulate")) == 32  # i16

    def test_max_unroll_respects_trip(self):
        wb = WorkloadBuilder("tiny", suite="test", dtype=I16)
        a = wb.array("a", 4)
        i = wb.loop("i", 4)
        wb.assign(a[i], a[i] + 1)
        assert max_unroll(wb.build()) == 4


class TestStreams:
    def test_loads_deduplicated(self):
        # acc-sqr reads src twice in in[p]*in[p]; one stream suffices.
        mdfg = lower(get_workload("acc-sqr"), unroll=1)
        reads = [
            s for s in mdfg.streams if s.kind is StreamKind.MEMORY_READ
        ]
        src_reads = [s for s in reads if s.array == "src"]
        assert len(src_reads) == 1

    def test_stationary_operand_gets_scalar_stream(self):
        mdfg = lower(get_workload("fir"), unroll=4)
        b_stream = next(s for s in mdfg.streams if s.array == "b")
        assert b_stream.lanes == 1  # b[j] does not vary with ii
        assert b_stream.stationary_reuse == 32
        b_port = mdfg.node(b_stream.port)
        assert b_port.stationary == 32 // 4  # held for inner_trip/unroll firings

    def test_vector_operand_lanes_follow_unroll(self):
        mdfg = lower(get_workload("fir"), unroll=4)
        a_stream = next(s for s in mdfg.streams if s.array == "a")
        assert a_stream.lanes == 4

    def test_indirect_stream_flagged(self):
        mdfg = lower(get_workload("ellpack"), unroll=1)
        x_stream = next(s for s in mdfg.streams if s.array == "x")
        assert x_stream.indirect
        # And the index stream itself (cols) exists as an affine read.
        assert any(s.array == "cols" for s in mdfg.streams)

    def test_padding_flag_for_nonmultiple_trip(self):
        wb = WorkloadBuilder("odd", suite="test", dtype=I16)
        a = wb.array("a", 12)
        b = wb.array("b", 12)
        i = wb.loop("i", 12)
        wb.assign(b[i], a[i] + 1)
        mdfg = lower(wb.build(), unroll=8)
        a_stream = next(s for s in mdfg.streams if s.array == "a")
        assert mdfg.node(a_stream.port).needs_padding


class TestReductions:
    def test_mm_gets_accumulator_and_tree(self):
        mdfg = lower(get_workload("mm"), unroll=8)
        accs = [n for n in mdfg.compute_nodes if n.accumulator]
        assert len(accs) == 1
        # log2(8) = 3 tree levels
        adds = [
            n
            for n in mdfg.compute_nodes
            if n.op is Op.ADD and not n.accumulator
        ]
        assert len(adds) == 3

    def test_mm_write_traffic_is_outer_iters_only(self):
        w = get_workload("mm")
        mdfg = lower(w, unroll=4)
        c_writes = [
            s
            for s in mdfg.streams
            if s.array == "c" and s.kind is StreamKind.MEMORY_WRITE
        ]
        assert len(c_writes) == 1
        assert c_writes[0].traffic == 32 * 32  # one write per (i, j)

    def test_fir_recurrence_variant(self):
        mdfg = lower(get_workload("fir"), unroll=2, use_recurrence=True)
        assert uses_recurrence_engine(mdfg)
        recs = [s for s in mdfg.streams if s.kind is StreamKind.RECURRENCE]
        assert len(recs) == 2
        assert recs[0].recurrent_pair == recs[1].node_id
        assert recs[1].recurrent_pair == recs[0].node_id
        assert recs[0].recurrence_depth == 32

    def test_fir_rmw_variant_has_memory_rmw(self):
        mdfg = lower(get_workload("fir"), unroll=2, use_recurrence=False)
        assert not uses_recurrence_engine(mdfg)
        kinds = {
            (s.array, s.kind)
            for s in mdfg.streams
            if s.array == "c"
        }
        assert ("c", StreamKind.MEMORY_READ) in kinds
        assert ("c", StreamKind.MEMORY_WRITE) in kinds


class TestArrayNodes:
    def test_every_memory_stream_has_an_array(self):
        for w in all_workloads():
            mdfg = lower(w, unroll=1)
            arrays = {a.array for a in mdfg.arrays}
            for s in mdfg.memory_streams:
                assert s.array in arrays, f"{w.name}: {s.array}"

    def test_high_reuse_array_prefers_spad(self):
        mdfg = lower(get_workload("fir"), unroll=1)
        a_node = next(a for a in mdfg.arrays if a.array == "a")
        assert a_node.preferred is ArrayPlacement.SPAD
        assert a_node.memory_reuse > 2

    def test_streaming_array_prefers_dram(self):
        mdfg = lower(get_workload("vecmax"), unroll=1)
        a_node = next(a for a in mdfg.arrays if a.array == "a")
        assert a_node.preferred is ArrayPlacement.DRAM

    def test_indirect_target_prefers_spad(self):
        mdfg = lower(get_workload("ellpack"), unroll=1)
        x_node = next(a for a in mdfg.arrays if a.array == "x")
        assert x_node.indirect_target
        assert x_node.preferred is ArrayPlacement.SPAD

    def test_spad_candidate_includes_double_buffer(self):
        # Fig. 5's exact FIR: footprint of a is 255 elements; the spad
        # allocation doubles it for double-buffering.
        wb = WorkloadBuilder("fig5", suite="test", dtype=F64)
        a = wb.array("a", 255)
        b = wb.array("b", 128)
        c = wb.array("c", 128)
        io = wb.loop("io", 4)
        j = wb.loop("j", 128)
        ii = wb.loop("ii", 32)
        wb.accumulate(c[io * 32 + ii], a[io * 32 + ii + j] * b[j])
        mdfg = lower(wb.build(), unroll=1)
        a_node = next(n for n in mdfg.arrays if n.array == "a")
        assert a_node.footprint_bytes == 2 * 255 * 8


class TestVariants:
    def test_all_workloads_generate_variants(self):
        for w in all_workloads():
            vs = generate_variants(w)
            assert vs.variants, w.name
            for m in vs.variants:
                m.validate()

    def test_variants_sorted_most_aggressive_first(self):
        vs = generate_variants(get_workload("mm"))
        rates = [m.insts_per_cycle for m in vs.variants]
        assert rates == sorted(rates, reverse=True)

    def test_relaxation_walk(self):
        vs = generate_variants(get_workload("mm"))
        relaxed = vs.relaxations_of(vs.best)
        assert len(relaxed) == len(vs.variants) - 1
        assert all(
            m.insts_per_cycle <= vs.best.insts_per_cycle for m in relaxed
        )

    def test_unroll_candidates_are_powers_of_two(self):
        for w in all_workloads():
            for u in unroll_candidates(w):
                assert u & (u - 1) == 0

    def test_by_name(self):
        vs = generate_variants(get_workload("fir"))
        m = vs.by_name("u2")
        assert m.unroll == 2
        with pytest.raises(KeyError):
            vs.by_name("u999")


class TestMdfgMetrics:
    def test_insts_per_cycle_counts_memory_ops(self):
        # channel-ext has zero compute; vectorization must still pay off.
        m1 = lower(get_workload("channel-ext"), unroll=1)
        m8 = lower(get_workload("channel-ext"), unroll=8)
        assert m8.insts_per_cycle > m1.insts_per_cycle

    def test_config_words_positive(self):
        for w in all_workloads():
            assert lower(w, unroll=1).config_words > 0

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(["mm", "fir", "blur", "vecmax", "gemm"]))
    def test_validate_never_raises_for_legal_unrolls(self, name):
        w = get_workload(name)
        for u in unroll_candidates(w):
            lower(w, unroll=u).validate()
