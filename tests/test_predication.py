"""Tests for predicated (if-converted) dataflow execution.

The paper's PEs support a predication-based control lookup table for
conditional execution (Section VI-E); the IR's ``Select`` expression is the
compiler-facing form.  These tests run a ReLU-style conditional kernel
through the whole stack.
"""

import pytest

from repro.adg import general_overlay, mesh_adg, caps_for_dtype
from repro.compiler import generate_variants, lower
from repro.dfg import ComputeNode
from repro.ir import (
    F32,
    I16,
    Op,
    Select,
    WorkloadBuilder,
    as_expr,
    compare,
)
from repro.scheduler import schedule_mdfg, schedule_workload
from repro.sim import simulate_schedule


def relu_workload(n=4096):
    """out[i] = x[i] > 0 ? x[i] : 0  — classic if-conversion target."""
    wb = WorkloadBuilder("relu", suite="custom", dtype=F32)
    x = wb.array("x", n)
    out = wb.array("out", n)
    i = wb.loop("i", n)
    load = x[i]
    wb.assign(out[i], Select(compare(load, 0), load, as_expr(0.0)))
    return wb.build()


def clamp_workload(n=1024):
    """Two-sided clamp via nested selects."""
    wb = WorkloadBuilder("clamp", suite="custom", dtype=I16)
    x = wb.array("x", n)
    lohi = wb.array("lohi", 2)
    out = wb.array("out", n)
    i = wb.loop("i", n)
    v = x[i]
    low = Select(compare(v, lohi[0]), v, lohi[0])
    wb.assign(out[i], Select(compare(low, lohi[1]), lohi[1], low))
    return wb.build()


class TestLowering:
    def test_select_becomes_compute_node(self):
        mdfg = lower(relu_workload(), unroll=1)
        ops = [n.op for n in mdfg.compute_nodes]
        assert Op.SELECT in ops
        assert Op.CMP in ops

    def test_select_vectorizes(self):
        mdfg = lower(relu_workload(), unroll=8)
        select = next(n for n in mdfg.compute_nodes if n.op is Op.SELECT)
        assert select.lanes == 8

    def test_select_operand_count(self):
        mdfg = lower(relu_workload(), unroll=1)
        select = next(n for n in mdfg.compute_nodes if n.op is Op.SELECT)
        # pred + then (the else is a constant immediate)
        assert 2 <= len(select.operands) <= 3

    def test_nested_selects(self):
        mdfg = lower(clamp_workload(), unroll=1)
        selects = [n for n in mdfg.compute_nodes if n.op is Op.SELECT]
        # The inner select is reused twice and the compiler does not CSE
        # value expressions, so 2-3 select nodes are acceptable.
        assert 2 <= len(selects) <= 3


class TestEndToEnd:
    def test_relu_maps_and_simulates_on_general(self):
        overlay = general_overlay()
        schedule = schedule_workload(
            generate_variants(relu_workload()), overlay.adg, overlay.params
        )
        assert schedule is not None
        result = simulate_schedule(schedule, overlay)
        assert result.ipc > 0

    def test_select_needs_capability(self):
        # A fabric without SELECT/CMP capabilities must reject the kernel.
        adg = mesh_adg(2, 2, caps=caps_for_dtype(F32, (Op.ADD, Op.MUL)))
        mdfg = lower(relu_workload(), unroll=1)
        assert schedule_mdfg(mdfg, adg) is None

    def test_select_capable_fabric_accepts(self):
        adg = mesh_adg(
            2,
            2,
            caps=caps_for_dtype(F32, (Op.SELECT, Op.CMP)),
            width_bits=256,
        )
        mdfg = lower(relu_workload(), unroll=1)
        assert schedule_mdfg(mdfg, adg) is not None

    def test_dse_provisions_select(self):
        from repro.dse import DseConfig, explore

        res = explore([relu_workload()], DseConfig(iterations=10, seed=3))
        caps = {
            c.op
            for pe in res.sysadg.adg.pes
            for c in pe.caps
        }
        assert Op.SELECT in caps and Op.CMP in caps
