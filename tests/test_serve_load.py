"""Acceptance load tests: the ISSUE's ≥64-concurrent-request criteria.

The server runs in a background thread with its own event loop (the same
shape as the real deployment: ``repro serve`` in one process, many
client processes), and the bundled load generator / ``repro submit``
CLI drive it from the test's own loops.
"""

import asyncio
import threading

import pytest

from repro.adg import save_sysadg
from repro.cli import main
from repro.dse import DseConfig, explore
from repro.engine import MetricsLogger
from repro.serve import (
    OverlayServer,
    ServeClient,
    ServeConfig,
    canonical_dumps,
    run_load,
    single_shot,
    wait_for_server,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def sysadg():
    result = explore(
        [get_workload("vecmax")],
        DseConfig(iterations=10, seed=4),
        name="vecmax",
    )
    return result.sysadg


@pytest.fixture()
def live_server(sysadg, tmp_path):
    """A serving OverlayServer on its own thread + loop; yields (server, sock)."""
    sock = str(tmp_path / "live.sock")
    config = ServeConfig(
        socket_path=sock, workers=0, queue_limit=128, drain_timeout_s=10.0
    )
    server = OverlayServer(config, metrics=MetricsLogger())
    server.add_overlay(sysadg)
    started = threading.Event()

    def run():
        async def serve():
            await server.start()
            started.set()
            await server.wait_closed()

        asyncio.run(serve())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "server thread never started"
    asyncio.run(
        wait_for_server(lambda: ServeClient(socket_path=sock))
    )
    yield server, sock
    asyncio.run(_shutdown_quietly(sock))
    thread.join(timeout=10)
    assert not thread.is_alive(), "server thread failed to drain"


async def _shutdown_quietly(sock):
    try:
        async with ServeClient(socket_path=sock) as client:
            await client.shutdown()
    except Exception:
        pass  # already drained by the test body


class TestLoadAcceptance:
    def test_64_concurrent_mixed_requests_zero_errors(self, live_server, sysadg):
        server, sock = live_server
        factory = lambda: ServeClient(socket_path=sock)
        report = asyncio.run(
            run_load(
                factory,
                ops=("map", "estimate", "simulate"),
                workloads=("vecmax",),
                requests=64,
                concurrency=16,
                timeout_s=60,
            )
        )
        # Zero errors across the whole mixed run.
        assert report.requests == 64
        assert report.ok == 64 and report.errors == 0
        assert report.mismatches == []
        # Coalescing + caching collapse duplicate in-flight requests:
        # the server compiled each unique (op, workload) at most once
        # more than strictly necessary, far below the request count.
        stats = report.server_stats
        computes = stats["counters"]["computes"]
        assert computes < report.requests
        assert computes <= 3 * 2  # 3 unique keys, generous slack
        coalesced = stats["counters"]["coalesced"]
        memory_hits = stats["counters"]["cache_memory"]
        assert coalesced + memory_hits >= report.requests - computes
        # Served results are byte-identical to the single-shot path.
        for (op, wl, _ov), blob in report.results.items():
            ref = single_shot(op, sysadg, wl)
            assert blob == canonical_dumps(ref), (op, wl)
        lat = report.latency.as_dict()
        assert lat["count"] == 64 and lat["p99_s"] >= lat["p50_s"]

    def test_submit_cli_load_and_admin_ops(self, live_server, capsys):
        _, sock = live_server
        rc = main(
            [
                "submit", "load", "--socket", sock,
                "--requests", "32", "--concurrency", "8",
                "--ops", "map,estimate,simulate",
                "--workloads", "vecmax",
                "--assert-coalescing",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "32 ok / 0 errors" in out
        assert "compiles for 32 requests" in out

        assert main(["submit", "ping", "--socket", sock]) == 0
        assert '"pong":true' in capsys.readouterr().out

        assert main(
            ["submit", "map", "vecmax", "--socket", sock, "--json"]
        ) == 0
        doc = capsys.readouterr().out.strip()
        assert doc.startswith("{") and '"op":"map"' in doc

    def test_submit_connection_error_is_clean(self, tmp_path, capsys):
        rc = main(
            ["submit", "ping", "--socket", str(tmp_path / "nowhere.sock")]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestServeCliParser:
    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "d.json"])
        assert args.designs == ["d.json"]
        assert args.queue_limit == 64 and args.workers == 2
        assert args.port == 0 and args.socket is None

    def test_submit_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["submit", "load"])
        assert args.requests == 64 and args.concurrency == 16
        assert args.ops == "map,estimate,simulate"

    def test_submit_rejects_unknown_op(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "frobnicate"])

    def test_submit_compute_requires_workload(self, tmp_path):
        rc = main(["submit", "map", "--socket", str(tmp_path / "s.sock")])
        assert rc == 2

    def test_serve_missing_design_is_clean(self, tmp_path, capsys):
        rc = main(
            ["serve", str(tmp_path / "missing.json"),
             "--socket", str(tmp_path / "s.sock")]
        )
        assert rc == 2
        assert "no such design file" in capsys.readouterr().err

    def test_serve_requires_designs_or_registry(self, capsys):
        rc = main(["serve", "--socket", "/tmp/s.sock"])
        assert rc == 2
        assert "design file or --registry" in capsys.readouterr().err


class TestClusterCliParser:
    def test_submit_cluster_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["submit", "load", "--cluster", "--shards", "4",
             "--overlays", "fam@v1,fam@v2"]
        )
        assert args.cluster and args.shards == 4
        assert args.overlays == "fam@v1,fam@v2"
        defaults = build_parser().parse_args(["submit", "load"])
        assert not defaults.cluster and defaults.shards == 1

    def test_submit_accepts_new_ops(self):
        from repro.cli import build_parser

        for op in ("remap", "simulate_batch", "topology"):
            assert build_parser().parse_args(["submit", op]).op == op

    def test_cluster_serve_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["cluster", "serve", "--run-dir", "/tmp/c",
             "--registry", "/tmp/r", "--shards", "3"]
        )
        assert args.shards == 3 and args.designs == []
        assert args.func.__name__ == "_cmd_cluster"

    def test_cluster_serve_needs_overlay_source(self, tmp_path, capsys):
        rc = main(
            ["cluster", "serve", "--run-dir", str(tmp_path / "run")]
        )
        assert rc == 2
        assert "designs and/or a registry" in capsys.readouterr().err


class TestRegistryCli:
    def test_publish_list_pin_rollback_flow(self, tmp_path, capsys):
        import json

        root = str(tmp_path / "reg")
        for tag in ("a", "b", "c"):
            design = tmp_path / f"{tag}.json"
            design.write_text(json.dumps({"tag": tag}))
            rc = main(
                ["registry", "--root", root, "publish", "fam",
                 str(design), "--note", tag]
            )
            assert rc == 0
        out = capsys.readouterr().out
        assert "published fam@v1" in out and "published fam@v3" in out

        assert main(["registry", "--root", root, "list"]) == 0
        assert "fam: 3 versions, latest v3" in capsys.readouterr().out

        assert main(["registry", "--root", root, "pin", "fam@v2"]) == 0
        assert "pinned fam -> fam@v2" in capsys.readouterr().out

        assert main(["registry", "--root", root, "show", "fam"]) == 0
        out = capsys.readouterr().out
        assert "fam@v2 *" in out  # the pin marker

        assert main(["registry", "--root", root, "rollback", "fam"]) == 0
        assert "rolled back fam -> fam@v1" in capsys.readouterr().out

        assert main(["registry", "--root", root, "unpin", "fam"]) == 0
        capsys.readouterr()

    def test_registry_errors_are_clean(self, tmp_path, capsys):
        root = str(tmp_path / "reg")
        assert main(["registry", "--root", root, "pin", "ghost@v1"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["registry", "--root", root, "pin", "ghost"]) == 2
        assert "name@vN" in capsys.readouterr().err
