"""Direct tests for mDFG containers and their validation error paths."""

import pytest

from repro.dfg import (
    ArrayPlacement,
    ComputeNode,
    InputPortNode,
    MDFG,
    MdfgError,
    StreamKind,
)
from repro.ir import F64, I64, Op


def empty_mdfg():
    return MDFG(
        workload="t",
        variant="u1",
        unroll=1,
        dtype=F64,
        iterations=100.0,
        inner_trip=10,
        tile_parallelism=4.0,
    )


def minimal_mdfg():
    m = empty_mdfg()
    ip = m.add_input_port(width_bytes=8)
    stream = m.add_stream(
        kind=StreamKind.MEMORY_READ,
        array="a",
        dtype=F64,
        port=ip,
        lanes=1,
        traffic=100,
        footprint=50,
    )
    compute = m.add_compute(Op.ADD, F64, lanes=1, operands=(ip,))
    op = m.add_output_port(width_bytes=8)
    m.add_edge(compute, op)
    wstream = m.add_stream(
        kind=StreamKind.MEMORY_WRITE,
        array="b",
        dtype=F64,
        port=op,
        lanes=1,
        traffic=100,
        footprint=100,
    )
    for name, sids in (("a", (stream,)), ("b", (wstream,))):
        node = m.add_array(
            array=name,
            dtype=F64,
            size_elems=100,
            footprint_bytes=800,
            traffic_bytes=800,
        )
        m.attach_streams(node, sids)
    return m


class TestConstruction:
    def test_minimal_validates(self):
        minimal_mdfg().validate()

    def test_edge_to_unknown_node_rejected(self):
        m = empty_mdfg()
        with pytest.raises(MdfgError, match="unknown node"):
            m.add_edge(0, 1)

    def test_read_stream_needs_input_port(self):
        m = empty_mdfg()
        op = m.add_output_port(width_bytes=8)
        m.add_stream(
            kind=StreamKind.GENERATE,
            array=None,
            dtype=F64,
            port=op,
            traffic=10,
            footprint=10,
        )
        with pytest.raises(MdfgError, match="input port"):
            m.validate()

    def test_memory_stream_needs_array_name(self):
        m = empty_mdfg()
        ip = m.add_input_port(width_bytes=8)
        m.add_stream(
            kind=StreamKind.MEMORY_READ,
            array=None,
            dtype=F64,
            port=ip,
            traffic=10,
            footprint=10,
        )
        with pytest.raises(MdfgError, match="no array"):
            m.validate()

    def test_asymmetric_recurrence_rejected(self):
        m = empty_mdfg()
        ip = m.add_input_port(width_bytes=8)
        rec = m.add_stream(
            kind=StreamKind.RECURRENCE,
            array="c",
            dtype=F64,
            port=ip,
            traffic=10,
            footprint=10,
        )
        m.node(rec).recurrent_pair = 12345
        with pytest.raises(MdfgError, match="asymmetric"):
            m.validate()

    def test_array_with_unknown_stream_rejected(self):
        m = minimal_mdfg()
        m.arrays[0].streams = (999,)
        with pytest.raises(MdfgError, match="unknown stream"):
            m.validate()

    def test_array_node_accessor_type_check(self):
        m = minimal_mdfg()
        compute = m.compute_nodes[0]
        with pytest.raises(MdfgError, match="not an array node"):
            m.array_node(compute.node_id)


class TestMetrics:
    def test_insts_counts_lanes(self):
        m = empty_mdfg()
        ip = m.add_input_port(width_bytes=32)
        m.add_stream(
            kind=StreamKind.MEMORY_READ, array="a", dtype=F64, port=ip,
            lanes=4, traffic=100, footprint=100,
        )
        m.add_compute(Op.MUL, F64, lanes=4, operands=(ip,))
        assert m.insts_per_cycle == 8.0  # 4 compute + 4 memory lanes

    def test_total_instructions_consistent_with_firings(self):
        m = minimal_mdfg()
        firings = m.iterations / m.unroll
        assert m.total_instructions == pytest.approx(
            m.insts_per_cycle * firings
        )

    def test_config_words_scale_with_entities(self):
        small = minimal_mdfg()
        big = minimal_mdfg()
        extra_ip = big.add_input_port(width_bytes=8)
        big.add_stream(
            kind=StreamKind.MEMORY_READ, array="a", dtype=F64,
            port=extra_ip, traffic=10, footprint=10,
        )
        assert big.config_words > small.config_words

    def test_general_reuse_floor_is_one(self):
        m = minimal_mdfg()
        stream = m.streams[0]
        assert stream.general_reuse >= 1.0

    def test_fabric_edges_exclude_stream_edges(self):
        m = minimal_mdfg()
        for edge in m.fabric_edges():
            for endpoint in (edge.src, edge.dst):
                node = m.node(endpoint)
                assert isinstance(
                    node, (ComputeNode, InputPortNode)
                ) or node.__class__.__name__ == "OutputPortNode"

    def test_predecessors_successors(self):
        m = minimal_mdfg()
        compute = m.compute_nodes[0]
        preds = m.predecessors(compute.node_id)
        succs = m.successors(compute.node_id)
        assert preds and succs

    def test_summary_mentions_counts(self):
        text = minimal_mdfg().summary()
        assert "compute=1" in text
        assert "streams=2" in text
