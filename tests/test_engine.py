"""Tests for the parallel DSE engine: hashing, store, orchestration."""

import dataclasses
import os
import subprocess
import sys

import pytest

from repro.dse import DseConfig, TimeModel, explore
from repro.engine import (
    ArtifactStore,
    DseEngine,
    EngineError,
    MetricsLogger,
    fingerprint,
    job_key,
    workload_fingerprint,
)
from repro.harness.cache import MemoryCache
from repro.workloads import get_suite, get_workload


FIR = [get_workload("fir")]
FAST = DseConfig(iterations=12, seed=2)


# ----------------------------------------------------------------------
# Content hashing
# ----------------------------------------------------------------------
class TestHashing:
    def test_key_is_stable(self):
        assert job_key(FIR, FAST, [2]) == job_key(FIR, FAST, [2])

    def test_key_ignores_seed_order(self):
        assert job_key(FIR, FAST, [3, 2]) == job_key(FIR, FAST, [2, 3])

    def test_config_field_changes_key(self):
        for change in (
            {"iterations": 13},
            {"seed": 3},
            {"preserving_prob": 0.4},
            {"schedule_preserving": False},
            {"time_model": TimeModel(full_compile=1.0)},
        ):
            other = dataclasses.replace(FAST, **change)
            assert job_key(FIR, other, [2]) != job_key(FIR, FAST, [2]), change

    def test_workload_body_changes_key(self):
        fir = get_workload("fir")
        renamed = dataclasses.replace(fir, name="fir2")
        resized = dataclasses.replace(fir, size_desc="other")
        assert workload_fingerprint(renamed) != workload_fingerprint(fir)
        assert job_key([resized], FAST, [2]) != job_key([fir], FAST, [2])

    def test_workload_set_changes_key(self):
        assert job_key(get_suite("dsp"), FAST, [2]) != job_key(
            FIR, FAST, [2]
        )

    def test_schema_version_changes_key(self, monkeypatch):
        from repro.engine import hashing

        before = job_key(FIR, FAST, [2])
        monkeypatch.setattr(hashing, "CODE_SCHEMA_VERSION", 999)
        assert job_key(FIR, FAST, [2]) != before

    def test_fingerprint_independent_of_set_order(self):
        assert fingerprint({"a", "b", "c"}) == fingerprint({"c", "a", "b"})

    def test_rejects_uncanonicalizable(self):
        with pytest.raises(TypeError):
            fingerprint(object())


# ----------------------------------------------------------------------
# Artifact store
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("ab" * 32, {"x": 1}, meta={"why": "test"})
        assert store.get("ab" * 32) == {"x": 1}
        assert store.meta("ab" * 32) == {"why": "test"}
        assert store.stats.hits == 1 and store.stats.puts == 1

    def test_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("cd" * 32) is None
        assert store.stats.misses == 1

    def test_corrupt_entry_is_a_miss_and_dropped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "ef" * 32
        store.put(key, [1, 2, 3])
        path = store._path(key)
        path.write_bytes(b"not a pickle")
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert key not in store

    def test_keys_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("11" * 32, 1)
        store.put("22" * 32, 2)
        assert store.size() == 2
        store.clear()
        assert store.size() == 0


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
class TestEngine:
    def test_miss_then_memory_hit(self, tmp_path):
        eng = DseEngine(cache_dir=str(tmp_path))
        first = eng.explore(FIR, FAST, name="fir")
        again = eng.explore(FIR, FAST, name="fir")
        assert not first.from_cache
        assert again.from_cache and again.metrics.cache_tier == "memory"
        assert again.result is first.result

    def test_disk_hit_across_engines_runs_zero_iterations(self, tmp_path):
        cold = DseEngine(cache_dir=str(tmp_path))
        first = cold.explore(FIR, FAST, name="fir")
        warm = DseEngine(cache_dir=str(tmp_path))
        hit = warm.explore(FIR, FAST, name="fir")
        assert hit.from_cache and hit.metrics.cache_tier == "disk"
        assert warm.stats.iterations_run == 0
        assert warm.stats.cache_hits == 1
        assert hit.objective == first.objective

    def test_no_cache_dir_still_memoizes(self):
        eng = DseEngine()
        assert eng.store is None and eng.checkpoints is None
        first = eng.explore(FIR, FAST, name="fir")
        assert eng.explore(FIR, FAST, name="fir").from_cache
        assert first.objective > 0

    def test_best_of_seeds_beats_or_ties_single(self):
        eng = DseEngine()
        multi = eng.explore(FIR, FAST, name="fir", seeds=[2, 3, 4])
        single = eng.explore(FIR, FAST, name="fir", seeds=[2])
        assert multi.objective >= single.objective
        assert multi.metrics.best_seed in (2, 3, 4)

    def test_parallel_matches_serial(self, tmp_path):
        serial = DseEngine(jobs=1)
        parallel = DseEngine(jobs=2, cache_dir=str(tmp_path))
        a = serial.explore(FIR, FAST, name="fir", seeds=[2, 3])
        b = parallel.explore(FIR, FAST, name="fir", seeds=[2, 3])
        assert a.objective == b.objective
        assert a.metrics.best_seed == b.metrics.best_seed
        assert a.result.stats == b.result.stats

    def test_crashed_seed_degrades_to_survivors(self):
        eng = DseEngine()
        res = eng.explore(
            FIR, FAST, name="fir", seeds=[2, 3], inject_crash_seeds=[2]
        )
        assert not res.from_cache
        assert res.metrics.crashed_seeds == [2]
        assert res.metrics.best_seed == 3
        assert eng.stats.worker_crashes == 1
        baseline = explore(FIR, dataclasses.replace(FAST, seed=3), name="fir")
        assert res.objective == baseline.choice.objective

    def test_crashed_seed_in_pool_degrades_to_survivors(self, tmp_path):
        eng = DseEngine(jobs=2, cache_dir=str(tmp_path))
        res = eng.explore(
            FIR, FAST, name="fir", seeds=[2, 3], inject_crash_seeds=[3]
        )
        assert res.metrics.crashed_seeds == [3]
        assert res.metrics.best_seed == 2

    def test_all_seeds_crashed_raises(self):
        eng = DseEngine()
        with pytest.raises(EngineError, match="all 2 seed workers failed"):
            eng.explore(
                FIR, FAST, name="fir", seeds=[2, 3], inject_crash_seeds=[2, 3]
            )

    def test_crash_is_not_cached(self, tmp_path):
        eng = DseEngine(cache_dir=str(tmp_path))
        with pytest.raises(EngineError):
            eng.explore(FIR, FAST, name="fir", inject_crash_seeds=[2])
        res = eng.explore(FIR, FAST, name="fir")
        assert not res.from_cache

    def test_metrics_stream(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        eng = DseEngine(metrics=MetricsLogger(str(log_path)))
        eng.explore(FIR, FAST, name="fir")
        eng.explore(FIR, FAST, name="fir")
        events = [e["event"] for e in eng.metrics.events]
        assert events.count("run_start") == 1
        assert events.count("seed_done") == 1
        assert events.count("run_end") == 1
        assert events.count("cache_hit") == 1
        run_end = eng.metrics.of_type("run_end")[0]
        assert run_end["iterations"] == FAST.iterations
        assert 0.0 <= run_end["acceptance_rate"] <= 1.0
        assert log_path.exists()
        assert len(log_path.read_text().strip().splitlines()) == len(events)

    def test_seed_timeout_degrades_to_survivors(self, tmp_path):
        """A hung worker no longer blocks the job: the timed-out seed is
        recorded as a failure and the best survivor wins (satellite)."""
        eng = DseEngine(jobs=2, cache_dir=str(tmp_path), seed_timeout=0.5)
        res = eng.explore(
            FIR, FAST, name="fir", seeds=[2, 3],
            inject_hang={3: 15.0},
        )
        assert res.metrics.timed_out_seeds == [3]
        assert res.metrics.crashed_seeds == [3]  # recorded as a failure
        assert res.metrics.best_seed == 2
        hung = [o for o in res.outcomes if o.seed == 3][0]
        assert hung.timed_out and "seed_timeout" in (hung.error or "")
        assert eng.metrics.of_type("seed_timeout")
        baseline = explore(FIR, dataclasses.replace(FAST, seed=2), name="fir")
        assert res.objective == baseline.choice.objective

    def test_all_seeds_timing_out_raises(self, tmp_path):
        eng = DseEngine(jobs=2, cache_dir=str(tmp_path), seed_timeout=0.2)
        with pytest.raises(EngineError, match="timed out"):
            eng.explore(
                FIR, FAST, name="fir", seeds=[2, 3],
                inject_hang={2: 15.0, 3: 15.0},
            )

    def test_no_timeout_when_seeds_finish_in_time(self, tmp_path):
        eng = DseEngine(jobs=2, cache_dir=str(tmp_path), seed_timeout=120.0)
        res = eng.explore(FIR, FAST, name="fir", seeds=[2, 3])
        assert res.metrics.timed_out_seeds == []
        assert res.metrics.crashed_seeds == []
        ref = DseEngine(jobs=2).explore(FIR, FAST, name="fir", seeds=[2, 3])
        assert res.objective == ref.objective

    def test_shared_memory_cache(self, tmp_path):
        shared = MemoryCache()
        eng = DseEngine(memory_cache=shared)
        eng.explore(FIR, FAST, name="fir")
        assert shared.size() == 1
        shared.clear()
        res = eng.explore(FIR, FAST, name="fir")
        assert not res.from_cache  # no disk tier: cleared means recompute


# ----------------------------------------------------------------------
# Harness integration: the experiment drivers ride the engine
# ----------------------------------------------------------------------
class TestHarnessIntegration:
    def test_warm_cache_suite_overlay_runs_zero_iterations(self, tmp_path):
        """Acceptance check: the second (warm-cache) Table-III style
        invocation answers from the artifact store with zero annealer
        iterations, even in a fresh engine (fresh process stand-in)."""
        from repro.harness.experiments import set_engine, suite_overlay

        cold = DseEngine(cache_dir=str(tmp_path))
        previous = set_engine(cold)
        try:
            first = suite_overlay("dsp", iterations=20)
            assert cold.stats.iterations_run > 0

            warm = DseEngine(cache_dir=str(tmp_path))
            set_engine(warm)
            second = suite_overlay("dsp", iterations=20)
            assert warm.stats.iterations_run == 0
            assert warm.stats.cache_hits == 1
            assert second.choice.objective == first.choice.objective
        finally:
            set_engine(previous)

    def test_multi_seed_beats_or_ties_serial_single_seed(self):
        """Acceptance check: best-of-N through the engine is at least as
        good as the serial single-seed baseline, reproducibly."""
        from repro.harness.experiments import DSE_RESTART_SEEDS, DSE_SEED

        cfg = DseConfig(iterations=20, seed=DSE_SEED)
        workloads = get_suite("dsp")
        baseline = explore(workloads, cfg, name="dsp")
        eng = DseEngine(jobs=4)
        multi = eng.explore(
            workloads, cfg, name="dsp", seeds=DSE_RESTART_SEEDS
        )
        rerun = DseEngine(jobs=4).explore(
            workloads, cfg, name="dsp", seeds=DSE_RESTART_SEEDS
        )
        assert multi.objective >= baseline.choice.objective
        assert multi.objective == rerun.objective
        assert multi.metrics.best_seed == rerun.metrics.best_seed


# ----------------------------------------------------------------------
# Seed threading / determinism (satellite: every RNG flows from the seed)
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_bit_identical(self):
        a = explore(FIR, FAST, name="fir")
        b = explore(FIR, FAST, name="fir")
        assert a.choice.objective == b.choice.objective
        assert a.stats == b.stats
        assert a.history == b.history
        assert a.modeled_seconds == b.modeled_seconds

    def test_distinct_seeds_distinct_trajectories(self):
        cfg = DseConfig(iterations=30, seed=2)
        a = explore(get_suite("dsp"), cfg, name="d")
        b = explore(
            get_suite("dsp"),
            dataclasses.replace(cfg, seed=9),
            name="d",
        )
        assert a.stats != b.stats

    def test_identical_across_hash_randomization(self):
        """A worker process with a different PYTHONHASHSEED must reproduce
        the parent's run bit-for-bit (no RNG escapes the seeded Random,
        no set-iteration order leaks into the trajectory)."""
        code = (
            "from repro.dse import DseConfig, explore\n"
            "from repro.workloads import get_workload\n"
            "r = explore([get_workload('fir')],"
            " DseConfig(iterations=12, seed=2), name='fir')\n"
            "print(repr((r.choice.objective, r.stats)))\n"
        )
        outs = []
        for hashseed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in sys.path if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outs.append(proc.stdout.strip())
        assert outs[0] == outs[1]
        local = explore(FIR, FAST, name="fir")
        assert repr((local.choice.objective, local.stats)) == outs[0]
