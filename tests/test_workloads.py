"""Tests for the 19 Table II workloads and the new scenario families."""

import pytest

from repro.ir import Op, Select
from repro.workloads import (
    PAPER_SUITE_NAMES,
    SUITE_NAMES,
    all_workloads,
    get_suite,
    get_workload,
)

#: Scenario families beyond the paper's Table II.
NEW_FAMILIES = {
    "fsm": ("threshold-fsm", "debounce", "edge-count"),
    "tdm": ("horner", "biquad-cascade", "mac-bank"),
    "irregular": ("ragged-rows", "hash-probe", "frontier-gather"),
}

#: Table II of the paper: workload -> (dtype name, suite).
TABLE2 = {
    "cholesky": ("f64", "dsp"),
    "fft": ("f32x2", "dsp"),
    "fir": ("f64", "dsp"),
    "solver": ("f64", "dsp"),
    "mm": ("f64", "dsp"),
    "stencil-3d": ("i64", "machsuite"),
    "crs": ("f64", "machsuite"),
    "gemm": ("i64", "machsuite"),
    "stencil-2d": ("i64", "machsuite"),
    "ellpack": ("f64", "machsuite"),
    "channel-ext": ("i16", "vision"),
    "bgr2grey": ("i16", "vision"),
    "blur": ("i16", "vision"),
    "accumulate": ("i16", "vision"),
    "acc-sqr": ("i16", "vision"),
    "vecmax": ("i16", "vision"),
    "acc-weight": ("i16", "vision"),
    "convert-bit": ("i16", "vision"),
    "derivative": ("i16", "vision"),
}


class TestRegistry:
    def test_all_28_workloads_present(self):
        names = [w.name for w in all_workloads()]
        assert len(names) == 28
        expected = set(TABLE2)
        for family_names in NEW_FAMILIES.values():
            expected |= set(family_names)
        assert set(names) == expected

    def test_paper_suites_stay_table2(self):
        # The harness pins its figures/tables to the paper suites; adding
        # scenario families must never change them.
        assert PAPER_SUITE_NAMES == ("dsp", "machsuite", "vision")
        paper = [w.name for s in PAPER_SUITE_NAMES for w in get_suite(s)]
        assert len(paper) == 19
        assert set(paper) == set(TABLE2)

    def test_suite_names(self):
        assert SUITE_NAMES == (
            "dsp", "machsuite", "vision", "fsm", "tdm", "irregular"
        )

    def test_suite_sizes(self):
        assert len(get_suite("dsp")) == 5
        assert len(get_suite("machsuite")) == 5
        assert len(get_suite("vision")) == 9
        for family in NEW_FAMILIES:
            assert len(get_suite(family)) == 3

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            get_suite("audio")

    def test_unknown_workload_lists_known(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("quicksort")

    def test_factories_return_fresh_instances(self):
        a = get_workload("fir")
        b = get_workload("fir")
        assert a is not b
        assert a.name == b.name

    def test_index_built_once_not_per_lookup(self):
        # Regression: get_workload used to instantiate every workload on
        # every call; the cached index pays one build pass, then only the
        # requested factory runs per lookup.
        import repro.workloads as wl

        calls = []
        original = wl.SUITES["dsp"][2]  # fir

        def counting_fir():
            calls.append(1)
            return original()

        patched = list(wl.SUITES["dsp"])
        patched[2] = counting_fir
        wl.SUITES["dsp"] = tuple(patched)
        try:
            wl._WORKLOAD_INDEX.clear()
            get_workload("gemm")  # build pass: each factory runs once
            assert calls == [1]
            get_workload("gemm")
            get_workload("mm")  # further lookups reuse the index
            assert calls == [1]
            get_workload("fir")  # only now does fir's factory run again
            assert calls == [1, 1]
        finally:
            patched[2] = original
            wl.SUITES["dsp"] = tuple(patched)
            wl._WORKLOAD_INDEX.clear()

    def test_duplicate_workload_name_rejected(self):
        import repro.workloads as wl
        from repro.workloads.dsp import fir

        def impostor():
            return fir()  # same workload name, different factory

        wl.SUITES["dup-test"] = (impostor,)
        try:
            wl._WORKLOAD_INDEX.clear()
            with pytest.raises(ValueError, match="duplicate workload"):
                get_workload("fir")
        finally:
            del wl.SUITES["dup-test"]
            wl._WORKLOAD_INDEX.clear()


@pytest.mark.parametrize("name", sorted(TABLE2))
class TestPerWorkload:
    def test_validates(self, name):
        w = get_workload(name)
        w.validate()  # must not raise

    def test_dtype_matches_table2(self, name):
        w = get_workload(name)
        assert w.dtype.name == TABLE2[name][0]

    def test_suite_matches_table2(self, name):
        w = get_workload(name)
        assert w.suite == TABLE2[name][1]

    def test_has_work(self, name):
        w = get_workload(name)
        assert w.trip_product > 0
        assert w.memory_op_count() >= 1


class TestWorkloadCharacter:
    """Spot-check the architectural character the paper relies on."""

    def test_fir_matches_figure5_structure(self):
        w = get_workload("fir")
        assert [l.var for l in w.loops] == ["io", "j", "ii"]
        assert w.statements[0].is_reduction

    def test_variable_trip_workloads(self):
        # Table IV: cholesky, crs (and solver's triangular loop) have
        # variable trip counts.
        for name in ("cholesky", "crs", "solver"):
            assert get_workload(name).has_variable_trip, name

    def test_fixed_trip_workloads(self):
        for name in ("mm", "gemm", "blur", "accumulate"):
            assert not get_workload(name).has_variable_trip, name

    def test_indirect_workloads(self):
        from repro.ir import IndirectIndex

        for name in ("crs", "ellpack"):
            w = get_workload(name)
            assert any(
                isinstance(idx, IndirectIndex)
                for _, idx, _ in w.all_accesses()
            ), name

    def test_channel_extract_is_pure_data_movement(self):
        w = get_workload("channel-ext")
        assert w.compute_op_count() == 0

    def test_blur_has_no_multiplies(self):
        counts = get_workload("blur").op_counts()
        assert counts.get(Op.MUL, 0) == 0
        assert counts.get(Op.ADD, 0) == 8

    def test_bgr2grey_op_mix(self):
        counts = get_workload("bgr2grey").op_counts()
        assert counts[Op.MUL] == 3
        assert counts[Op.ADD] == 2
        assert counts[Op.SHR] == 1

    def test_cholesky_has_divides(self):
        counts = get_workload("cholesky").op_counts()
        assert counts.get(Op.DIV, 0) == 2

    def test_reductions(self):
        for name in ("mm", "gemm", "fir", "crs", "ellpack", "accumulate"):
            w = get_workload(name)
            assert any(s.is_reduction for s in w.statements), name

    def test_vision_frame_sizes(self):
        w = get_workload("accumulate")
        assert w.array("src").size == 128 * 128 * 4

    def test_derivative_uses_halo_frame(self):
        w = get_workload("derivative")
        assert w.array("src").size == 130 * 130 * 4


@pytest.mark.parametrize(
    "name", [n for family in NEW_FAMILIES.values() for n in family]
)
class TestNewFamilyWorkloads:
    def test_validates(self, name):
        get_workload(name).validate()

    def test_suite_assignment(self, name):
        w = get_workload(name)
        assert name in NEW_FAMILIES[w.suite]

    def test_has_work(self, name):
        w = get_workload(name)
        assert w.trip_product > 0
        assert w.memory_op_count() >= 1


class TestNewFamilyCharacter:
    """The three scenario families carry their defining traits."""

    def test_fsm_workloads_are_control_dominated(self):
        # Every fsm kernel predicates its datapath with Select.
        import dataclasses

        from repro.ir.expr import Expr

        def has_select(expr):
            if isinstance(expr, Select):
                return True
            return any(
                has_select(getattr(expr, f.name))
                for f in dataclasses.fields(expr)
                if isinstance(getattr(expr, f.name), Expr)
            )

        for w in get_suite("fsm"):
            assert any(
                has_select(s.expr) for s in w.statements
            ), w.name

    def test_irregular_workloads_have_variable_trips(self):
        for w in get_suite("irregular"):
            assert w.has_variable_trip, w.name

    def test_indirect_gather_in_irregular(self):
        from repro.ir import IndirectIndex

        for name in ("hash-probe", "frontier-gather"):
            w = get_workload(name)
            assert any(
                isinstance(idx, IndirectIndex)
                for _, idx, _ in w.all_accesses()
            ), name

    def test_tdm_workloads_time_share_multipliers(self):
        # Time-multiplexed DSP kernels: either a long static multiply
        # chain (horner, biquad-cascade) or one multiplier reused across
        # a reduction loop (mac-bank).
        for w in get_suite("tdm"):
            counts = w.op_counts()
            assert counts.get(Op.MUL, 0) >= 1, w.name
            assert counts[Op.MUL] >= 4 or any(
                s.is_reduction for s in w.statements
            ), w.name

    def test_horner_chain_depth(self):
        counts = get_workload("horner").op_counts()
        assert counts[Op.MUL] == 8
        assert counts[Op.ADD] == 8
