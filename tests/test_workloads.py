"""Tests for the 19 Table II workloads."""

import pytest

from repro.ir import Op
from repro.workloads import (
    SUITE_NAMES,
    all_workloads,
    get_suite,
    get_workload,
)

#: Table II of the paper: workload -> (dtype name, suite).
TABLE2 = {
    "cholesky": ("f64", "dsp"),
    "fft": ("f32x2", "dsp"),
    "fir": ("f64", "dsp"),
    "solver": ("f64", "dsp"),
    "mm": ("f64", "dsp"),
    "stencil-3d": ("i64", "machsuite"),
    "crs": ("f64", "machsuite"),
    "gemm": ("i64", "machsuite"),
    "stencil-2d": ("i64", "machsuite"),
    "ellpack": ("f64", "machsuite"),
    "channel-ext": ("i16", "vision"),
    "bgr2grey": ("i16", "vision"),
    "blur": ("i16", "vision"),
    "accumulate": ("i16", "vision"),
    "acc-sqr": ("i16", "vision"),
    "vecmax": ("i16", "vision"),
    "acc-weight": ("i16", "vision"),
    "convert-bit": ("i16", "vision"),
    "derivative": ("i16", "vision"),
}


class TestRegistry:
    def test_all_19_workloads_present(self):
        names = [w.name for w in all_workloads()]
        assert len(names) == 19
        assert set(names) == set(TABLE2)

    def test_suite_names(self):
        assert SUITE_NAMES == ("dsp", "machsuite", "vision")

    def test_suite_sizes_match_paper(self):
        assert len(get_suite("dsp")) == 5
        assert len(get_suite("machsuite")) == 5
        assert len(get_suite("vision")) == 9

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            get_suite("audio")

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("quicksort")

    def test_factories_return_fresh_instances(self):
        a = get_workload("fir")
        b = get_workload("fir")
        assert a is not b
        assert a.name == b.name


@pytest.mark.parametrize("name", sorted(TABLE2))
class TestPerWorkload:
    def test_validates(self, name):
        w = get_workload(name)
        w.validate()  # must not raise

    def test_dtype_matches_table2(self, name):
        w = get_workload(name)
        assert w.dtype.name == TABLE2[name][0]

    def test_suite_matches_table2(self, name):
        w = get_workload(name)
        assert w.suite == TABLE2[name][1]

    def test_has_work(self, name):
        w = get_workload(name)
        assert w.trip_product > 0
        assert w.memory_op_count() >= 1


class TestWorkloadCharacter:
    """Spot-check the architectural character the paper relies on."""

    def test_fir_matches_figure5_structure(self):
        w = get_workload("fir")
        assert [l.var for l in w.loops] == ["io", "j", "ii"]
        assert w.statements[0].is_reduction

    def test_variable_trip_workloads(self):
        # Table IV: cholesky, crs (and solver's triangular loop) have
        # variable trip counts.
        for name in ("cholesky", "crs", "solver"):
            assert get_workload(name).has_variable_trip, name

    def test_fixed_trip_workloads(self):
        for name in ("mm", "gemm", "blur", "accumulate"):
            assert not get_workload(name).has_variable_trip, name

    def test_indirect_workloads(self):
        from repro.ir import IndirectIndex

        for name in ("crs", "ellpack"):
            w = get_workload(name)
            assert any(
                isinstance(idx, IndirectIndex)
                for _, idx, _ in w.all_accesses()
            ), name

    def test_channel_extract_is_pure_data_movement(self):
        w = get_workload("channel-ext")
        assert w.compute_op_count() == 0

    def test_blur_has_no_multiplies(self):
        counts = get_workload("blur").op_counts()
        assert counts.get(Op.MUL, 0) == 0
        assert counts.get(Op.ADD, 0) == 8

    def test_bgr2grey_op_mix(self):
        counts = get_workload("bgr2grey").op_counts()
        assert counts[Op.MUL] == 3
        assert counts[Op.ADD] == 2
        assert counts[Op.SHR] == 1

    def test_cholesky_has_divides(self):
        counts = get_workload("cholesky").op_counts()
        assert counts.get(Op.DIV, 0) == 2

    def test_reductions(self):
        for name in ("mm", "gemm", "fir", "crs", "ellpack", "accumulate"):
            w = get_workload(name)
            assert any(s.is_reduction for s in w.statements), name

    def test_vision_frame_sizes(self):
        w = get_workload("accumulate")
        assert w.array("src").size == 128 * 128 * 4

    def test_derivative_uses_halo_frame(self):
        w = get_workload("derivative")
        assert w.array("src").size == 130 * 130 * 4
