"""End-to-end integration tests across the whole stack.

Each test exercises the full pipeline — workload -> compiler -> scheduler
-> (DSE) -> simulator / RTL — the way the examples and benches do, but with
assertions on the cross-module contracts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DseConfig,
    explore,
    general_overlay,
    generate_variants,
    get_suite,
    get_workload,
    schedule_workload,
    simulate_schedule,
)
from repro.adg import sysadg_from_dict, sysadg_to_dict
from repro.model.resource import XCVU9P, system_resources, usable_budget
from repro.rtl import emit_system, floorplan, rtl_stats
from repro.scheduler import schedule_mdfg
from repro.sim import simulate_schedule as sim


class TestFullPipelineOnGeneralOverlay:
    @pytest.fixture(scope="class")
    def overlay(self):
        return general_overlay()

    @pytest.mark.parametrize(
        "name", [w.name for w in get_suite("dsp") + get_suite("machsuite")]
    )
    def test_compile_schedule_simulate(self, overlay, name):
        variants = generate_variants(get_workload(name))
        schedule = schedule_workload(variants, overlay.adg, overlay.params)
        assert schedule is not None, name
        result = simulate_schedule(schedule, overlay)
        assert result.cycles > 0
        # Simulated throughput never exceeds the model's bound by much
        # (the model is the optimizer's objective; the sim is the ground
        # truth — agreement within a band is the contract).
        assert result.ipc <= schedule.estimate.ipc * 1.4, name


class TestDseToRtl:
    @pytest.fixture(scope="class")
    def result(self):
        return explore(
            get_suite("dsp"), DseConfig(iterations=30, seed=11), name="it-dsp"
        )

    def test_design_fits_budget(self, result):
        assert system_resources(result.sysadg).fits_in(usable_budget())

    def test_design_simulates_every_workload(self, result):
        for name, schedule in result.schedules.items():
            r = sim(schedule, result.sysadg)
            assert r.ipc > 0, name

    def test_design_serializes_and_reloads(self, result):
        doc = sysadg_to_dict(result.sysadg)
        again = sysadg_from_dict(doc)
        # Node ids are stable across a save/load round trip, so the DSE's
        # schedules remain valid against the reloaded hardware.
        for name, schedule in result.schedules.items():
            assert schedule.is_valid_for(again.adg), name

    def test_design_emits_rtl(self, result):
        rtl = emit_system(result.sysadg)
        stats = rtl_stats(rtl)
        assert stats["modules"] == stats["endmodules"]
        assert stats["modules"] >= len(result.sysadg.adg.node_ids())

    def test_design_floorplans(self, result):
        plan = floorplan(result.sysadg)
        assert len(plan.placements) == result.sysadg.params.num_tiles


class TestNewFamiliesEndToEnd:
    """The fsm/tdm/irregular scenario families run the whole pipeline:
    schedule -> simulate -> RTL (both backends) -> floorplan."""

    FAMILIES = ("fsm", "tdm", "irregular")

    @pytest.fixture(scope="class")
    def overlay(self):
        return general_overlay()

    @pytest.mark.parametrize(
        "name",
        [w.name for f in FAMILIES for w in get_suite(f)],
    )
    def test_schedule_and_simulate(self, overlay, name):
        variants = generate_variants(get_workload(name))
        schedule = schedule_workload(variants, overlay.adg, overlay.params)
        assert schedule is not None, name
        result = simulate_schedule(schedule, overlay)
        assert result.cycles > 0
        assert result.ipc > 0

    @pytest.mark.parametrize("family", FAMILIES)
    def test_family_seed_overlay_emits_and_floorplans(self, family):
        from repro.adg import SysADG, SystemParams, seed_for_workloads
        from repro.rtl import get_backend

        sysadg = SysADG(
            adg=seed_for_workloads(get_suite(family)),
            params=SystemParams(num_tiles=2),
            name=f"{family}-seed",
        )
        for backend_name in ("verilog", "migen"):
            text = get_backend(backend_name).emit_system(sysadg)
            assert len(text.splitlines()) > 50, backend_name
        plan = floorplan(sysadg)
        assert plan.feasible
        assert len(plan.placements) == 2


class TestCustomWorkloadPath:
    """The bring-your-own-kernel path used by examples/custom_workload.py."""

    def _workload(self, n=256, batches=4):
        from repro.ir import F32, WorkloadBuilder

        wb = WorkloadBuilder("saxpy", suite="custom", dtype=F32)
        x = wb.array("x", n * batches)
        y = wb.array("y", n * batches)
        a = wb.array("a", 1)
        b = wb.loop("b", batches)
        i = wb.loop("i", n)
        wb.assign(y[b * n + i], a[0] * x[b * n + i] + y[b * n + i])
        return wb.build()

    def test_compiles_and_maps_on_general(self):
        overlay = general_overlay()
        variants = generate_variants(self._workload())
        schedule = schedule_workload(variants, overlay.adg, overlay.params)
        assert schedule is not None
        result = simulate_schedule(schedule, overlay)
        assert result.ipc > 0

    def test_dedicated_dse(self):
        res = explore(
            [self._workload()], DseConfig(iterations=12, seed=9)
        )
        assert res.choice.objective > 0

    @settings(max_examples=6, deadline=None)
    @given(
        n=st.sampled_from([64, 128, 1024]),
        batches=st.integers(1, 8),
    )
    def test_any_size_compiles(self, n, batches):
        variants = generate_variants(self._workload(n, batches))
        assert variants.variants
        for mdfg in variants.variants:
            mdfg.validate()
