"""Tests for repro.validate: generators, invariants, oracle, shrinker,
corpus, and the fuzz/validate CLI entry points."""

import random

import pytest

from repro.cli import main
from repro.validate import (
    DivergenceCorpus,
    FuzzCase,
    ProgramSpec,
    ToleranceBands,
    case_key,
    case_size,
    check_case,
    check_schedule,
    classify_bottleneck,
    fuzz_run,
    make_failure_key,
    random_case,
    random_program,
    run_oracle,
    shrink,
    validate_run,
)

#: Tolerances that flag ANY model/sim disagreement — the seeded
#: "known-divergence" configuration used throughout these tests.
ZERO_TOL = ToleranceBands(compute=0.0, memory=0.0, aux=0.0, abs_floor=0.0)


class TestGenerators:
    def test_same_seed_same_case(self):
        a = random_case("11:3")
        b = random_case("11:3")
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        cases = {case_key(random_case(f"0:{i}")) for i in range(8)}
        assert len(cases) > 1

    def test_program_builds_and_validates(self):
        rng = random.Random(5)
        for _ in range(20):
            program = random_program(rng)
            workload = program.build()       # Workload.validate() inside
            assert workload.trip_product <= 1024

    def test_case_round_trips_through_json(self):
        import json

        case = random_case("7:0")
        doc = json.loads(json.dumps(case.to_dict()))
        assert FuzzCase.from_dict(doc) == case

    def test_array_sizes_cover_accesses(self):
        rng = random.Random(9)
        for _ in range(20):
            program = random_program(rng)
            workload = program.build()
            trips = {l.var: l.trip for l in workload.loops}
            sizes = {a.name: a.size for a in workload.arrays}
            for array, index, _write in workload.all_accesses():
                top = index.const + sum(
                    c * (trips[v] - 1) for v, c in index.coeffs
                )
                assert top < sizes[array]

    def test_generated_adg_is_well_formed(self):
        for i in range(10):
            case = random_case(f"3:{i}")
            case.adg().validate()


class TestFamilyGenerators:
    """Family-aware fuzzing: fsm / tdm / irregular program shapes."""

    def test_every_family_builds_and_validates(self):
        from repro.validate import PROGRAM_FAMILIES

        for family in PROGRAM_FAMILIES:
            rng = random.Random(17)
            for _ in range(10):
                program = random_program(rng, family=family)
                program.build()  # Workload.validate() inside

    def test_unknown_family_rejected(self):
        from repro.validate import GeneratorError

        with pytest.raises(GeneratorError):
            random_program(random.Random(0), family="quantum")

    def test_mixed_draw_covers_all_families(self):
        # Unconstrained generation must eventually draw each family.
        from repro.validate import PROGRAM_FAMILIES

        seen = set()
        for i in range(120):
            rng = random.Random(i)
            program = random_program(rng)
            if program.statement.predicate is not None:
                seen.add("fsm")
            if program.variable_trips:
                seen.add("irregular")
            if len(program.statement.terms) >= 4:
                seen.add("tdm")
            if (
                program.statement.predicate is None
                and not program.variable_trips
            ):
                seen.add("affine")
        assert seen >= set(PROGRAM_FAMILIES)

    def test_fsm_programs_carry_predicates(self):
        rng = random.Random(23)
        for _ in range(10):
            program = random_program(rng, family="fsm")
            assert program.statement.predicate is not None
            workload = program.build()
            assert "select" in " ".join(
                str(s.expr) for s in workload.statements
            )

    def test_irregular_programs_have_variable_trips(self):
        rng = random.Random(29)
        for _ in range(10):
            program = random_program(rng, family="irregular")
            assert program.variable_trips
            workload = program.build()
            assert workload.has_variable_trip

    def test_family_cases_round_trip_through_json(self):
        import json

        from repro.validate import PROGRAM_FAMILIES

        for family in PROGRAM_FAMILIES:
            rng = random.Random(31)
            program = random_program(rng, family=family)
            doc = json.loads(json.dumps(program.to_dict()))
            assert ProgramSpec.from_dict(doc) == program

    def test_affine_serialization_unchanged(self):
        # Backcompat: affine specs must not grow new keys, so corpus
        # fingerprints from before the family extension stay stable.
        rng = random.Random(37)
        for _ in range(10):
            doc = random_program(rng, family="affine").to_dict()
            assert "predicate" not in doc["statement"]
            assert "variable_trips" not in doc


class TestInvariants:
    def test_clean_on_general_overlay(self):
        from repro.adg import general_overlay
        from repro.compiler import generate_variants
        from repro.scheduler import schedule_workload
        from repro.workloads import get_workload

        overlay = general_overlay()
        schedule = schedule_workload(
            generate_variants(get_workload("fir")),
            overlay.adg,
            overlay.params,
        )
        assert check_case(overlay.adg, schedule) == []

    def test_detects_corrupted_placement(self):
        from repro.adg import general_overlay
        from repro.compiler import generate_variants
        from repro.scheduler import schedule_workload
        from repro.workloads import get_workload

        overlay = general_overlay()
        schedule = schedule_workload(
            generate_variants(get_workload("vecmax")),
            overlay.adg,
            overlay.params,
        )
        dfg_id = next(iter(schedule.placement))
        schedule.placement[dfg_id] = 10_000   # nonexistent hardware
        violations = check_schedule(schedule, overlay.adg)
        assert violations
        assert all(v.invariant == "schedule" for v in violations)


class TestOracle:
    def test_bottleneck_classes(self):
        assert classify_bottleneck("none") == "compute"
        assert classify_bottleneck("dram") == "memory"
        assert classify_bottleneck("spad3.read") == "memory"
        assert classify_bottleneck("noc") == "memory"
        assert classify_bottleneck("rec") == "aux"

    def test_default_bands_accept_generated_cases(self):
        for i in range(15):
            result = run_oracle(random_case(f"0:{i}"))
            assert result.outcome in ("ok", "unschedulable"), (
                i, result.outcome, result.detail
            )

    def test_zero_tolerance_forces_divergence(self):
        diverged = 0
        for i in range(10):
            result = run_oracle(random_case(f"0:{i}"), ZERO_TOL)
            if result.outcome == "divergence":
                diverged += 1
                assert result.rel_error > 0
        assert diverged > 0

    def test_infinite_model_cycles_classified_nonfinite(self, monkeypatch):
        # Regression: an inf estimate used to flow into rel_error, where
        # it poisoned max/mean aggregates and round(inf) produced
        # non-strict JSON.  It must surface as its own outcome instead.
        import repro.validate.oracle as oracle_mod

        monkeypatch.setattr(
            oracle_mod, "estimate_cycles",
            lambda *a, **k: float("inf"),
        )
        result = run_oracle(random_case("0:0"))
        assert result.outcome == "nonfinite"
        assert result.rel_error == float("inf")
        # stats_doc stays strict JSON: non-finite floats become None.
        import json

        doc = result.stats_doc()
        json.dumps(doc, allow_nan=False)
        assert doc["rel_error"] is None
        assert doc["model_cycles"] is None

    def test_oracle_never_raises_on_corrupt_case(self):
        case = random_case("2:0")
        broken = FuzzCase(
            program=ProgramSpec.from_dict(
                {**case.program.to_dict(), "dtype": "q128"}
            ),
            adg_doc=case.adg_doc,
            params=case.params,
        )
        assert run_oracle(broken).outcome == "build_error"


class TestShrinker:
    def _failing_case(self):
        for i in range(20):
            case = random_case(f"0:{i}")
            if run_oracle(case, ZERO_TOL).outcome == "divergence":
                return case
        pytest.fail("no divergent case in 20 seeds")

    def test_shrinks_known_divergence_to_minimal_repro(self):
        case = self._failing_case()
        predicate = make_failure_key(ZERO_TOL)
        result = shrink(case, predicate)
        assert result.steps > 0
        # Still fails the same way...
        assert predicate(result.case) == result.key
        # ...and is strictly simpler than where it started.
        assert len(result.case.program.loops) <= len(case.program.loops)
        assert len(result.case.adg_doc["nodes"]) < len(case.adg_doc["nodes"])

    def test_shrink_is_deterministic(self):
        case = self._failing_case()
        predicate = make_failure_key(ZERO_TOL)
        a = shrink(case, predicate)
        b = shrink(case, predicate)
        assert a.case == b.case and a.steps == b.steps

    def test_shrink_rejects_passing_case(self):
        case = random_case("0:0")
        with pytest.raises(ValueError):
            shrink(case, lambda _: None)

    def test_drop_family_features_strips_markers(self):
        from repro.validate.shrinker import _drop_family_features

        rng = random.Random(41)
        fsm = random_program(rng, family="fsm")
        candidates = list(_drop_family_features(fsm))
        assert any(c.statement.predicate is None for c in candidates)
        irregular = random_program(rng, family="irregular")
        candidates = list(_drop_family_features(irregular))
        assert any(not c.variable_trips for c in candidates)
        # Stripped programs still build.
        for c in candidates:
            c.build()

    def test_shrunk_family_case_still_builds(self):
        # A family case whose failure key ignores the family markers
        # shrinks to an affine core.
        rng = random.Random(43)
        program = random_program(rng, family="fsm")
        base = random_case("0:0")
        case = FuzzCase(
            program=program,
            adg_doc=base.adg_doc,
            params=base.params,
            origin="test",
        )

        def key(candidate):
            return "always"  # any reduction is acceptable

        result = shrink(case, key)
        assert result.case.program.statement.predicate is None
        result.case.program.build()


class TestCorpus:
    def test_add_dedups_and_replays(self, tmp_path):
        corpus = DivergenceCorpus(tmp_path / "corpus")
        case = random_case("5:1")
        key, new = corpus.add(case, "divergence:compute", {"rel_error": 1.0})
        assert new
        key2, new2 = corpus.add(case, "divergence:compute")
        assert key2 == key and not new2
        entries = list(corpus.entries())
        assert len(entries) == 1
        stored_key, stored_case, meta = entries[0]
        assert stored_key == key
        assert stored_case == case
        assert meta["failure_key"] == "divergence:compute"

    def test_key_ignores_origin(self):
        case = random_case("5:1")
        relabeled = FuzzCase(
            program=case.program,
            adg_doc=case.adg_doc,
            params=case.params,
            origin="elsewhere",
        )
        assert case_key(case) == case_key(relabeled)

    def _two_cases_sized(self):
        """Two distinct cases, returned (smaller, larger) by case_size."""
        a, b = random_case("5:1"), random_case("5:2")
        assert case_size(a) != case_size(b), "pick different seeds"
        return (a, b) if case_size(a) < case_size(b) else (b, a)

    def test_add_dedups_by_failure_key_keeping_smallest(self, tmp_path):
        # Regression: the corpus used to dedupe only by raw case key, so
        # one model bug hit by many generated cases piled up one entry
        # per case.  One failure signature must keep one minimal repro.
        small, large = self._two_cases_sized()
        corpus = DivergenceCorpus(tmp_path / "corpus")
        key_l, new_l = corpus.add(large, "divergence:memory")
        assert new_l
        # A bigger witness of a known signature is not stored.
        key_s, new_s = corpus.add(small, "divergence:memory")
        assert new_s and key_s != key_l
        assert len(corpus) == 1
        assert corpus.failure_keys() == ["divergence:memory"]
        # Re-adding the displaced larger case now points at the smaller.
        key_again, new_again = corpus.add(large, "divergence:memory")
        assert key_again == key_s and not new_again
        assert len(corpus) == 1
        # A different signature coexists.
        _, new_other = corpus.add(large, "divergence:compute")
        assert new_other
        assert len(corpus) == 2

    def test_migrate_collapses_predeup_corpus(self, tmp_path):
        from repro.validate.corpus import CORPUS_VERSION

        small, large = self._two_cases_sized()
        corpus = DivergenceCorpus(tmp_path / "corpus")
        # Simulate a pre-dedup corpus: two entries, same failure key.
        for case in (small, large):
            corpus.store.put(
                case_key(case),
                {"corpus_version": CORPUS_VERSION, "case": case.to_dict()},
                meta={"kind": "divergence-case",
                      "failure_key": "divergence:memory", "summary": {}},
            )
        assert len(corpus) == 2
        assert corpus.migrate() == 1
        entries = list(corpus.entries())
        assert len(entries) == 1
        assert entries[0][1] == small          # smallest witness survives
        assert corpus.migrate() == 0           # idempotent


class TestFuzzRun:
    def test_clean_run_has_no_violations(self):
        stats = fuzz_run(budget=20, seed=0)
        assert stats.invariant_violations == 0
        assert sum(stats.outcomes.values()) == 20
        assert stats.compared > 0

    def test_run_is_deterministic(self):
        a = fuzz_run(budget=15, seed=3)
        b = fuzz_run(budget=15, seed=3)
        assert a.render() == b.render()
        assert a.stats_doc() == b.stats_doc()

    def test_failures_recorded_and_shrunk(self, tmp_path):
        stats = fuzz_run(
            budget=5, seed=0, corpus_dir=str(tmp_path / "c"), bands=ZERO_TOL
        )
        assert stats.failures
        for failure in stats.failures:
            assert failure.corpus_key
            assert failure.failure_key.startswith("divergence")
        corpus = DivergenceCorpus(tmp_path / "c")
        assert len(corpus) >= 1

    def test_corpus_replay_through_validate_run(self, tmp_path):
        corpus_dir = str(tmp_path / "c")
        stats = fuzz_run(budget=5, seed=0, corpus_dir=corpus_dir, bands=ZERO_TOL)
        assert stats.failures
        report = validate_run(corpus_dir=corpus_dir, bands=ZERO_TOL)
        assert report.ok
        assert report.corpus_total >= 1
        assert report.corpus_reproduced == report.corpus_total

    def test_validate_run_clean_without_corpus(self):
        report = validate_run()
        assert report.ok
        # All six suites: the 19 Table II workloads + 9 scenario-family.
        assert report.workloads_checked == 28

    def test_class_stats_quarantine_nonfinite_errors(self):
        from repro.validate.runner import ClassStats

        stats = ClassStats()
        stats.record(0.25, passed=True)
        stats.record(float("inf"), passed=False)
        stats.record(float("nan"), passed=False)
        assert stats.cases == 3
        assert stats.nonfinite == 2
        assert stats.max_rel_error == 0.25     # inf did not poison max
        assert stats.mean_rel_error == 0.25    # ...or the mean
        # nonfinite cases never count as passed
        assert stats.passed == 1

    def test_fuzz_run_records_nonfinite_failures(self, tmp_path, monkeypatch):
        import json

        import repro.validate.oracle as oracle_mod

        monkeypatch.setattr(
            oracle_mod, "estimate_cycles", lambda *a, **k: float("inf")
        )
        corpus_dir = str(tmp_path / "c")
        stats = fuzz_run(budget=4, seed=0, corpus_dir=corpus_dir)
        assert stats.outcomes.get("nonfinite", 0) > 0
        keys = {f.failure_key for f in stats.failures}
        assert any(k.startswith("nonfinite:") for k in keys)
        # The whole stats document stays strict JSON.
        json.dumps(stats.stats_doc(), allow_nan=False)
        for klass_doc in stats.stats_doc()["by_class"].values():
            assert klass_doc["nonfinite"] >= 0

    def test_fuzz_run_start_offset_matches_serial_draw(self):
        serial = fuzz_run(budget=6, seed=7, keep_records=True)
        lo = fuzz_run(budget=3, seed=7, start=0, keep_records=True)
        hi = fuzz_run(budget=3, seed=7, start=3, keep_records=True)
        assert [r.index for r in lo.records + hi.records] == [
            r.index for r in serial.records
        ]
        assert lo.records + hi.records == serial.records


class TestCliIntegration:
    def test_fuzz_cli_reruns_byte_identically(self, tmp_path, capsys):
        argv = [
            "fuzz", "--budget", "12", "--seed", "4",
            "--corpus", str(tmp_path / "c1"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        argv[-1] = str(tmp_path / "c2")
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "invariant violations: 0" in first

    def test_fuzz_then_validate_replays_minimal_repro(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        argv = [
            "fuzz", "--budget", "4", "--seed", "0", "--corpus", corpus,
            "--rel-tol", "0", "--abs-floor", "0",
        ]
        rc = main(argv)
        out = capsys.readouterr().out
        assert rc == 1                      # new failures recorded
        assert "divergence" in out
        assert "new failures:" in out
        # Re-running finds only known failures: exit 0.
        rc = main(argv)
        out = capsys.readouterr().out
        assert rc == 0
        assert "new failures:" not in out
        rc = main(
            ["validate", "--corpus", corpus, "--rel-tol", "0",
             "--abs-floor", "0"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "still reproduce" in out

    def test_validate_cli_without_corpus(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "invariant violations: 0" in out

    def test_fuzz_metrics_stream(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "events.jsonl"
        assert main(
            ["fuzz", "--budget", "3", "--seed", "1",
             "--metrics", str(metrics)]
        ) == 0
        capsys.readouterr()
        events = [
            json.loads(line)["event"]
            for line in metrics.read_text().strip().splitlines()
        ]
        assert events[0] == "fuzz_start"
        assert events[-1] == "fuzz_done"
