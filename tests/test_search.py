"""Tests for repro.search: the strategy protocol, the golden anneal
equivalence, and the determinism contracts (serial == pool, resume ==
one-shot, PYTHONHASHSEED-invariant studies)."""

import hashlib
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.dse import DseConfig, Explorer
from repro.engine import DseEngine, MetricsLogger
from repro.engine.store import ArtifactStore
from repro.profile.memo import clear_memos
from repro.search import (
    SearchContext,
    SearchError,
    SearchSettings,
    export_study,
    make_strategy,
    run_search,
    stable_rng,
    strategy_names,
)
from repro.workloads import get_workload

CFG = DseConfig(iterations=10, seed=3)


@pytest.fixture(scope="module")
def vecmax():
    return [get_workload("vecmax")]


def _store_bytes(store: ArtifactStore) -> bytes:
    paths = sorted(store.root.glob("*/*.pkl"))
    assert paths, "store holds no artifacts"
    return b"".join(p.read_bytes() for p in paths)


class TestStrategyRegistry:
    def test_registered_names(self):
        assert strategy_names() == [
            "anneal", "bottleneck", "evolutionary", "tpe",
        ]

    def test_unknown_strategy_lists_available(self, vecmax):
        ctx = SearchContext(
            workloads=vecmax, config=CFG, seed=0, name="t"
        )
        with pytest.raises(SearchError) as excinfo:
            make_strategy("nope", ctx)
        message = str(excinfo.value)
        assert "nope" in message
        for name in strategy_names():
            assert name in message

    def test_run_search_rejects_unknown_strategy(self, vecmax):
        with pytest.raises(SearchError):
            run_search(
                vecmax, CFG, SearchSettings(strategy="nope", trials=1)
            )

    def test_run_search_rejects_empty_workloads(self):
        with pytest.raises(SearchError):
            run_search([], CFG, SearchSettings(trials=1))


class TestStableRng:
    def test_same_tags_same_stream(self):
        assert (
            stable_rng(3, "a", "b").random()
            == stable_rng(3, "a", "b").random()
        )

    def test_different_tags_diverge(self):
        assert (
            stable_rng(3, "search", "tpe").random()
            != stable_rng(3, "search", "evolutionary").random()
        )

    def test_seed_matters(self):
        assert stable_rng(1, "x").random() != stable_rng(2, "x").random()


class TestGoldenAnneal:
    def test_anneal_strategy_matches_legacy_explorer_bytes(self, vecmax):
        """The re-based annealer is byte-identical to ``Explorer.run``.

        The config-scoped schedule memo is process-global; clearing it
        before each run keeps the two in-process runs' pickle
        object-sharing graphs comparable (separate processes need no
        clearing).
        """
        clear_memos()
        legacy = Explorer(vecmax, CFG, name="golden").run()
        clear_memos()
        outcome = run_search(
            vecmax,
            CFG,
            SearchSettings(
                strategy="anneal",
                trials=CFG.iterations,
                batch=1,
                seed=CFG.seed,
            ),
            name="golden",
        )
        assert outcome.dse_result is not None

        def norm(x):
            return pickle.dumps(pickle.loads(pickle.dumps(x)))

        assert norm(legacy) == norm(outcome.dse_result)
        assert legacy.choice.objective == outcome.dse_result.choice.objective

    def test_anneal_trials_mirror_accepted_points(self, vecmax):
        outcome = run_search(
            vecmax,
            CFG,
            SearchSettings(
                strategy="anneal",
                trials=CFG.iterations,
                seed=CFG.seed,
            ),
        )
        result = outcome.dse_result
        assert result is not None
        # Every accepted point carries the full resource vector.
        assert result.points
        for point in result.points:
            it, modeled_h, objective, lut, ff, bram, dsp = point
            assert objective > 0 and lut > 0 and ff > 0
        # The study recorded one trial per evaluated candidate.
        assert 0 < len(outcome.study.trials) <= CFG.iterations


@pytest.mark.parametrize("name", ["bottleneck", "evolutionary", "tpe"])
def test_strategy_fills_trial_budget(name, vecmax):
    outcome = run_search(
        vecmax,
        CFG,
        SearchSettings(strategy=name, trials=4, batch=2, seed=2),
    )
    assert len(outcome.study.trials) == 4
    assert outcome.best_trial is not None
    # Persisted trials are stripped of the in-memory SystemChoice.
    assert all(t.choice is None for t in outcome.study.trials)
    assert [t.index for t in outcome.study.trials] == [0, 1, 2, 3]


def test_rebuild_best_realizes_design(vecmax):
    outcome = run_search(
        vecmax,
        CFG,
        SearchSettings(strategy="bottleneck", trials=3, seed=2),
        rebuild_best=True,
    )
    assert outcome.sysadg is not None
    assert outcome.choice is not None
    assert outcome.choice.objective == outcome.best_trial.objective


class TestWorkerInvariance:
    def test_tpe_pool_study_is_byte_identical_to_serial(
        self, vecmax, tmp_path
    ):
        exports, raw = [], []
        for workers, sub in ((1, "serial"), (3, "pool")):
            store = ArtifactStore(tmp_path / sub)
            outcome = run_search(
                vecmax,
                CFG,
                SearchSettings(
                    strategy="tpe",
                    trials=6,
                    batch=3,
                    seed=3,
                    workers=workers,
                ),
                store=store,
            )
            exports.append(export_study(outcome.study))
            raw.append(_store_bytes(store))
        assert exports[0] == exports[1]
        # Not just the export: the persisted artifact itself.
        assert raw[0] == raw[1]

    def test_resume_equals_one_shot(self, vecmax, tmp_path):
        def settings(trials):
            return SearchSettings(
                strategy="evolutionary", trials=trials, batch=2, seed=1
            )

        split = ArtifactStore(tmp_path / "split")
        run_search(vecmax, CFG, settings(4), store=split)
        resumed = run_search(vecmax, CFG, settings(8), store=split)
        assert resumed.resumed

        oneshot = run_search(
            vecmax, CFG, settings(8), store=ArtifactStore(tmp_path / "one")
        )
        assert not oneshot.resumed
        assert export_study(resumed.study) == export_study(oneshot.study)

    def test_warm_store_is_a_pure_cache_hit(self, vecmax, tmp_path):
        store = ArtifactStore(tmp_path / "warm")
        settings = SearchSettings(strategy="tpe", trials=4, batch=2, seed=5)
        first = run_search(vecmax, CFG, settings, store=store)
        again = run_search(vecmax, CFG, settings, store=store)
        assert again.resumed
        assert export_study(first.study) == export_study(again.study)


_HASHSEED_SCRIPT = """\
import sys
from repro.dse import DseConfig
from repro.engine.store import ArtifactStore
from repro.search import SearchSettings, export_study, run_search
from repro.workloads import get_workload

outcome = run_search(
    [get_workload("vecmax")],
    DseConfig(iterations=6, seed=3),
    SearchSettings(strategy="tpe", trials=4, batch=2, seed=3),
    store=ArtifactStore(sys.argv[1]),
)
sys.stdout.write(export_study(outcome.study))
"""


class TestSeedStability:
    def test_studies_are_hashseed_invariant(self, tmp_path):
        """Two processes with different string-hash seeds must write the
        same study: same export text AND same artifact bytes."""
        src = str(Path(repro.__file__).resolve().parents[1])
        outs, raw = [], []
        for hashseed in ("0", "1"):
            store_dir = tmp_path / f"hs{hashseed}"
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", _HASHSEED_SCRIPT, str(store_dir)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outs.append(proc.stdout)
            raw.append(_store_bytes(ArtifactStore(store_dir)))
        assert outs[0] == outs[1]
        assert hashlib.sha256(raw[0]).digest() == hashlib.sha256(raw[1]).digest()


class TestDsePointEvents:
    def test_engine_emits_resource_vector_per_accepted_point(self, vecmax):
        metrics = MetricsLogger()
        engine = DseEngine(cache_dir=None, workers=1, metrics=metrics)
        res = engine.explore(
            vecmax, DseConfig(iterations=6, seed=3), name="pts", seeds=[3]
        )
        points = metrics.of_type("dse_point")
        assert points
        for event in points:
            for key in (
                "seed", "iteration", "modeled_hours", "objective",
                "lut", "ff", "bram", "dsp",
            ):
                assert key in event
            assert event["seed"] == 3
            assert event["lut"] > 0
        iterations = [e["iteration"] for e in points]
        assert iterations == sorted(iterations)
        # Same rows the DseResult itself carries.
        assert len(points) == len(res.result.points)
