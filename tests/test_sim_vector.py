"""Vectorized simulator core: parity goldens, batching, and satellites.

The vectorized core's contract is *bit-identical* cycle accounting: every
``SimResult`` field (cycles is an IEEE-754 double) must equal the object
model's, and every raised ``SimulationError`` must carry the same message.
These tests pin that contract on the bench workloads, on fuzz-generated
cases (the differential oracle's own distribution), and on crafted edge
cases (deadlock, zero-trip streams, clamped measurement windows).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adg import SysADG, general_overlay
from repro.compiler import generate_variants, lower
from repro.dfg import StreamKind
from repro.scheduler import schedule_mdfg, schedule_workload
from repro.sim import (
    SimResult,
    SimulationError,
    build_tile,
    simulate_batch,
    simulate_schedule,
    simulate_workloads_jobs,
    vector_core_available,
)
from repro.sim.simulator import _resolve_core
from repro.validate.generators import random_case
from repro.workloads import get_workload

needs_kernel = pytest.mark.skipif(
    not vector_core_available(),
    reason="no C compiler: vector core unavailable",
)

BENCH_WORKLOADS = ("fir", "mm", "bgr2grey", "vecmax")


@pytest.fixture(scope="module")
def overlay():
    return general_overlay()


def scheduled(name, overlay):
    schedule = schedule_workload(
        generate_variants(get_workload(name)), overlay.adg, overlay.params
    )
    assert schedule is not None
    return schedule


def scheduled_recurrence(name, overlay):
    """Schedule the recurrence-engine variant (out-port -> in-port loop)."""
    mdfg = lower(get_workload(name), use_recurrence=True)
    assert any(s.kind is StreamKind.RECURRENCE for s in mdfg.streams)
    schedule = schedule_mdfg(mdfg, overlay.adg, overlay.params)
    assert schedule is not None
    return schedule


def assert_identical(a: SimResult, b: SimResult) -> None:
    """Field-exact equality — floats compared with ==, not approx."""
    for f in dataclasses.fields(SimResult):
        av, bv = getattr(a, f.name), getattr(b, f.name)
        assert av == bv, f"{f.name}: {av!r} != {bv!r}"


def both_cores(schedule, sysadg, **kwargs):
    obj = simulate_schedule(schedule, sysadg, core="object", **kwargs)
    vec = simulate_schedule(schedule, sysadg, core="vector", **kwargs)
    return obj, vec


@needs_kernel
class TestGoldenParity:
    @pytest.mark.parametrize("name", BENCH_WORKLOADS)
    def test_bench_workload_defaults(self, name, overlay):
        obj, vec = both_cores(scheduled(name, overlay), overlay)
        assert_identical(obj, vec)

    @pytest.mark.parametrize("name", ("mm", "vecmax"))
    def test_exact_runs(self, name, overlay):
        obj, vec = both_cores(scheduled(name, overlay), overlay, exact=True)
        assert not obj.extrapolated
        assert_identical(obj, vec)

    def test_extrapolated_run(self, overlay):
        # fir does not drain in 20k cycles -> exercises the window
        # snapshot + steady-state extrapolation on both cores.
        obj, vec = both_cores(
            scheduled("fir", overlay), overlay, max_exact_cycles=20_000
        )
        assert obj.extrapolated
        assert_identical(obj, vec)

    def test_clamped_measure_window(self, overlay):
        # measure_window >= max_exact_cycles clamps the window to half the
        # cap; the snapshot then lands mid-run (and, on the vector core,
        # possibly mid-skip).
        obj, vec = both_cores(
            scheduled("fir", overlay),
            overlay,
            max_exact_cycles=7_000,
            measure_window=9_000,
        )
        assert obj.extrapolated
        assert_identical(obj, vec)

    def test_onehot_bypass_off(self, overlay):
        obj, vec = both_cores(
            scheduled("vecmax", overlay), overlay, onehot_bypass=False
        )
        assert_identical(obj, vec)

    @pytest.mark.parametrize("name", ("fir", "gemm"))
    def test_recurrence_variant(self, name, overlay):
        # the recurrence engine's forward_to loop (out-port -> buffer ->
        # in-port) is the one stream topology the bench set never takes
        obj, vec = both_cores(scheduled_recurrence(name, overlay), overlay)
        assert_identical(obj, vec)


@needs_kernel
class TestFuzzParity:
    """The oracle's own case distribution, object vs vector."""

    @staticmethod
    def run_case(seed: str):
        case = random_case(seed)
        workload = case.program.build()
        adg = case.adg()
        params = case.system_params()
        schedule = schedule_workload(
            generate_variants(workload), adg, params
        )
        if schedule is None:
            return None
        sysadg = SysADG(adg=adg, params=params, name="fuzz")
        outcomes = []
        for core in ("object", "vector"):
            try:
                outcomes.append(simulate_schedule(schedule, sysadg, core=core))
            except SimulationError as exc:
                outcomes.append(str(exc))
        return outcomes

    def test_generator_corpus(self):
        compared = 0
        for i in range(12):
            outcomes = self.run_case(f"vector-parity:{i}")
            if outcomes is None:
                continue
            obj, vec = outcomes
            if isinstance(obj, SimResult):
                assert isinstance(vec, SimResult), f"seed {i}: {vec}"
                assert_identical(obj, vec)
            else:
                assert obj == vec, f"seed {i}: error messages diverge"
            compared += 1
        assert compared >= 6  # the generator maps most cases

    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None, derandomize=True)
    def test_property_random_schedules(self, n):
        outcomes = self.run_case(f"vector-hyp:{n}")
        if outcomes is None:
            return
        obj, vec = outcomes
        if isinstance(obj, SimResult):
            assert_identical(obj, vec)
        else:
            assert obj == vec


@needs_kernel
class TestDeadlockParity:
    def test_identical_deadlock_message(self, overlay, monkeypatch):
        # Streams that never dispatch starve the fabric forever; both
        # cores must raise the same no-progress error at the same cycle
        # (the vector core reaches it through its deadline skip).
        import repro.sim.simulator as simmod

        real_build = simmod.build_tile

        def starved(*args, **kwargs):
            engines, fabric, pools = real_build(*args, **kwargs)
            for engine in engines:
                for stream in engine.streams:
                    stream.dispatched_at = 10**9
            return engines, fabric, pools

        schedule = scheduled("mm", overlay)
        messages = []
        for core in ("object", "vector"):
            monkeypatch.setattr(simmod, "build_tile", starved)
            with pytest.raises(SimulationError) as exc:
                simulate_schedule(schedule, overlay, core=core)
            messages.append(str(exc.value))
        assert messages[0] == messages[1]
        assert "no progress for 20k cycles at cycle 20001" in messages[0]


class TestCoreSelection:
    def test_invalid_core_rejected(self, overlay):
        with pytest.raises(SimulationError, match="unknown simulator core"):
            simulate_schedule(
                scheduled("mm", overlay), overlay, core="bogus"
            )

    def test_env_var_selects_core(self, overlay, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CORE", "nope")
        with pytest.raises(SimulationError, match="unknown simulator core"):
            simulate_schedule(scheduled("mm", overlay), overlay)
        monkeypatch.setenv("REPRO_SIM_CORE", "object")
        assert _resolve_core(None) == "object"
        # explicit argument wins over the environment
        assert _resolve_core("auto") == "auto"

    def test_object_core_always_available(self, overlay):
        result = simulate_schedule(
            scheduled("vecmax", overlay), overlay, core="object"
        )
        assert result.cycles > 0


@needs_kernel
class TestBatch:
    def test_batch_identical_to_serial(self, overlay):
        names = ["fir", "mm", "fir", "vecmax", "mm"]  # with duplicates
        pairs = [(scheduled(n, overlay), overlay) for n in names]
        serial = [simulate_schedule(s, d) for s, d in pairs]
        batched = simulate_batch(pairs)
        assert len(batched) == len(serial)
        for a, b in zip(serial, batched):
            assert_identical(a, b)

    def test_batch_dedupes_duplicates(self, overlay):
        pair = (scheduled("mm", overlay), overlay)
        first, second = simulate_batch([pair, pair])
        assert first is second  # answered from the content key
        no_dedupe = simulate_batch([pair, pair], dedupe=False)
        assert no_dedupe[0] is not no_dedupe[1]
        assert_identical(first, no_dedupe[0])

    def test_batch_options_forwarded(self, overlay):
        pairs = [(scheduled("mm", overlay), overlay)]
        ref = simulate_schedule(pairs[0][0], overlay, exact=True)
        batched = simulate_batch(pairs, exact=True)
        assert_identical(ref, batched[0])

    def test_jobs_sharded_parity(self, overlay):
        names = ["fir", "mm", "bgr2grey", "vecmax"]
        serial = [
            simulate_schedule(scheduled(n, overlay), overlay) for n in names
        ]
        for shards in (1, 2, 4):
            out = simulate_workloads_jobs(overlay, names, shards=shards)
            assert len(out) == len(names)
            for a, b in zip(serial, out):
                assert_identical(a, b)

    def test_jobs_process_pool_parity(self, overlay):
        names = ["mm", "vecmax"]
        serial = [
            simulate_schedule(scheduled(n, overlay), overlay) for n in names
        ]
        out = simulate_workloads_jobs(overlay, names, workers=2)
        for a, b in zip(serial, out):
            assert_identical(a, b)

    def test_jobs_empty(self, overlay):
        assert simulate_workloads_jobs(overlay, []) == []


@needs_kernel
class TestServeBatchOp:
    def test_docs_byte_identical_to_serial_op(self, overlay):
        from repro.serve import simulate_batch_op, simulate_op
        from repro.serve.protocol import canonical_dumps

        names = ["fir", "mm", "fir", "vecmax"]
        docs = simulate_batch_op(overlay, names)
        for name, doc in zip(names, docs):
            assert canonical_dumps(doc) == canonical_dumps(
                simulate_op(overlay, name)
            )

    def test_unknown_workload_rejected(self, overlay):
        from repro.serve import simulate_batch_op
        from repro.serve.errors import BadRequestError

        with pytest.raises(BadRequestError):
            simulate_batch_op(overlay, ["mm", "no-such-workload"])


class TestMultiplexBatched:
    def test_per_kernel_matches_serial_simulation(self, overlay):
        from repro.sim import run_sequence

        schedules = [scheduled(n, overlay) for n in ("mm", "vecmax", "mm")]
        result = run_sequence(schedules, overlay, repeats=2)
        for schedule in schedules:
            key = f"{schedule.mdfg.workload}/{schedule.mdfg.variant}"
            assert_identical(
                result.per_kernel[key],
                simulate_schedule(schedule, overlay),
            )


# ---------------------------------------------------------------------------
# Satellites: cycle-accounting audits riding along with the rewrite.
# ---------------------------------------------------------------------------


def tile_fingerprint(engines, fabric, pools):
    """Order-stable snapshot of every mutable tile quantity."""
    fifo_ids = {}

    def fid(fifo):
        return fifo_ids.setdefault(id(fifo), len(fifo_ids))

    doc = []
    for engine in engines:
        for s in engine.streams:
            doc.append(
                (
                    engine.name,
                    s.name,
                    s.total_elements,
                    s.elements_per_cycle_cap,
                    s.element_bytes,
                    s.l2_fraction,
                    s.dram_fraction,
                    s.dispatched_at,
                    fid(s.port),
                    s.port.capacity,
                    s.port.level,
                    None
                    if getattr(s, "forward_to", None) is None
                    else (
                        fid(s.forward_to),
                        s.forward_to.capacity,
                        s.forward_to.level,
                    ),
                )
            )
    for group in (fabric.config.inputs, fabric.config.outputs):
        for fifo, rate in group:
            doc.append((fid(fifo), fifo.capacity, fifo.level, rate))
    doc.append(
        (
            fabric.config.total_firings,
            fabric.config.pipeline_depth,
            fabric.config.insts_per_firing,
        )
    )
    doc.append([(p.name, p.bytes_per_cycle) for p in pools])
    return doc


class TestBuildTileIdempotent:
    """S1: the recurrence branch mutates ``in_fifo`` in place
    (``capacity +=`` / ``level =``); those FIFOs are freshly constructed
    per call, so repeated builds must be state-identical."""

    @pytest.mark.parametrize("name", BENCH_WORKLOADS)
    def test_two_builds_identical(self, name, overlay):
        schedule = scheduled(name, overlay)
        first = tile_fingerprint(*build_tile(schedule, overlay, 2))
        second = tile_fingerprint(*build_tile(schedule, overlay, 2))
        assert first == second

    def test_recurrence_builds_identical(self, overlay):
        # the branch under audit: `in_fifo.capacity +=` / `in_fifo.level =`
        # mutate a FIFO in place — fresh per call, so builds must agree
        schedule = scheduled_recurrence("fir", overlay)
        first = tile_fingerprint(*build_tile(schedule, overlay, 2))
        second = tile_fingerprint(*build_tile(schedule, overlay, 2))
        assert first == second
        stream_rows = [r for r in first if len(r) == 12]
        assert any(row[-1] is not None for row in stream_rows)


@needs_kernel
class TestExtrapolationDrift:
    """S2: fractional per-firing rates (wide ports / narrow dtypes) must
    not let the extrapolated total drift from the exact count."""

    def test_long_region_drift_bounded(self, overlay):
        # fir steps 200k cycles before extrapolating ~1.25M: fractional
        # per-firing rates must not compound into the projected total
        schedule = scheduled("fir", overlay)
        exact = simulate_schedule(schedule, overlay, exact=True)
        extra = simulate_schedule(schedule, overlay)
        assert extra.extrapolated and not exact.extrapolated
        rel = abs(extra.cycles - exact.cycles) / exact.cycles
        assert rel < 1e-3, f"fir extrapolation drifts {rel:.2e} from exact"

    def test_short_region_residual_is_drain_tail(self, overlay):
        # bgr2grey's i8 elements on 32-byte ports give fractional
        # cap_elems; forcing extrapolation on the short region must leave
        # only the (constant, window-independent) pipeline-drain residual
        # — a growing gap here would mean per-firing rate rounding drift.
        schedule = scheduled("bgr2grey", overlay)
        exact = simulate_schedule(schedule, overlay, exact=True)
        gaps = []
        for cap, win in ((4_000, 1_000), (2_000, 500)):
            extra = simulate_schedule(
                schedule, overlay, max_exact_cycles=cap, measure_window=win
            )
            assert extra.extrapolated
            gaps.append(abs(extra.cycles - exact.cycles))
        assert gaps[0] == gaps[1]  # residual independent of the window
        assert gaps[0] <= 2 * build_tile(schedule, overlay, 2)[
            1
        ].config.pipeline_depth + 2

    def test_crafted_fractional_rate(self, overlay):
        # craft a genuinely fractional per-firing rate (the bench set's
        # rates are all integral) by skewing one stream's traffic off the
        # firing grid: extrapolation must stay within rounding distance
        # of the exact count, and both cores must agree exactly
        import copy

        schedule = copy.deepcopy(scheduled("bgr2grey", overlay))
        victim = next(s for s in schedule.mdfg.streams if s.traffic > 0)
        victim.traffic = int(victim.traffic * 4 // 3)
        fabric = build_tile(schedule, overlay, 2)[1]
        assert any(
            rate > 0 and (rate % 1.0) != 0.0
            for _, rate in fabric.config.inputs + fabric.config.outputs
        )
        exact = simulate_schedule(schedule, overlay, exact=True)
        extra = simulate_schedule(
            schedule, overlay, max_exact_cycles=4_000, measure_window=1_000
        )
        assert extra.extrapolated
        rel = abs(extra.cycles - exact.cycles) / exact.cycles
        assert rel < 5e-3, f"fractional-rate drift {rel:.2e}"
        obj, vec = both_cores(schedule, overlay, exact=True)
        assert_identical(obj, vec)


class TestZeroTripStreams:
    """S3: a stream whose total rounds to zero is skipped by
    ``build_tile`` but its port still appears in the fabric's eps sums
    (with rate 0) — the region must still drain, on both cores."""

    def zero_one_stream(self, overlay):
        import copy

        schedule = copy.deepcopy(scheduled("mm", overlay))
        victim = max(schedule.mdfg.streams, key=lambda s: s.node_id)
        victim.traffic = 0.0
        return schedule

    def test_zero_trip_completes_object(self, overlay):
        schedule = self.zero_one_stream(overlay)
        result = simulate_schedule(schedule, overlay, core="object")
        assert result.cycles > 0
        assert result.ipc >= 0.0

    @needs_kernel
    def test_zero_trip_parity(self, overlay):
        schedule = self.zero_one_stream(overlay)
        obj, vec = both_cores(schedule, overlay)
        assert_identical(obj, vec)

    def test_ipc_zero_cycles_guard(self):
        result = SimResult(
            workload="w",
            variant="v",
            cycles=0.0,
            instructions=10.0,
            tiles_used=1,
            extrapolated=False,
        )
        assert result.ipc == 0.0
