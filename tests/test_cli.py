"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def design_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "design.json"
    rc = main(
        ["generate", "vecmax", "-o", str(path), "-n", "10", "-s", "4"]
    )
    assert rc == 0
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "dsp"])
        assert args.iterations == 150
        assert args.output == "overlay.json"


class TestCommands:
    def test_workloads_lists_all_28(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 28
        assert "cholesky" in out
        assert "indirect" in out  # crs/ellpack marked
        # The scenario families show up alongside the Table II suites.
        for name in ("threshold-fsm", "horner", "frontier-gather"):
            assert name in out

    def test_generate_writes_valid_json(self, design_path):
        with open(design_path) as f:
            doc = json.load(f)
        assert doc["version"] == 1
        assert doc["params"]["num_tiles"] >= 1

    def test_inspect(self, design_path, capsys):
        assert main(["inspect", design_path]) == 0
        out = capsys.readouterr().out
        assert "per-tile accelerator" in out
        assert "utilization" in out

    def test_map(self, design_path, capsys):
        assert main(["map", design_path, "vecmax"]) == 0
        out = capsys.readouterr().out
        assert "projected IPC" in out

    def test_map_failure_is_nonzero(self, design_path, capsys):
        # A vecmax-specialized (i16) overlay cannot host f64 cholesky.
        rc = main(["map", design_path, "cholesky"])
        out = capsys.readouterr().out
        if rc == 0:
            pytest.skip("padded overlay happened to fit cholesky")
        assert "does NOT map" in out

    def test_simulate(self, design_path, capsys):
        assert main(["simulate", design_path, "vecmax"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "IPC" in out

    def test_simulate_batch_list(self, design_path, capsys):
        assert main(["simulate", design_path, "vecmax,vecmax"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0] == lines[1]  # duplicate answered identically

    def test_simulate_batch_rejects_json(self, design_path, capsys):
        rc = main(["simulate", design_path, "vecmax,fir", "--json"])
        assert rc == 2
        assert "single workload" in capsys.readouterr().err

    def test_rtl_to_file(self, design_path, tmp_path, capsys):
        out_path = tmp_path / "design.v"
        assert main(["rtl", design_path, "-o", str(out_path)]) == 0
        text = out_path.read_text()
        assert "module overgen_system" in text

    def test_rtl_migen_backend(self, design_path, tmp_path, capsys):
        out_path = tmp_path / "design.py"
        rc = main(
            ["rtl", design_path, "--backend", "migen", "-o", str(out_path)]
        )
        assert rc == 0
        text = out_path.read_text()
        assert "from migen import" in text
        assert "class OvergenSystem(Module):" in text
        assert "backend migen" in capsys.readouterr().out

    def test_rtl_unknown_backend_is_error(self, design_path, capsys):
        rc = main(["rtl", design_path, "--backend", "vhdl"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown RTL backend" in err

    def test_floorplan(self, design_path, capsys):
        assert main(["floorplan", design_path]) == 0
        out = capsys.readouterr().out
        assert "SLR0" in out and "MHz" in out

    def test_floorplan_infeasible_is_nonzero(self, tmp_path, capsys):
        import json

        from repro.adg import general_overlay, sysadg_to_dict

        doc = sysadg_to_dict(general_overlay(num_tiles=64))
        path = tmp_path / "huge.json"
        path.write_text(json.dumps(doc))
        rc = main(["floorplan", str(path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "INFEASIBLE" in captured.out
        assert "exceeds XCVU9P capacity" in captured.err

    def test_generate_by_name_list(self, tmp_path):
        path = tmp_path / "two.json"
        rc = main(
            ["generate", "vecmax,convert-bit", "-o", str(path), "-n", "8"]
        )
        assert rc == 0
        assert path.exists()


class TestErrorHandling:
    def test_map_unknown_workload_exits_cleanly(self, design_path, capsys):
        rc = main(["map", design_path, "nosuchworkload"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "error:" in captured.err
        assert "nosuchworkload" in captured.err
        assert "Traceback" not in captured.err

    def test_simulate_unknown_workload_exits_cleanly(self, design_path, capsys):
        rc = main(["simulate", design_path, "bogus"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "error:" in captured.err and "bogus" in captured.err

    def test_generate_unknown_workload_in_list(self, tmp_path, capsys):
        rc = main(
            ["generate", "vecmax,typo", "-o", str(tmp_path / "x.json")]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "typo" in captured.err

    def test_missing_design_file(self, capsys):
        rc = main(["inspect", "/nonexistent/design.json"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "no such design file" in captured.err

    def test_advise_unknown_workload(self, design_path, capsys):
        rc = main(["advise", design_path, "nope"])
        assert rc == 2
        assert "nope" in capsys.readouterr().err

    def test_malformed_seeds_exits_cleanly(self, tmp_path, capsys):
        rc = main(
            ["dse", "fir", "-n", "5", "--seeds", "2,x",
             "-o", str(tmp_path / "d.json")]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "malformed --seeds" in captured.err
        assert "Traceback" not in captured.err


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        import repro

        assert out.strip() == f"repro {repro.__version__}"

    def test_pyproject_version_is_dynamic(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        text = (root / "pyproject.toml").read_text()
        assert 'dynamic = ["version"]' in text
        assert 'version = {attr = "repro.__version__"}' in text
        # No second, divergent static copy of the version string.
        assert 'version = "0.' not in text


def _fake_bench_report(tmp_path):
    from repro.profile import Tracer
    from repro.profile.bench import BenchReport

    dse = {
        "schema": 1, "kind": "dse", "iterations": 8, "wall_seconds": 0.1,
        "candidates_per_second": 80.0, "preserved_hit_rate": 0.9,
        "fast_path_mean_s": 1e-4, "repair_path_mean_s": 5e-4,
        "fast_path_speedup": 5.0, "memo_speedup": 2.0,
    }
    sim = {
        "schema": 1, "kind": "sim", "stepped_cycles": 1000,
        "wall_seconds": 0.01, "cycles_per_second": 1e5, "memo_speedup": 10.0,
    }
    overhead = {
        "ratio": 1.01, "calls": 100, "repeats": 2,
        "no_tracer_s": 0.001, "disabled_tracer_s": 0.00101,
    }
    return BenchReport(
        dse=dse, sim=sim, overhead=overhead,
        dse_path=str(tmp_path / "BENCH_dse.json"),
        sim_path=str(tmp_path / "BENCH_sim.json"),
        tracer=Tracer(),
    )


class TestBenchCommand:
    """CLI wiring of ``repro bench`` (run_bench itself is tested in
    test_profile; these monkeypatch it so exit-code paths stay fast)."""

    @pytest.fixture
    def fake_run(self, tmp_path, monkeypatch):
        import repro.profile.bench as bench_mod

        report = _fake_bench_report(tmp_path)
        monkeypatch.setattr(
            bench_mod, "run_bench", lambda *a, **k: report
        )
        return report

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.budget == "small"
        assert args.tolerance == 0.25
        assert args.max_overhead is None

    def test_bench_ok(self, fake_run, capsys):
        assert main(["bench", "--budget", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "preserved-hit rate 90%" in out
        assert "fast path" in out and "repair" in out

    def test_compare_improvement(self, fake_run, tmp_path, capsys):
        baseline = dict(fake_run.dse, candidates_per_second=10.0)
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        assert main(["bench", "--compare", str(path)]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out and "OK" in out

    def test_compare_regression_fails(self, fake_run, tmp_path, capsys):
        baseline = dict(fake_run.dse, fast_path_speedup=50.0)
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        assert main(["bench", "--compare", str(path)]) == 1
        out = capsys.readouterr().out
        assert "regression" in out and "FAIL" in out

    def test_compare_sim_baseline(self, fake_run, tmp_path, capsys):
        baseline = dict(fake_run.sim, cycles_per_second=2e4)
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        assert main(["bench", "--compare", str(path)]) == 0
        assert "cycles_per_second" in capsys.readouterr().out

    def test_missing_baseline_exits_2(self, fake_run, capsys):
        rc = main(["bench", "--compare", "/nonexistent/base.json"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "no such baseline file" in captured.err
        assert "Traceback" not in captured.err

    def test_malformed_baseline_exits_2(self, fake_run, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["bench", "--compare", str(bad)]) == 2
        assert "cannot read baseline" in capsys.readouterr().err

        nokind = tmp_path / "nokind.json"
        nokind.write_text(json.dumps({"schema": 1}))
        assert main(["bench", "--compare", str(nokind)]) == 2
        assert "missing/unknown 'kind'" in capsys.readouterr().err

    def test_overhead_gate(self, fake_run, capsys):
        assert main(["bench", "--max-overhead", "1.005"]) == 1
        assert "overhead ratio" in capsys.readouterr().out
        assert main(["bench", "--max-overhead", "1.05"]) == 0

    def test_bench_search_writes_report_and_self_compares(
        self, tmp_path, capsys
    ):
        argv = ["bench", "search", "--budget", "smoke",
                "--out-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "best strategy" in out
        doc = json.loads((tmp_path / "BENCH_search.json").read_text())
        assert doc["kind"] == "search"
        assert set(doc["strategies"]) == {
            "anneal", "bottleneck", "evolutionary", "tpe",
        }
        # Determinism: a rerun compared against itself is clean.
        rerun = [
            "bench", "search", "--budget", "smoke",
            "--out-dir", str(tmp_path / "rerun"),
            "--compare", str(tmp_path / "BENCH_search.json"),
        ]
        assert main(rerun) == 0
        assert "OK" in capsys.readouterr().out

    def test_search_baseline_against_core_bench_exits_2(
        self, fake_run, tmp_path, capsys
    ):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"schema": 1, "kind": "search"}))
        assert main(["bench", "--compare", str(baseline)]) == 2
        assert "bench search" in capsys.readouterr().err

    def test_bench_sim_parser_defaults(self):
        args = build_parser().parse_args(["bench", "sim"])
        assert args.what == "sim"
        assert args.max_regression is None

    def test_bench_sim_writes_report_and_self_compares(
        self, tmp_path, capsys
    ):
        argv = ["bench", "sim", "--budget", "smoke",
                "--out-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "identical to serial: True" in out
        doc = json.loads((tmp_path / "BENCH_sim.json").read_text())
        assert doc["kind"] == "sim"
        assert doc["batch"]["identical_to_serial"] is True
        assert doc["batch_cycles_per_second"] > 0
        # Self-compare with the CI gate flag: clean by construction.
        rerun = [
            "bench", "sim", "--budget", "smoke",
            "--out-dir", str(tmp_path / "rerun"),
            "--compare", str(tmp_path / "BENCH_sim.json"),
            "--max-regression", "0.9",
        ]
        assert main(rerun) == 0
        assert "OK (tolerance 0.9)" in capsys.readouterr().out

    def test_bench_sim_rejects_dse_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"schema": 1, "kind": "dse"}))
        rc = main(["bench", "sim", "--compare", str(baseline)])
        assert rc == 2
        assert "bench sim" in capsys.readouterr().err


class TestDseCommand:
    def test_dse_defaults(self):
        args = build_parser().parse_args(["dse", "dsp"])
        assert args.workers == 1
        assert args.checkpoint_every == 25
        assert not args.resume and not args.no_cache

    def test_deprecated_jobs_alias_maps_to_workers(self, capsys):
        args = build_parser().parse_args(["dse", "dsp", "--jobs", "3"])
        assert args.workers == 3
        assert "deprecated" in capsys.readouterr().err
        args = build_parser().parse_args(["soak", "-j", "2"])
        assert args.workers == 2

    def test_cold_then_warm_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = [
            "dse", "vecmax", "-n", "10", "--seeds", "2,3",
            "-o", str(tmp_path / "d.json"), "--cache-dir", str(cache),
            "--metrics", str(tmp_path / "events.jsonl"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "seed outcomes" in out and "best seed" in out
        assert (tmp_path / "d.json").exists()

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache hit (disk)" in out
        assert "0 DSE iterations run" in out
        lines = (tmp_path / "events.jsonl").read_text().strip().splitlines()
        events = [json.loads(l)["event"] for l in lines]
        assert "run_start" in events and "cache_hit" in events

    def test_no_cache_runs_fresh(self, tmp_path, capsys):
        argv = [
            "dse", "vecmax", "-n", "8", "--no-cache",
            "-o", str(tmp_path / "d.json"),
        ]
        assert main(argv) == 0
        assert "cache disabled" in capsys.readouterr().out


class TestSearchCli:
    """The ``dse --strategy`` search path and the ``study`` command."""

    def test_list_strategies(self, capsys):
        assert main(["dse", "--list-strategies"]) == 0
        out = capsys.readouterr().out.split()
        assert out == ["anneal", "bottleneck", "evolutionary", "tpe"]

    def test_search_run_writes_study_pareto_and_html(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = [
            "dse", "vecmax", "--strategy", "tpe",
            "--trials", "4", "--batch", "2", "-n", "6", "-s", "3",
            "--cache-dir", str(store),
            "-o", str(tmp_path / "d.json"),
            "--pareto", str(tmp_path / "front.json"),
            "--html", str(tmp_path / "report.html"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "search[tpe]" in out and "best trial" in out
        front = json.loads((tmp_path / "front.json").read_text())
        assert front["points"] and "hypervolume" in front
        assert "<svg" in (tmp_path / "report.html").read_text()
        assert (tmp_path / "d.json").exists()

        # study list / show / export against the populated store.
        assert main(["study", "list", "--study-dir", str(store)]) == 0
        listing = capsys.readouterr().out
        assert "tpe" in listing
        key_prefix = listing.split()[0]

        assert main(
            ["study", "show", key_prefix, "--study-dir", str(store)]
        ) == 0
        shown = capsys.readouterr().out
        assert "frontier" in shown and "best trial" in shown

        export_path = tmp_path / "study.json"
        assert main(
            ["study", "export", key_prefix, "--study-dir", str(store),
             "-o", str(export_path)]
        ) == 0
        capsys.readouterr()
        doc = json.loads(export_path.read_text())
        assert doc["strategy"] == "tpe" and len(doc["trials"]) == 4

    def test_study_merge_and_import(self, tmp_path, capsys):
        store = tmp_path / "store"
        base = [
            "--trials", "3", "--batch", "3", "-n", "5",
            "--cache-dir", str(store), "-o", str(tmp_path / "d.json"),
        ]
        assert main(["dse", "vecmax", "--strategy", "tpe", "-s", "1"] + base) == 0
        assert main(["dse", "vecmax", "--strategy", "tpe", "-s", "2"] + base) == 0
        capsys.readouterr()
        assert main(["study", "list", "--study-dir", str(store)]) == 0
        keys = [
            line.split()[0]
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert len(keys) == 2
        assert main(["study", "merge", *keys, "--study-dir", str(store)]) == 0
        assert "merged 2 studies" in capsys.readouterr().out

        # Import dse_point metrics from an engine run as a study.
        metrics = tmp_path / "events.jsonl"
        assert main([
            "dse", "vecmax", "-n", "6", "-s", "3", "--no-cache",
            "-o", str(tmp_path / "d2.json"), "--metrics", str(metrics),
        ]) == 0
        capsys.readouterr()
        assert main(
            ["study", "import", str(metrics), "--study-dir", str(store)]
        ) == 0
        assert "imported" in capsys.readouterr().out

    def test_study_ambiguous_or_missing_key_is_2(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["study", "show", "feed", "--study-dir", str(store)]) == 2
        assert "no study matching" in capsys.readouterr().err
        assert main(["study", "show", "--study-dir", str(store)]) == 2
        assert "at least one" in capsys.readouterr().err


class TestExitCodes:
    """The CLI exit-code contract: 0 ok, 1 domain failure, 2 user error.

    Domain failures that matter for CI: fuzz/soak exit 1 exactly when
    they record *new* failures (or invariant violations), so a smoke job
    over a warm corpus stays green while a fresh regression trips it.
    """

    def test_user_error_is_2(self, capsys):
        assert main(["map", "/no/such/design.json", "vecmax"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_strategy_is_2_and_lists_available(self, capsys):
        assert main(["dse", "vecmax", "--strategy", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown strategy" in err
        for name in ("anneal", "bottleneck", "evolutionary", "tpe"):
            assert name in err

    def test_dse_without_workloads_is_2(self, capsys):
        assert main(["dse"]) == 2
        err = capsys.readouterr().err
        assert "missing workloads" in err and "--list-strategies" in err

    def test_fuzz_clean_default_bands_is_0(self, capsys):
        assert main(["fuzz", "--budget", "5", "--seed", "0"]) == 0
        capsys.readouterr()

    def test_fuzz_new_failures_then_known_failures(self, tmp_path, capsys):
        argv = [
            "fuzz", "--budget", "4", "--seed", "0",
            "--rel-tol", "0", "--abs-floor", "0",
            "--corpus", str(tmp_path / "corpus"),
        ]
        assert main(argv) == 1              # first sight: new failures
        capsys.readouterr()
        assert main(argv) == 0              # already in the corpus
        capsys.readouterr()

    def test_fuzz_without_corpus_cannot_know_failures(self, capsys):
        argv = [
            "fuzz", "--budget", "4", "--seed", "0",
            "--rel-tol", "0", "--abs-floor", "0",
        ]
        assert main(argv) == 1
        assert main(argv) == 1              # no memory: still "new"
        capsys.readouterr()

    def test_soak_follows_same_contract(self, tmp_path, capsys):
        argv = [
            "soak", "--budget", "8", "--seed", "3", "--shards", "2",
            "--jobs", "1", "--rel-tol", "0", "--abs-floor", "0",
            "--shrink-budget", "20", "--corpus", str(tmp_path / "corpus"),
        ]
        assert main(argv) == 1
        capsys.readouterr()
        assert main(argv) == 0
        capsys.readouterr()

    def test_validate_clean_is_0(self, capsys):
        assert main(["validate"]) == 0
        capsys.readouterr()
