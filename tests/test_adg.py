"""Tests for ADG construction, mutation, and validation."""

import pytest

from repro.adg import (
    ADG,
    AdgError,
    FuCap,
    NodeKind,
    SystemParams,
    cap_for,
    caps_for_dtype,
    general_overlay,
    mesh_adg,
    seed_for_workloads,
    universal_caps,
)
from repro.ir import F64, I16, I64, Op
from repro.workloads import get_suite


def tiny_adg():
    adg = ADG()
    sw = adg.add_switch()
    pe = adg.add_pe(caps=frozenset({FuCap(Op.ADD, False, 64)}))
    ip = adg.add_in_port(width_bytes=8)
    op = adg.add_out_port(width_bytes=8)
    dma = adg.add_dma()
    adg.add_link(dma, ip)
    adg.add_link(ip, sw)
    adg.add_link(sw, pe)
    adg.add_link(pe, sw)
    adg.add_link(sw, op)
    adg.add_link(op, dma)
    return adg, sw, pe, ip, op, dma


class TestGraphBasics:
    def test_build_and_validate(self):
        adg, *_ = tiny_adg()
        adg.validate()
        assert len(adg.pes) == 1
        assert len(adg.links()) == 6

    def test_illegal_link_rejected(self):
        adg = ADG()
        dma = adg.add_dma()
        pe = adg.add_pe()
        with pytest.raises(AdgError, match="illegal link"):
            adg.add_link(dma, pe)

    def test_in_port_to_out_port_direct_rejected(self):
        adg = ADG()
        ip = adg.add_in_port()
        op = adg.add_out_port()
        with pytest.raises(AdgError):
            adg.add_link(ip, op)

    def test_remove_node_cleans_links(self):
        adg, sw, pe, ip, *_ = tiny_adg()
        adg.remove_node(sw)
        assert not adg.has_node(sw)
        assert all(sw not in (s, d) for s, d in adg.links())

    def test_remove_unknown_node(self):
        adg, *_ = tiny_adg()
        with pytest.raises(AdgError):
            adg.remove_node(999)

    def test_replace_node_keeps_links(self):
        adg, sw, pe, *_ = tiny_adg()
        before = adg.links()
        adg.replace_node(pe, width_bits=128)
        assert adg.node(pe).width_bits == 128
        assert adg.links() == before

    def test_version_bumps_on_mutation(self):
        adg, sw, pe, *_ = tiny_adg()
        v = adg.version
        adg.replace_node(pe, width_bits=256)
        assert adg.version > v

    def test_clone_is_independent(self):
        adg, sw, pe, *_ = tiny_adg()
        other = adg.clone()
        other.remove_node(pe)
        assert adg.has_node(pe)
        assert not other.has_node(pe)

    def test_radix(self):
        adg, sw, *_ = tiny_adg()
        assert adg.radix(sw) == 4  # ip->sw, pe->sw in; sw->pe, sw->op out


class TestCapabilities:
    def test_cap_for_dtype(self):
        cap = cap_for(Op.MUL, F64)
        assert cap.is_float and cap.bits == 64

    def test_f32x2_uses_scalar_width(self):
        from repro.ir import F32X2

        assert cap_for(Op.ADD, F32X2).bits == 32

    def test_int_only_op_rejects_float(self):
        with pytest.raises(ValueError):
            FuCap(Op.SHL, True, 32)

    def test_float_only_op_rejects_int(self):
        with pytest.raises(ValueError):
            FuCap(Op.SQRT, False, 32)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            FuCap(Op.ADD, False, 12)

    def test_caps_for_dtype_filters(self):
        caps = caps_for_dtype(I64, (Op.ADD, Op.SQRT))
        assert all(not c.is_float for c in caps)
        assert len(caps) == 1  # sqrt has no integer variant

    def test_universal_caps_cover_everything(self):
        caps = universal_caps()
        assert cap_for(Op.DIV, F64) in caps
        assert cap_for(Op.SHL, I16) in caps

    def test_pe_supports_checks_width(self):
        from repro.adg import ProcessingElement

        pe = ProcessingElement(
            0, caps=frozenset({cap_for(Op.ADD, F64)}), width_bits=128
        )
        assert pe.supports(Op.ADD, F64, lanes=2)
        assert not pe.supports(Op.ADD, F64, lanes=4)
        assert not pe.supports(Op.MUL, F64, lanes=1)


class TestBuilders:
    def test_mesh_dimensions(self):
        adg = mesh_adg(2, 3, caps=frozenset({cap_for(Op.ADD, I64)}))
        assert len(adg.pes) == 6
        assert len(adg.switches) == 12  # (2+1) x (3+1)
        adg.validate()

    def test_general_overlay_matches_table3(self):
        g = general_overlay()
        assert len(g.adg.pes) == 24
        assert len(g.adg.switches) == 35
        assert g.params.num_tiles == 4
        assert g.params.l2_kib == 512
        assert sum(p.width_bytes for p in g.adg.in_ports) == 224
        assert sum(p.width_bytes for p in g.adg.out_ports) == 160
        pe = g.adg.pes[0]
        assert pe.width_bits == 512  # max vectorization width

    def test_general_overlay_spad(self):
        g = general_overlay()
        spads = g.adg.spads
        assert len(spads) == 1
        assert spads[0].capacity_bytes == 32 * 1024
        assert spads[0].indirect

    def test_seed_for_workloads_covers_ops(self):
        adg = seed_for_workloads(get_suite("dsp"))
        adg.validate()
        ops = {c.op for pe in adg.pes for c in pe.caps if c.is_float}
        assert Op.MUL in ops and Op.DIV in ops

    def test_memory_side_fully_connected_in_mesh(self):
        adg = mesh_adg(1, 1, caps=frozenset({cap_for(Op.ADD, I64)}))
        for engine in adg.engines:
            for port in adg.in_ports:
                assert adg.has_link(engine.node_id, port.node_id)


class TestSystemParams:
    def test_defaults_valid(self):
        SystemParams()

    def test_l2_banks_power_of_two(self):
        with pytest.raises(ValueError):
            SystemParams(l2_banks=3)

    def test_tiles_positive(self):
        with pytest.raises(ValueError):
            SystemParams(num_tiles=0)

    def test_dram_bandwidth_scales_with_channels(self):
        one = SystemParams(dram_channels=1)
        two = SystemParams(dram_channels=2)
        assert two.dram_bytes_per_cycle == pytest.approx(
            2 * one.dram_bytes_per_cycle
        )

    def test_with_params(self):
        g = general_overlay()
        h = g.with_params(num_tiles=2)
        assert h.params.num_tiles == 2
        assert g.params.num_tiles == 4
        assert h.adg is g.adg
