"""Registry satellite tests: concurrency, torn state, byte-stability.

The ISSUE's registry criteria live here: two *processes* publishing and
pinning the same name concurrently stay consistent, a torn index file
(the crash the atomic-rename discipline guards against) is recovered
from store sidecars, and pin resolution is byte-stable across
processes.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster import (
    OverlayRegistry,
    RegistryError,
    split_spec,
    version_key,
)


def doc_for(tag: str) -> dict:
    """A distinct 'design document' — registry never interprets it."""
    return {"version": 1, "name": "fam", "tag": tag, "payload": [1, 2, 3]}


class TestRegistryBasics:
    def test_publish_assigns_sequential_versions(self, tmp_path):
        reg = OverlayRegistry(str(tmp_path))
        specs = [reg.publish("fam", doc_for(f"d{i}")).spec for i in range(3)]
        assert specs == ["fam@v1", "fam@v2", "fam@v3"]
        assert [v.version for v in reg.versions("fam")] == [1, 2, 3]

    def test_publish_same_doc_is_idempotent(self, tmp_path):
        reg = OverlayRegistry(str(tmp_path))
        first = reg.publish("fam", doc_for("same"))
        again = reg.publish("fam", doc_for("same"))
        assert again.version == first.version
        assert len(reg.versions("fam")) == 1
        # ...but the same doc under another NAME is a fresh version 1.
        other = reg.publish("other", doc_for("same"))
        assert other.spec == "other@v1"

    def test_lookup_selectors(self, tmp_path):
        reg = OverlayRegistry(str(tmp_path))
        for i in range(3):
            reg.publish("fam", doc_for(f"d{i}"))
        assert reg.lookup("fam@v2").version == 2
        assert reg.lookup("fam@2").version == 2
        assert reg.lookup("fam@latest").version == 3
        assert reg.lookup("fam").version == 3  # no pin -> latest
        reg.pin("fam", 1)
        assert reg.lookup("fam").version == 1  # pin wins for bare names
        assert reg.lookup("fam@v3").version == 3  # explicit beats pin
        with pytest.raises(RegistryError):
            reg.lookup("fam@v9")
        with pytest.raises(RegistryError):
            reg.lookup("nope")

    def test_rollback_is_a_pointer_move(self, tmp_path):
        reg = OverlayRegistry(str(tmp_path))
        for i in range(3):
            reg.publish("fam", doc_for(f"d{i}"))
        entry = reg.rollback("fam")
        assert entry.version == 2  # one before latest
        assert reg.pinned("fam") == 2
        assert len(reg.versions("fam")) == 3  # nothing deleted
        entry = reg.rollback("fam")  # one before the active pin
        assert entry.version == 1
        entry = reg.rollback("fam", to_version=3)
        assert entry.version == 3
        with pytest.raises(RegistryError):
            reg.rollback("fam", to_version=1)
            reg.rollback("fam")  # v1 active: nothing earlier

    def test_split_spec(self):
        assert split_spec("fam@v3") == ("fam", "v3")
        assert split_spec("fam") == ("fam", None)
        with pytest.raises(RegistryError):
            split_spec("@v3")


class TestTornState:
    def test_torn_index_rebuilds_from_sidecars(self, tmp_path):
        reg = OverlayRegistry(str(tmp_path))
        for i in range(3):
            reg.publish("fam", doc_for(f"d{i}"))
        reg.pin("fam", 2)
        index = tmp_path / "registry" / "fam.json"
        # A torn write: half a JSON document.
        index.write_text(index.read_text()[: index.stat().st_size // 2])

        fresh = OverlayRegistry(str(tmp_path))
        versions = fresh.versions("fam")
        assert [v.version for v in versions] == [1, 2, 3]
        # The pin lives only in the index, so it is honestly lost...
        assert fresh.pinned("fam") is None
        assert fresh.lookup("fam").version == 3
        # ...and rollback after the torn index still works (the ISSUE's
        # "rollback after torn sidecar" case) and re-establishes a pin.
        entry = fresh.rollback("fam")
        assert entry.version == 2
        assert fresh.pinned("fam") == 2

    def test_publish_after_torn_index_continues_numbering(self, tmp_path):
        reg = OverlayRegistry(str(tmp_path))
        for i in range(2):
            reg.publish("fam", doc_for(f"d{i}"))
        (tmp_path / "registry" / "fam.json").write_text("{not json")
        entry = OverlayRegistry(str(tmp_path)).publish("fam", doc_for("d9"))
        assert entry.version == 3

    def test_resolved_docs_survive_index_loss(self, tmp_path):
        reg = OverlayRegistry(str(tmp_path))
        reg.publish("fam", doc_for("keep"))
        (tmp_path / "registry" / "fam.json").unlink()
        resolved = OverlayRegistry(str(tmp_path)).resolve("fam@v1")
        assert resolved.design_doc == doc_for("keep")


_PUBLISH_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.cluster import OverlayRegistry

reg = OverlayRegistry({root!r})
specs = []
for i in range({count}):
    entry = reg.publish("fam", {{"proc": {proc}, "i": i}})
    specs.append(entry.spec)
print(json.dumps(specs))
"""

_RESOLVE_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.cluster import OverlayRegistry
from repro.serve import canonical_dumps

resolved = OverlayRegistry({root!r}).resolve({spec!r})
print(resolved.entry.spec)
print(canonical_dumps(resolved.design_doc))
"""

SRC = str(Path(__file__).resolve().parent.parent / "src")


def run_py(script: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestCrossProcess:
    def test_two_processes_publish_same_name(self, tmp_path):
        """Concurrent publishers: every version lands exactly once."""
        count = 5
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    _PUBLISH_SCRIPT.format(
                        src=SRC, root=str(tmp_path), count=count, proc=p
                    ),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for p in (0, 1)
        ]
        outs = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            outs.append(json.loads(out))

        reg = OverlayRegistry(str(tmp_path))
        versions = reg.versions("fam")
        assert len(versions) == 2 * count
        assert [v.version for v in versions] == list(
            range(1, 2 * count + 1)
        )
        # Every store key is unique and resolvable: no publish was lost
        # or overwritten by the concurrent writer.
        assert len({v.key for v in versions}) == 2 * count
        published = {spec for specs in outs for spec in specs}
        assert published == {v.spec for v in versions}
        docs = [reg.resolve(v.spec).design_doc for v in versions]
        assert len({(d["proc"], d["i"]) for d in docs}) == 2 * count

    def test_pin_resolution_is_byte_stable_across_processes(self, tmp_path):
        reg = OverlayRegistry(str(tmp_path))
        for i in range(3):
            reg.publish("fam", doc_for(f"d{i}"))
        reg.pin("fam", 2)
        outs = [
            run_py(
                _RESOLVE_SCRIPT.format(src=SRC, root=str(tmp_path), spec=spec)
            )
            for spec in ("fam", "fam@v2", "fam", "fam@2")
        ]
        # All four resolutions (bare-name pin and explicit, repeated in
        # fresh processes) give the same spec and identical bytes.
        assert len(set(outs)) == 1
        spec_line, doc_line = outs[0].splitlines()
        assert spec_line == "fam@v2"
        assert json.loads(doc_line) == doc_for("d1")

    def test_version_key_is_content_addressed(self):
        assert version_key("fam", "abc") == version_key("fam", "abc")
        assert version_key("fam", "abc") != version_key("fam", "abd")
        assert version_key("fam", "abc") != version_key("other", "abc")
