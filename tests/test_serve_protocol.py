"""Unit tests for the serve wire protocol, errors, and batching pieces."""

import asyncio

import pytest

from repro.serve import (
    AdmissionGate,
    BadRequestError,
    DeadlineError,
    LatencyReservoir,
    OverloadedError,
    ServeError,
    SingleFlight,
    UnmappableError,
    canonical_dumps,
    decode_line,
    encode_line,
    error_from_doc,
    parse_request,
    response_doc,
)


class TestFraming:
    def test_round_trip(self):
        doc = {"id": "r1", "op": "map", "workload": "fir"}
        assert decode_line(encode_line(doc)) == doc

    def test_canonical_dumps_is_key_sorted_and_tight(self):
        assert canonical_dumps({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_decode_rejects_garbage(self):
        with pytest.raises(BadRequestError):
            decode_line(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(BadRequestError):
            decode_line(b"[1, 2, 3]\n")


class TestParseRequest:
    def test_minimal_compute(self):
        req = parse_request({"id": "a", "op": "map", "workload": "fir"})
        assert req.op == "map" and req.workload == "fir"
        assert req.overlay is None and req.timeout_s is None

    def test_as_doc_round_trip(self):
        req = parse_request(
            {"id": "a", "op": "simulate", "workload": "fir",
             "overlay": "dsp", "timeout_s": 2.5, "options": {"x": 1}}
        )
        assert parse_request(req.as_doc()) == req

    @pytest.mark.parametrize(
        "doc",
        [
            {"id": "a", "op": "frobnicate"},
            {"id": "", "op": "map", "workload": "fir"},
            {"op": "map", "workload": "fir"},
            {"id": "a", "op": "map"},                      # missing workload
            {"id": "a", "op": "map", "workload": ""},
            {"id": "a", "op": "map", "workload": "fir", "timeout_s": 0},
            {"id": "a", "op": "map", "workload": "fir", "timeout_s": "x"},
            {"id": "a", "op": "map", "workload": "fir", "options": []},
            {"id": "a", "op": "map", "workload": "fir", "overlay": 7},
        ],
    )
    def test_rejects_malformed(self, doc):
        with pytest.raises(BadRequestError):
            parse_request(doc)

    def test_admin_ops_need_no_workload(self):
        for op in ("ping", "stats", "shutdown"):
            assert parse_request({"id": "a", "op": op}).op == op


class TestErrors:
    def test_wire_round_trip_preserves_type(self):
        for exc in (
            OverloadedError("full"),
            DeadlineError("late"),
            UnmappableError("no fit"),
            BadRequestError("bad"),
        ):
            back = error_from_doc(exc.to_doc())
            assert type(back) is type(exc)
            assert str(back) == str(exc)
            assert back.retryable == exc.retryable

    def test_unknown_code_degrades_to_internal(self):
        exc = error_from_doc({"code": "???", "message": "m"})
        assert isinstance(exc, ServeError) and exc.code == "internal"
        assert error_from_doc(None).code == "internal"

    def test_response_doc_shape(self):
        ok = response_doc("1", result={"x": 1}, served={"cache": "memory"})
        assert ok["ok"] and ok["error"] is None
        bad = response_doc("1", error=OverloadedError("full").to_doc())
        assert not bad["ok"] and bad["error"]["code"] == "overloaded"
        assert bad["error"]["retryable"] is True


class TestAdmissionGate:
    def test_rejects_beyond_limit(self):
        gate = AdmissionGate(2)
        gate.admit()
        gate.admit()
        with pytest.raises(OverloadedError):
            gate.admit()
        assert gate.as_dict() == {
            "limit": 2,
            "in_service": 2,
            "admitted": 2,
            "rejected": 1,
            "peak_in_service": 2,
        }
        gate.release()
        gate.admit()  # slot freed -> admitted again
        assert gate.admitted == 3

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionGate(0)


class TestSingleFlight:
    def test_concurrent_duplicates_share_one_compute(self):
        async def run():
            flights = SingleFlight()
            calls = []
            release = asyncio.Event()

            async def compute():
                calls.append(1)
                await release.wait()
                return "done"

            async def request():
                task, _ = flights.join("k", compute)
                return await asyncio.shield(task)

            waiters = [asyncio.ensure_future(request()) for _ in range(8)]
            await asyncio.sleep(0)  # let every waiter join
            release.set()
            results = await asyncio.gather(*waiters)
            assert results == ["done"] * 8
            assert len(calls) == 1
            assert flights.stats.leaders == 1
            assert flights.stats.followers == 7
            assert flights.stats.coalesce_rate == pytest.approx(7 / 8)
            await asyncio.sleep(0)
            assert len(flights) == 0  # settled entries are dropped

        asyncio.run(run())

    def test_sequential_requests_do_not_coalesce(self):
        async def run():
            flights = SingleFlight()

            async def compute():
                return 1

            task1, lead1 = flights.join("k", compute)
            await task1
            task2, lead2 = flights.join("k", compute)
            await task2
            assert lead1 and lead2
            assert flights.stats.leaders == 2
            assert flights.stats.followers == 0

        asyncio.run(run())

    def test_one_waiter_timeout_does_not_cancel_the_shared_task(self):
        async def run():
            flights = SingleFlight()

            async def compute():
                await asyncio.sleep(0.05)
                return "late"

            task, _ = flights.join("k", compute)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.shield(task), timeout=0.001)
            assert await task == "late"  # survived the waiter's deadline

        asyncio.run(run())


class TestLatencyReservoir:
    def test_percentiles(self):
        res = LatencyReservoir()
        for ms in range(1, 101):
            res.record(ms / 1000.0)
        doc = res.as_dict()
        assert doc["count"] == 100
        assert doc["p50_s"] == pytest.approx(0.050, abs=0.002)
        assert doc["p95_s"] == pytest.approx(0.095, abs=0.002)
        assert doc["p99_s"] == pytest.approx(0.099, abs=0.002)
        assert doc["max_s"] == pytest.approx(0.100)

    def test_empty_is_zero(self):
        doc = LatencyReservoir().as_dict()
        assert doc["count"] == 0 and doc["p99_s"] == 0.0

    def test_bounded_window(self):
        res = LatencyReservoir(cap=8)
        for _ in range(100):
            res.record(1.0)
        assert res.count == 100
        assert len(res._samples) == 8
