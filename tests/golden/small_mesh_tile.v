// ---- OverGen tile 0: 2 PEs, 6 switches ----
// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_6 (
  input  wire clk,
  input  wire rst,
  input  wire [63:0] operand0,
  input  wire operand0_valid,
  input  wire [63:0] operand1,
  input  wire operand1_valid,
  input  wire [63:0] operand2,
  input  wire operand2_valid,
  output wire [63:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_7 (
  input  wire clk,
  input  wire rst,
  input  wire [63:0] operand0,
  input  wire operand0_valid,
  input  wire [63:0] operand1,
  input  wire operand1_valid,
  input  wire [63:0] operand2,
  input  wire operand2_valid,
  output wire [63:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Circuit-switched operand router (2 in x 3 out)
module sw_0 (
  input  wire clk,
  input  wire rst,
  input  wire [127:0] in_bus,
  input  wire [1:0] in_valid,
  output wire [191:0] out_bus,
  output wire [2:0] out_valid,
  input  wire [5:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (2 in x 5 out)
module sw_1 (
  input  wire clk,
  input  wire rst,
  input  wire [127:0] in_bus,
  input  wire [1:0] in_valid,
  output wire [319:0] out_bus,
  output wire [4:0] out_valid,
  input  wire [9:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (1 in x 3 out)
module sw_2 (
  input  wire clk,
  input  wire rst,
  input  wire [63:0] in_bus,
  input  wire [0:0] in_valid,
  output wire [191:0] out_bus,
  output wire [2:0] out_valid,
  input  wire [2:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (2 in x 3 out)
module sw_3 (
  input  wire clk,
  input  wire rst,
  input  wire [127:0] in_bus,
  input  wire [1:0] in_valid,
  output wire [191:0] out_bus,
  output wire [2:0] out_valid,
  input  wire [5:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 3 out)
module sw_4 (
  input  wire clk,
  input  wire rst,
  input  wire [255:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [191:0] out_bus,
  output wire [2:0] out_valid,
  input  wire [11:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (3 in x 1 out)
module sw_5 (
  input  wire clk,
  input  wire rst,
  input  wire [191:0] in_bus,
  input  wire [2:0] in_valid,
  output wire [63:0] out_bus,
  output wire [0:0] out_valid,
  input  wire [2:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// padding=True meta=True fifo_depth=4
module ip_8 (  // vector input port, 8 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [63:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [63:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule


module op_9 (  // vector output port, 8 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [63:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [63:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// bandwidth 32 B/cyc, indirect=True, ROB 16 entries
module dma_10 (
  input  wire clk,
  input  wire rst,
  // stream-dispatcher command interface
  input  wire [255:0] stream_entry,
  input  wire stream_entry_valid,
  output wire stream_done,
  // memory-side data
  output wire [511:0] rd_data,
  output wire rd_valid,
  input  wire [511:0] wr_data,
  input  wire wr_valid
);
  // Stream Issue -> Stream Request -> Stream Generation pipeline with
  // one-hot stream-table bypass (Fig. 11).
endmodule

// capacity 16384 B, rd/wr 32/32 B/cyc, indirect=False
module spad_11 (
  input  wire clk,
  input  wire rst,
  // stream-dispatcher command interface
  input  wire [255:0] stream_entry,
  input  wire stream_entry_valid,
  output wire stream_done,
  // memory-side data
  output wire [511:0] rd_data,
  output wire rd_valid,
  input  wire [511:0] wr_data,
  input  wire wr_valid
);
  // Stream Issue -> Stream Request -> Stream Generation pipeline with
  // one-hot stream-table bypass (Fig. 11).
endmodule


module gen_12 (
  input  wire clk,
  input  wire rst,
  // stream-dispatcher command interface
  input  wire [255:0] stream_entry,
  input  wire stream_entry_valid,
  output wire stream_done,
  // memory-side data
  output wire [511:0] rd_data,
  output wire rd_valid,
  input  wire [511:0] wr_data,
  input  wire wr_valid
);
  // Stream Issue -> Stream Request -> Stream Generation pipeline with
  // one-hot stream-table bypass (Fig. 11).
endmodule

// buffer 4096 B
module rec_13 (
  input  wire clk,
  input  wire rst,
  // stream-dispatcher command interface
  input  wire [255:0] stream_entry,
  input  wire stream_entry_valid,
  output wire stream_done,
  // memory-side data
  output wire [511:0] rd_data,
  output wire rd_valid,
  input  wire [511:0] wr_data,
  input  wire wr_valid
);
  // Stream Issue -> Stream Request -> Stream Generation pipeline with
  // one-hot stream-table bypass (Fig. 11).
endmodule


module reg_14 (
  input  wire clk,
  input  wire rst,
  // stream-dispatcher command interface
  input  wire [255:0] stream_entry,
  input  wire stream_entry_valid,
  output wire stream_done,
  // memory-side data
  output wire [511:0] rd_data,
  output wire rd_valid,
  input  wire [511:0] wr_data,
  input  wire wr_valid
);
  // Stream Issue -> Stream Request -> Stream Generation pipeline with
  // one-hot stream-table bypass (Fig. 11).
endmodule

module overgen_tile_0 (
  input  wire clk,
  input  wire rst,
  // RoCC command interface from the control core
  input  wire [63:0] rocc_cmd,
  input  wire rocc_cmd_valid,
  // TileLink memory interface
  output wire [511:0] tl_a,
  input  wire [511:0] tl_d
);
  // stream dispatcher
  wire [255:0] dispatch_bus;
  wire [63:0] link_0_1;  // sw0 -> sw1
  wire [63:0] link_0_3;  // sw0 -> sw3
  wire [63:0] link_0_6;  // sw0 -> pe6
  wire [63:0] link_1_0;  // sw1 -> sw0
  wire [63:0] link_1_2;  // sw1 -> sw2
  wire [63:0] link_1_4;  // sw1 -> sw4
  wire [63:0] link_1_6;  // sw1 -> pe6
  wire [63:0] link_1_7;  // sw1 -> pe7
  wire [63:0] link_2_1;  // sw2 -> sw1
  wire [63:0] link_2_5;  // sw2 -> sw5
  wire [63:0] link_2_7;  // sw2 -> pe7
  wire [63:0] link_3_4;  // sw3 -> sw4
  wire [63:0] link_3_6;  // sw3 -> pe6
  wire [63:0] link_3_9;  // sw3 -> op9
  wire [63:0] link_4_3;  // sw4 -> sw3
  wire [63:0] link_4_5;  // sw4 -> sw5
  wire [63:0] link_4_7;  // sw4 -> pe7
  wire [63:0] link_5_4;  // sw5 -> sw4
  wire [63:0] link_6_4;  // pe6 -> sw4
  wire [63:0] link_7_5;  // pe7 -> sw5
  wire [63:0] link_8_0;  // ip8 -> sw0
  wire [63:0] link_9_10;  // op9 -> dma10
  wire [63:0] link_9_11;  // op9 -> spad11
  wire [63:0] link_9_12;  // op9 -> gen12
  wire [63:0] link_9_13;  // op9 -> rec13
  wire [63:0] link_9_14;  // op9 -> reg14
  wire [63:0] link_10_8;  // dma10 -> ip8
  wire [63:0] link_11_8;  // spad11 -> ip8
  wire [63:0] link_12_8;  // gen12 -> ip8
  wire [63:0] link_13_8;  // rec13 -> ip8
  wire [63:0] link_14_8;  // reg14 -> ip8
  sw_0 u_sw_0 (.clk(clk), .rst(rst) /* ... */);
  sw_1 u_sw_1 (.clk(clk), .rst(rst) /* ... */);
  sw_2 u_sw_2 (.clk(clk), .rst(rst) /* ... */);
  sw_3 u_sw_3 (.clk(clk), .rst(rst) /* ... */);
  sw_4 u_sw_4 (.clk(clk), .rst(rst) /* ... */);
  sw_5 u_sw_5 (.clk(clk), .rst(rst) /* ... */);
  pe_6 u_pe_6 (.clk(clk), .rst(rst) /* ... */);
  pe_7 u_pe_7 (.clk(clk), .rst(rst) /* ... */);
  ip_8 u_ip_8 (.clk(clk), .rst(rst) /* ... */);
  op_9 u_op_9 (.clk(clk), .rst(rst) /* ... */);
  dma_10 u_dma_10 (.clk(clk), .rst(rst) /* ... */);
  spad_11 u_spad_11 (.clk(clk), .rst(rst) /* ... */);
  gen_12 u_gen_12 (.clk(clk), .rst(rst) /* ... */);
  rec_13 u_rec_13 (.clk(clk), .rst(rst) /* ... */);
  reg_14 u_reg_14 (.clk(clk), .rst(rst) /* ... */);
endmodule