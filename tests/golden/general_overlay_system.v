// =====================================================================
// OverGen overlay: general-OG
// tiles=4 l2=512KiB x 4 banks
// noc=32B/cyc dram_channels=1
// target: XCVU9P @ 92.87 MHz
// =====================================================================
// ---- OverGen tile 0: 24 PEs, 35 switches ----
// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_35 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_36 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_37 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_38 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_39 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_40 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_41 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_42 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_43 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_44 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_45 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_46 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_47 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_48 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_49 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_50 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_51 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_52 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_53 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_54 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_55 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_56 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_57 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Processing element: caps = f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor
// delay FIFOs: depth 8 per operand
module pe_58 (
  input  wire clk,
  input  wire rst,
  input  wire [511:0] operand0,
  input  wire operand0_valid,
  input  wire [511:0] operand1,
  input  wire operand1_valid,
  input  wire [511:0] operand2,
  input  wire operand2_valid,
  output wire [511:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: f32.abs, f32.add, f32.cmp, f32.div, f32.max, f32.min, f32.mul, f32.select, f32.sqrt, f32.sub, f64.abs, f64.add, f64.cmp, f64.div, f64.max, f64.min, f64.mul, f64.select, f64.sqrt, f64.sub, i16.abs, i16.add, i16.and, i16.cmp, i16.div, i16.max, i16.min, i16.mul, i16.or, i16.select, i16.shl, i16.shr, i16.sub, i16.xor, i32.abs, i32.add, i32.and, i32.cmp, i32.div, i32.max, i32.min, i32.mul, i32.or, i32.select, i32.shl, i32.shr, i32.sub, i32.xor, i64.abs, i64.add, i64.and, i64.cmp, i64.div, i64.max, i64.min, i64.mul, i64.or, i64.select, i64.shl, i64.shr, i64.sub, i64.xor, i8.abs, i8.add, i8.and, i8.cmp, i8.div, i8.max, i8.min, i8.mul, i8.or, i8.select, i8.shl, i8.shr, i8.sub, i8.xor.
endmodule

// Circuit-switched operand router (3 in x 3 out)
module sw_0 (
  input  wire clk,
  input  wire rst,
  input  wire [1535:0] in_bus,
  input  wire [2:0] in_valid,
  output wire [1535:0] out_bus,
  output wire [2:0] out_valid,
  input  wire [8:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 5 out)
module sw_1 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [2559:0] out_bus,
  output wire [4:0] out_valid,
  input  wire [19:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 5 out)
module sw_2 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [2559:0] out_bus,
  output wire [4:0] out_valid,
  input  wire [19:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 5 out)
module sw_3 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [2559:0] out_bus,
  output wire [4:0] out_valid,
  input  wire [19:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 5 out)
module sw_4 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [2559:0] out_bus,
  output wire [4:0] out_valid,
  input  wire [19:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 5 out)
module sw_5 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [2559:0] out_bus,
  output wire [4:0] out_valid,
  input  wire [19:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (2 in x 3 out)
module sw_6 (
  input  wire clk,
  input  wire rst,
  input  wire [1023:0] in_bus,
  input  wire [1:0] in_valid,
  output wire [1535:0] out_bus,
  output wire [2:0] out_valid,
  input  wire [5:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (2 in x 4 out)
module sw_7 (
  input  wire clk,
  input  wire rst,
  input  wire [1023:0] in_bus,
  input  wire [1:0] in_valid,
  output wire [2047:0] out_bus,
  output wire [3:0] out_valid,
  input  wire [7:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_8 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_9 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_10 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_11 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_12 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (3 in x 3 out)
module sw_13 (
  input  wire clk,
  input  wire rst,
  input  wire [1535:0] in_bus,
  input  wire [2:0] in_valid,
  output wire [1535:0] out_bus,
  output wire [2:0] out_valid,
  input  wire [8:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (2 in x 4 out)
module sw_14 (
  input  wire clk,
  input  wire rst,
  input  wire [1023:0] in_bus,
  input  wire [1:0] in_valid,
  output wire [2047:0] out_bus,
  output wire [3:0] out_valid,
  input  wire [7:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_15 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_16 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_17 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_18 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_19 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (3 in x 3 out)
module sw_20 (
  input  wire clk,
  input  wire rst,
  input  wire [1535:0] in_bus,
  input  wire [2:0] in_valid,
  output wire [1535:0] out_bus,
  output wire [2:0] out_valid,
  input  wire [8:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (2 in x 4 out)
module sw_21 (
  input  wire clk,
  input  wire rst,
  input  wire [1023:0] in_bus,
  input  wire [1:0] in_valid,
  output wire [2047:0] out_bus,
  output wire [3:0] out_valid,
  input  wire [7:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_22 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_23 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_24 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_25 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 6 out)
module sw_26 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [3071:0] out_bus,
  output wire [5:0] out_valid,
  input  wire [23:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (3 in x 3 out)
module sw_27 (
  input  wire clk,
  input  wire rst,
  input  wire [1535:0] in_bus,
  input  wire [2:0] in_valid,
  output wire [1535:0] out_bus,
  output wire [2:0] out_valid,
  input  wire [8:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (2 in x 4 out)
module sw_28 (
  input  wire clk,
  input  wire rst,
  input  wire [1023:0] in_bus,
  input  wire [1:0] in_valid,
  output wire [2047:0] out_bus,
  output wire [3:0] out_valid,
  input  wire [7:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 4 out)
module sw_29 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [2047:0] out_bus,
  output wire [3:0] out_valid,
  input  wire [15:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 4 out)
module sw_30 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [2047:0] out_bus,
  output wire [3:0] out_valid,
  input  wire [15:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 4 out)
module sw_31 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [2047:0] out_bus,
  output wire [3:0] out_valid,
  input  wire [15:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 4 out)
module sw_32 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [2047:0] out_bus,
  output wire [3:0] out_valid,
  input  wire [15:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (4 in x 4 out)
module sw_33 (
  input  wire clk,
  input  wire rst,
  input  wire [2047:0] in_bus,
  input  wire [3:0] in_valid,
  output wire [2047:0] out_bus,
  output wire [3:0] out_valid,
  input  wire [15:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// Circuit-switched operand router (3 in x 2 out)
module sw_34 (
  input  wire clk,
  input  wire rst,
  input  wire [1535:0] in_bus,
  input  wire [2:0] in_valid,
  output wire [1023:0] out_bus,
  output wire [1:0] out_valid,
  input  wire [5:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule

// padding=True meta=True fifo_depth=4
module ip_59 (  // vector input port, 64 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [511:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [511:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_60 (  // vector input port, 32 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [255:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [255:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_61 (  // vector input port, 32 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [255:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [255:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_62 (  // vector input port, 16 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [127:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [127:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_63 (  // vector input port, 16 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [127:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [127:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_64 (  // vector input port, 16 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [127:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [127:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_65 (  // vector input port, 8 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [63:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [63:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_66 (  // vector input port, 8 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [63:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [63:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_67 (  // vector input port, 8 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [63:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [63:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_68 (  // vector input port, 8 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [63:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [63:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_69 (  // vector input port, 8 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [63:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [63:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_70 (  // vector input port, 4 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [31:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [31:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// padding=True meta=True fifo_depth=4
module ip_71 (  // vector input port, 4 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [31:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [31:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule


module op_72 (  // vector output port, 64 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [511:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [511:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule


module op_73 (  // vector output port, 32 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [255:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [255:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule


module op_74 (  // vector output port, 16 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [127:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [127:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule


module op_75 (  // vector output port, 16 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [127:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [127:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule


module op_76 (  // vector output port, 8 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [63:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [63:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule


module op_77 (  // vector output port, 8 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [63:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [63:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule


module op_78 (  // vector output port, 8 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [63:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [63:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule


module op_79 (  // vector output port, 8 B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [63:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [63:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule

// bandwidth 64 B/cyc, indirect=True, ROB 16 entries
module dma_80 (
  input  wire clk,
  input  wire rst,
  // stream-dispatcher command interface
  input  wire [255:0] stream_entry,
  input  wire stream_entry_valid,
  output wire stream_done,
  // memory-side data
  output wire [511:0] rd_data,
  output wire rd_valid,
  input  wire [511:0] wr_data,
  input  wire wr_valid
);
  // Stream Issue -> Stream Request -> Stream Generation pipeline with
  // one-hot stream-table bypass (Fig. 11).
endmodule

// capacity 32768 B, rd/wr 32/32 B/cyc, indirect=True
module spad_81 (
  input  wire clk,
  input  wire rst,
  // stream-dispatcher command interface
  input  wire [255:0] stream_entry,
  input  wire stream_entry_valid,
  output wire stream_done,
  // memory-side data
  output wire [511:0] rd_data,
  output wire rd_valid,
  input  wire [511:0] wr_data,
  input  wire wr_valid
);
  // Stream Issue -> Stream Request -> Stream Generation pipeline with
  // one-hot stream-table bypass (Fig. 11).
endmodule


module gen_82 (
  input  wire clk,
  input  wire rst,
  // stream-dispatcher command interface
  input  wire [255:0] stream_entry,
  input  wire stream_entry_valid,
  output wire stream_done,
  // memory-side data
  output wire [511:0] rd_data,
  output wire rd_valid,
  input  wire [511:0] wr_data,
  input  wire wr_valid
);
  // Stream Issue -> Stream Request -> Stream Generation pipeline with
  // one-hot stream-table bypass (Fig. 11).
endmodule

// buffer 4096 B
module rec_83 (
  input  wire clk,
  input  wire rst,
  // stream-dispatcher command interface
  input  wire [255:0] stream_entry,
  input  wire stream_entry_valid,
  output wire stream_done,
  // memory-side data
  output wire [511:0] rd_data,
  output wire rd_valid,
  input  wire [511:0] wr_data,
  input  wire wr_valid
);
  // Stream Issue -> Stream Request -> Stream Generation pipeline with
  // one-hot stream-table bypass (Fig. 11).
endmodule


module reg_84 (
  input  wire clk,
  input  wire rst,
  // stream-dispatcher command interface
  input  wire [255:0] stream_entry,
  input  wire stream_entry_valid,
  output wire stream_done,
  // memory-side data
  output wire [511:0] rd_data,
  output wire rd_valid,
  input  wire [511:0] wr_data,
  input  wire wr_valid
);
  // Stream Issue -> Stream Request -> Stream Generation pipeline with
  // one-hot stream-table bypass (Fig. 11).
endmodule

module overgen_tile_0 (
  input  wire clk,
  input  wire rst,
  // RoCC command interface from the control core
  input  wire [63:0] rocc_cmd,
  input  wire rocc_cmd_valid,
  // TileLink memory interface
  output wire [511:0] tl_a,
  input  wire [511:0] tl_d
);
  // stream dispatcher
  wire [255:0] dispatch_bus;
  wire [511:0] link_0_1;  // sw0 -> sw1
  wire [511:0] link_0_7;  // sw0 -> sw7
  wire [511:0] link_0_35;  // sw0 -> pe35
  wire [511:0] link_1_0;  // sw1 -> sw0
  wire [511:0] link_1_2;  // sw1 -> sw2
  wire [511:0] link_1_8;  // sw1 -> sw8
  wire [511:0] link_1_35;  // sw1 -> pe35
  wire [511:0] link_1_36;  // sw1 -> pe36
  wire [511:0] link_2_1;  // sw2 -> sw1
  wire [511:0] link_2_3;  // sw2 -> sw3
  wire [511:0] link_2_9;  // sw2 -> sw9
  wire [511:0] link_2_36;  // sw2 -> pe36
  wire [511:0] link_2_37;  // sw2 -> pe37
  wire [511:0] link_3_2;  // sw3 -> sw2
  wire [511:0] link_3_4;  // sw3 -> sw4
  wire [511:0] link_3_10;  // sw3 -> sw10
  wire [511:0] link_3_37;  // sw3 -> pe37
  wire [511:0] link_3_38;  // sw3 -> pe38
  wire [511:0] link_4_3;  // sw4 -> sw3
  wire [511:0] link_4_5;  // sw4 -> sw5
  wire [511:0] link_4_11;  // sw4 -> sw11
  wire [511:0] link_4_38;  // sw4 -> pe38
  wire [511:0] link_4_39;  // sw4 -> pe39
  wire [511:0] link_5_4;  // sw5 -> sw4
  wire [511:0] link_5_6;  // sw5 -> sw6
  wire [511:0] link_5_12;  // sw5 -> sw12
  wire [511:0] link_5_39;  // sw5 -> pe39
  wire [511:0] link_5_40;  // sw5 -> pe40
  wire [511:0] link_6_5;  // sw6 -> sw5
  wire [511:0] link_6_13;  // sw6 -> sw13
  wire [511:0] link_6_40;  // sw6 -> pe40
  wire [511:0] link_7_8;  // sw7 -> sw8
  wire [511:0] link_7_14;  // sw7 -> sw14
  wire [511:0] link_7_35;  // sw7 -> pe35
  wire [511:0] link_7_41;  // sw7 -> pe41
  wire [511:0] link_8_7;  // sw8 -> sw7
  wire [511:0] link_8_9;  // sw8 -> sw9
  wire [511:0] link_8_15;  // sw8 -> sw15
  wire [511:0] link_8_36;  // sw8 -> pe36
  wire [511:0] link_8_41;  // sw8 -> pe41
  wire [511:0] link_8_42;  // sw8 -> pe42
  wire [511:0] link_9_8;  // sw9 -> sw8
  wire [511:0] link_9_10;  // sw9 -> sw10
  wire [511:0] link_9_16;  // sw9 -> sw16
  wire [511:0] link_9_37;  // sw9 -> pe37
  wire [511:0] link_9_42;  // sw9 -> pe42
  wire [511:0] link_9_43;  // sw9 -> pe43
  wire [511:0] link_10_9;  // sw10 -> sw9
  wire [511:0] link_10_11;  // sw10 -> sw11
  wire [511:0] link_10_17;  // sw10 -> sw17
  wire [511:0] link_10_38;  // sw10 -> pe38
  wire [511:0] link_10_43;  // sw10 -> pe43
  wire [511:0] link_10_44;  // sw10 -> pe44
  wire [511:0] link_11_10;  // sw11 -> sw10
  wire [511:0] link_11_12;  // sw11 -> sw12
  wire [511:0] link_11_18;  // sw11 -> sw18
  wire [511:0] link_11_39;  // sw11 -> pe39
  wire [511:0] link_11_44;  // sw11 -> pe44
  wire [511:0] link_11_45;  // sw11 -> pe45
  wire [511:0] link_12_11;  // sw12 -> sw11
  wire [511:0] link_12_13;  // sw12 -> sw13
  wire [511:0] link_12_19;  // sw12 -> sw19
  wire [511:0] link_12_40;  // sw12 -> pe40
  wire [511:0] link_12_45;  // sw12 -> pe45
  wire [511:0] link_12_46;  // sw12 -> pe46
  wire [511:0] link_13_12;  // sw13 -> sw12
  wire [511:0] link_13_20;  // sw13 -> sw20
  wire [511:0] link_13_46;  // sw13 -> pe46
  wire [511:0] link_14_15;  // sw14 -> sw15
  wire [511:0] link_14_21;  // sw14 -> sw21
  wire [511:0] link_14_41;  // sw14 -> pe41
  wire [511:0] link_14_47;  // sw14 -> pe47
  wire [511:0] link_15_14;  // sw15 -> sw14
  wire [511:0] link_15_16;  // sw15 -> sw16
  wire [511:0] link_15_22;  // sw15 -> sw22
  wire [511:0] link_15_42;  // sw15 -> pe42
  wire [511:0] link_15_47;  // sw15 -> pe47
  wire [511:0] link_15_48;  // sw15 -> pe48
  wire [511:0] link_16_15;  // sw16 -> sw15
  wire [511:0] link_16_17;  // sw16 -> sw17
  wire [511:0] link_16_23;  // sw16 -> sw23
  wire [511:0] link_16_43;  // sw16 -> pe43
  wire [511:0] link_16_48;  // sw16 -> pe48
  wire [511:0] link_16_49;  // sw16 -> pe49
  wire [511:0] link_17_16;  // sw17 -> sw16
  wire [511:0] link_17_18;  // sw17 -> sw18
  wire [511:0] link_17_24;  // sw17 -> sw24
  wire [511:0] link_17_44;  // sw17 -> pe44
  wire [511:0] link_17_49;  // sw17 -> pe49
  wire [511:0] link_17_50;  // sw17 -> pe50
  wire [511:0] link_18_17;  // sw18 -> sw17
  wire [511:0] link_18_19;  // sw18 -> sw19
  wire [511:0] link_18_25;  // sw18 -> sw25
  wire [511:0] link_18_45;  // sw18 -> pe45
  wire [511:0] link_18_50;  // sw18 -> pe50
  wire [511:0] link_18_51;  // sw18 -> pe51
  wire [511:0] link_19_18;  // sw19 -> sw18
  wire [511:0] link_19_20;  // sw19 -> sw20
  wire [511:0] link_19_26;  // sw19 -> sw26
  wire [511:0] link_19_46;  // sw19 -> pe46
  wire [511:0] link_19_51;  // sw19 -> pe51
  wire [511:0] link_19_52;  // sw19 -> pe52
  wire [511:0] link_20_19;  // sw20 -> sw19
  wire [511:0] link_20_27;  // sw20 -> sw27
  wire [511:0] link_20_52;  // sw20 -> pe52
  wire [511:0] link_21_22;  // sw21 -> sw22
  wire [511:0] link_21_28;  // sw21 -> sw28
  wire [511:0] link_21_47;  // sw21 -> pe47
  wire [511:0] link_21_53;  // sw21 -> pe53
  wire [511:0] link_22_21;  // sw22 -> sw21
  wire [511:0] link_22_23;  // sw22 -> sw23
  wire [511:0] link_22_29;  // sw22 -> sw29
  wire [511:0] link_22_48;  // sw22 -> pe48
  wire [511:0] link_22_53;  // sw22 -> pe53
  wire [511:0] link_22_54;  // sw22 -> pe54
  wire [511:0] link_23_22;  // sw23 -> sw22
  wire [511:0] link_23_24;  // sw23 -> sw24
  wire [511:0] link_23_30;  // sw23 -> sw30
  wire [511:0] link_23_49;  // sw23 -> pe49
  wire [511:0] link_23_54;  // sw23 -> pe54
  wire [511:0] link_23_55;  // sw23 -> pe55
  wire [511:0] link_24_23;  // sw24 -> sw23
  wire [511:0] link_24_25;  // sw24 -> sw25
  wire [511:0] link_24_31;  // sw24 -> sw31
  wire [511:0] link_24_50;  // sw24 -> pe50
  wire [511:0] link_24_55;  // sw24 -> pe55
  wire [511:0] link_24_56;  // sw24 -> pe56
  wire [511:0] link_25_24;  // sw25 -> sw24
  wire [511:0] link_25_26;  // sw25 -> sw26
  wire [511:0] link_25_32;  // sw25 -> sw32
  wire [511:0] link_25_51;  // sw25 -> pe51
  wire [511:0] link_25_56;  // sw25 -> pe56
  wire [511:0] link_25_57;  // sw25 -> pe57
  wire [511:0] link_26_25;  // sw26 -> sw25
  wire [511:0] link_26_27;  // sw26 -> sw27
  wire [511:0] link_26_33;  // sw26 -> sw33
  wire [511:0] link_26_52;  // sw26 -> pe52
  wire [511:0] link_26_57;  // sw26 -> pe57
  wire [511:0] link_26_58;  // sw26 -> pe58
  wire [511:0] link_27_26;  // sw27 -> sw26
  wire [511:0] link_27_34;  // sw27 -> sw34
  wire [511:0] link_27_58;  // sw27 -> pe58
  wire [511:0] link_28_29;  // sw28 -> sw29
  wire [511:0] link_28_53;  // sw28 -> pe53
  wire [511:0] link_28_72;  // sw28 -> op72
  wire [63:0] link_28_79;  // sw28 -> op79
  wire [511:0] link_29_28;  // sw29 -> sw28
  wire [511:0] link_29_30;  // sw29 -> sw30
  wire [511:0] link_29_54;  // sw29 -> pe54
  wire [255:0] link_29_73;  // sw29 -> op73
  wire [511:0] link_30_29;  // sw30 -> sw29
  wire [511:0] link_30_31;  // sw30 -> sw31
  wire [511:0] link_30_55;  // sw30 -> pe55
  wire [127:0] link_30_74;  // sw30 -> op74
  wire [511:0] link_31_30;  // sw31 -> sw30
  wire [511:0] link_31_32;  // sw31 -> sw32
  wire [511:0] link_31_56;  // sw31 -> pe56
  wire [127:0] link_31_75;  // sw31 -> op75
  wire [511:0] link_32_31;  // sw32 -> sw31
  wire [511:0] link_32_33;  // sw32 -> sw33
  wire [511:0] link_32_57;  // sw32 -> pe57
  wire [63:0] link_32_76;  // sw32 -> op76
  wire [511:0] link_33_32;  // sw33 -> sw32
  wire [511:0] link_33_34;  // sw33 -> sw34
  wire [511:0] link_33_58;  // sw33 -> pe58
  wire [63:0] link_33_77;  // sw33 -> op77
  wire [511:0] link_34_33;  // sw34 -> sw33
  wire [63:0] link_34_78;  // sw34 -> op78
  wire [511:0] link_35_8;  // pe35 -> sw8
  wire [511:0] link_36_9;  // pe36 -> sw9
  wire [511:0] link_37_10;  // pe37 -> sw10
  wire [511:0] link_38_11;  // pe38 -> sw11
  wire [511:0] link_39_12;  // pe39 -> sw12
  wire [511:0] link_40_13;  // pe40 -> sw13
  wire [511:0] link_41_15;  // pe41 -> sw15
  wire [511:0] link_42_16;  // pe42 -> sw16
  wire [511:0] link_43_17;  // pe43 -> sw17
  wire [511:0] link_44_18;  // pe44 -> sw18
  wire [511:0] link_45_19;  // pe45 -> sw19
  wire [511:0] link_46_20;  // pe46 -> sw20
  wire [511:0] link_47_22;  // pe47 -> sw22
  wire [511:0] link_48_23;  // pe48 -> sw23
  wire [511:0] link_49_24;  // pe49 -> sw24
  wire [511:0] link_50_25;  // pe50 -> sw25
  wire [511:0] link_51_26;  // pe51 -> sw26
  wire [511:0] link_52_27;  // pe52 -> sw27
  wire [511:0] link_53_29;  // pe53 -> sw29
  wire [511:0] link_54_30;  // pe54 -> sw30
  wire [511:0] link_55_31;  // pe55 -> sw31
  wire [511:0] link_56_32;  // pe56 -> sw32
  wire [511:0] link_57_33;  // pe57 -> sw33
  wire [511:0] link_58_34;  // pe58 -> sw34
  wire [511:0] link_59_0;  // ip59 -> sw0
  wire [255:0] link_60_1;  // ip60 -> sw1
  wire [255:0] link_61_2;  // ip61 -> sw2
  wire [127:0] link_62_3;  // ip62 -> sw3
  wire [127:0] link_63_4;  // ip63 -> sw4
  wire [127:0] link_64_5;  // ip64 -> sw5
  wire [63:0] link_65_6;  // ip65 -> sw6
  wire [63:0] link_66_0;  // ip66 -> sw0
  wire [63:0] link_67_1;  // ip67 -> sw1
  wire [63:0] link_68_2;  // ip68 -> sw2
  wire [63:0] link_69_3;  // ip69 -> sw3
  wire [31:0] link_70_4;  // ip70 -> sw4
  wire [31:0] link_71_5;  // ip71 -> sw5
  wire [63:0] link_72_80;  // op72 -> dma80
  wire [63:0] link_72_81;  // op72 -> spad81
  wire [63:0] link_72_82;  // op72 -> gen82
  wire [63:0] link_72_83;  // op72 -> rec83
  wire [63:0] link_72_84;  // op72 -> reg84
  wire [63:0] link_73_80;  // op73 -> dma80
  wire [63:0] link_73_81;  // op73 -> spad81
  wire [63:0] link_73_82;  // op73 -> gen82
  wire [63:0] link_73_83;  // op73 -> rec83
  wire [63:0] link_73_84;  // op73 -> reg84
  wire [63:0] link_74_80;  // op74 -> dma80
  wire [63:0] link_74_81;  // op74 -> spad81
  wire [63:0] link_74_82;  // op74 -> gen82
  wire [63:0] link_74_83;  // op74 -> rec83
  wire [63:0] link_74_84;  // op74 -> reg84
  wire [63:0] link_75_80;  // op75 -> dma80
  wire [63:0] link_75_81;  // op75 -> spad81
  wire [63:0] link_75_82;  // op75 -> gen82
  wire [63:0] link_75_83;  // op75 -> rec83
  wire [63:0] link_75_84;  // op75 -> reg84
  wire [63:0] link_76_80;  // op76 -> dma80
  wire [63:0] link_76_81;  // op76 -> spad81
  wire [63:0] link_76_82;  // op76 -> gen82
  wire [63:0] link_76_83;  // op76 -> rec83
  wire [63:0] link_76_84;  // op76 -> reg84
  wire [63:0] link_77_80;  // op77 -> dma80
  wire [63:0] link_77_81;  // op77 -> spad81
  wire [63:0] link_77_82;  // op77 -> gen82
  wire [63:0] link_77_83;  // op77 -> rec83
  wire [63:0] link_77_84;  // op77 -> reg84
  wire [63:0] link_78_80;  // op78 -> dma80
  wire [63:0] link_78_81;  // op78 -> spad81
  wire [63:0] link_78_82;  // op78 -> gen82
  wire [63:0] link_78_83;  // op78 -> rec83
  wire [63:0] link_78_84;  // op78 -> reg84
  wire [63:0] link_79_80;  // op79 -> dma80
  wire [63:0] link_79_81;  // op79 -> spad81
  wire [63:0] link_79_82;  // op79 -> gen82
  wire [63:0] link_79_83;  // op79 -> rec83
  wire [63:0] link_79_84;  // op79 -> reg84
  wire [63:0] link_80_59;  // dma80 -> ip59
  wire [63:0] link_80_60;  // dma80 -> ip60
  wire [63:0] link_80_61;  // dma80 -> ip61
  wire [63:0] link_80_62;  // dma80 -> ip62
  wire [63:0] link_80_63;  // dma80 -> ip63
  wire [63:0] link_80_64;  // dma80 -> ip64
  wire [63:0] link_80_65;  // dma80 -> ip65
  wire [63:0] link_80_66;  // dma80 -> ip66
  wire [63:0] link_80_67;  // dma80 -> ip67
  wire [63:0] link_80_68;  // dma80 -> ip68
  wire [63:0] link_80_69;  // dma80 -> ip69
  wire [31:0] link_80_70;  // dma80 -> ip70
  wire [31:0] link_80_71;  // dma80 -> ip71
  wire [63:0] link_81_59;  // spad81 -> ip59
  wire [63:0] link_81_60;  // spad81 -> ip60
  wire [63:0] link_81_61;  // spad81 -> ip61
  wire [63:0] link_81_62;  // spad81 -> ip62
  wire [63:0] link_81_63;  // spad81 -> ip63
  wire [63:0] link_81_64;  // spad81 -> ip64
  wire [63:0] link_81_65;  // spad81 -> ip65
  wire [63:0] link_81_66;  // spad81 -> ip66
  wire [63:0] link_81_67;  // spad81 -> ip67
  wire [63:0] link_81_68;  // spad81 -> ip68
  wire [63:0] link_81_69;  // spad81 -> ip69
  wire [31:0] link_81_70;  // spad81 -> ip70
  wire [31:0] link_81_71;  // spad81 -> ip71
  wire [63:0] link_82_59;  // gen82 -> ip59
  wire [63:0] link_82_60;  // gen82 -> ip60
  wire [63:0] link_82_61;  // gen82 -> ip61
  wire [63:0] link_82_62;  // gen82 -> ip62
  wire [63:0] link_82_63;  // gen82 -> ip63
  wire [63:0] link_82_64;  // gen82 -> ip64
  wire [63:0] link_82_65;  // gen82 -> ip65
  wire [63:0] link_82_66;  // gen82 -> ip66
  wire [63:0] link_82_67;  // gen82 -> ip67
  wire [63:0] link_82_68;  // gen82 -> ip68
  wire [63:0] link_82_69;  // gen82 -> ip69
  wire [31:0] link_82_70;  // gen82 -> ip70
  wire [31:0] link_82_71;  // gen82 -> ip71
  wire [63:0] link_83_59;  // rec83 -> ip59
  wire [63:0] link_83_60;  // rec83 -> ip60
  wire [63:0] link_83_61;  // rec83 -> ip61
  wire [63:0] link_83_62;  // rec83 -> ip62
  wire [63:0] link_83_63;  // rec83 -> ip63
  wire [63:0] link_83_64;  // rec83 -> ip64
  wire [63:0] link_83_65;  // rec83 -> ip65
  wire [63:0] link_83_66;  // rec83 -> ip66
  wire [63:0] link_83_67;  // rec83 -> ip67
  wire [63:0] link_83_68;  // rec83 -> ip68
  wire [63:0] link_83_69;  // rec83 -> ip69
  wire [31:0] link_83_70;  // rec83 -> ip70
  wire [31:0] link_83_71;  // rec83 -> ip71
  wire [63:0] link_84_59;  // reg84 -> ip59
  wire [63:0] link_84_60;  // reg84 -> ip60
  wire [63:0] link_84_61;  // reg84 -> ip61
  wire [63:0] link_84_62;  // reg84 -> ip62
  wire [63:0] link_84_63;  // reg84 -> ip63
  wire [63:0] link_84_64;  // reg84 -> ip64
  wire [63:0] link_84_65;  // reg84 -> ip65
  wire [63:0] link_84_66;  // reg84 -> ip66
  wire [63:0] link_84_67;  // reg84 -> ip67
  wire [63:0] link_84_68;  // reg84 -> ip68
  wire [63:0] link_84_69;  // reg84 -> ip69
  wire [31:0] link_84_70;  // reg84 -> ip70
  wire [31:0] link_84_71;  // reg84 -> ip71
  sw_0 u_sw_0 (.clk(clk), .rst(rst) /* ... */);
  sw_1 u_sw_1 (.clk(clk), .rst(rst) /* ... */);
  sw_2 u_sw_2 (.clk(clk), .rst(rst) /* ... */);
  sw_3 u_sw_3 (.clk(clk), .rst(rst) /* ... */);
  sw_4 u_sw_4 (.clk(clk), .rst(rst) /* ... */);
  sw_5 u_sw_5 (.clk(clk), .rst(rst) /* ... */);
  sw_6 u_sw_6 (.clk(clk), .rst(rst) /* ... */);
  sw_7 u_sw_7 (.clk(clk), .rst(rst) /* ... */);
  sw_8 u_sw_8 (.clk(clk), .rst(rst) /* ... */);
  sw_9 u_sw_9 (.clk(clk), .rst(rst) /* ... */);
  sw_10 u_sw_10 (.clk(clk), .rst(rst) /* ... */);
  sw_11 u_sw_11 (.clk(clk), .rst(rst) /* ... */);
  sw_12 u_sw_12 (.clk(clk), .rst(rst) /* ... */);
  sw_13 u_sw_13 (.clk(clk), .rst(rst) /* ... */);
  sw_14 u_sw_14 (.clk(clk), .rst(rst) /* ... */);
  sw_15 u_sw_15 (.clk(clk), .rst(rst) /* ... */);
  sw_16 u_sw_16 (.clk(clk), .rst(rst) /* ... */);
  sw_17 u_sw_17 (.clk(clk), .rst(rst) /* ... */);
  sw_18 u_sw_18 (.clk(clk), .rst(rst) /* ... */);
  sw_19 u_sw_19 (.clk(clk), .rst(rst) /* ... */);
  sw_20 u_sw_20 (.clk(clk), .rst(rst) /* ... */);
  sw_21 u_sw_21 (.clk(clk), .rst(rst) /* ... */);
  sw_22 u_sw_22 (.clk(clk), .rst(rst) /* ... */);
  sw_23 u_sw_23 (.clk(clk), .rst(rst) /* ... */);
  sw_24 u_sw_24 (.clk(clk), .rst(rst) /* ... */);
  sw_25 u_sw_25 (.clk(clk), .rst(rst) /* ... */);
  sw_26 u_sw_26 (.clk(clk), .rst(rst) /* ... */);
  sw_27 u_sw_27 (.clk(clk), .rst(rst) /* ... */);
  sw_28 u_sw_28 (.clk(clk), .rst(rst) /* ... */);
  sw_29 u_sw_29 (.clk(clk), .rst(rst) /* ... */);
  sw_30 u_sw_30 (.clk(clk), .rst(rst) /* ... */);
  sw_31 u_sw_31 (.clk(clk), .rst(rst) /* ... */);
  sw_32 u_sw_32 (.clk(clk), .rst(rst) /* ... */);
  sw_33 u_sw_33 (.clk(clk), .rst(rst) /* ... */);
  sw_34 u_sw_34 (.clk(clk), .rst(rst) /* ... */);
  pe_35 u_pe_35 (.clk(clk), .rst(rst) /* ... */);
  pe_36 u_pe_36 (.clk(clk), .rst(rst) /* ... */);
  pe_37 u_pe_37 (.clk(clk), .rst(rst) /* ... */);
  pe_38 u_pe_38 (.clk(clk), .rst(rst) /* ... */);
  pe_39 u_pe_39 (.clk(clk), .rst(rst) /* ... */);
  pe_40 u_pe_40 (.clk(clk), .rst(rst) /* ... */);
  pe_41 u_pe_41 (.clk(clk), .rst(rst) /* ... */);
  pe_42 u_pe_42 (.clk(clk), .rst(rst) /* ... */);
  pe_43 u_pe_43 (.clk(clk), .rst(rst) /* ... */);
  pe_44 u_pe_44 (.clk(clk), .rst(rst) /* ... */);
  pe_45 u_pe_45 (.clk(clk), .rst(rst) /* ... */);
  pe_46 u_pe_46 (.clk(clk), .rst(rst) /* ... */);
  pe_47 u_pe_47 (.clk(clk), .rst(rst) /* ... */);
  pe_48 u_pe_48 (.clk(clk), .rst(rst) /* ... */);
  pe_49 u_pe_49 (.clk(clk), .rst(rst) /* ... */);
  pe_50 u_pe_50 (.clk(clk), .rst(rst) /* ... */);
  pe_51 u_pe_51 (.clk(clk), .rst(rst) /* ... */);
  pe_52 u_pe_52 (.clk(clk), .rst(rst) /* ... */);
  pe_53 u_pe_53 (.clk(clk), .rst(rst) /* ... */);
  pe_54 u_pe_54 (.clk(clk), .rst(rst) /* ... */);
  pe_55 u_pe_55 (.clk(clk), .rst(rst) /* ... */);
  pe_56 u_pe_56 (.clk(clk), .rst(rst) /* ... */);
  pe_57 u_pe_57 (.clk(clk), .rst(rst) /* ... */);
  pe_58 u_pe_58 (.clk(clk), .rst(rst) /* ... */);
  ip_59 u_ip_59 (.clk(clk), .rst(rst) /* ... */);
  ip_60 u_ip_60 (.clk(clk), .rst(rst) /* ... */);
  ip_61 u_ip_61 (.clk(clk), .rst(rst) /* ... */);
  ip_62 u_ip_62 (.clk(clk), .rst(rst) /* ... */);
  ip_63 u_ip_63 (.clk(clk), .rst(rst) /* ... */);
  ip_64 u_ip_64 (.clk(clk), .rst(rst) /* ... */);
  ip_65 u_ip_65 (.clk(clk), .rst(rst) /* ... */);
  ip_66 u_ip_66 (.clk(clk), .rst(rst) /* ... */);
  ip_67 u_ip_67 (.clk(clk), .rst(rst) /* ... */);
  ip_68 u_ip_68 (.clk(clk), .rst(rst) /* ... */);
  ip_69 u_ip_69 (.clk(clk), .rst(rst) /* ... */);
  ip_70 u_ip_70 (.clk(clk), .rst(rst) /* ... */);
  ip_71 u_ip_71 (.clk(clk), .rst(rst) /* ... */);
  op_72 u_op_72 (.clk(clk), .rst(rst) /* ... */);
  op_73 u_op_73 (.clk(clk), .rst(rst) /* ... */);
  op_74 u_op_74 (.clk(clk), .rst(rst) /* ... */);
  op_75 u_op_75 (.clk(clk), .rst(rst) /* ... */);
  op_76 u_op_76 (.clk(clk), .rst(rst) /* ... */);
  op_77 u_op_77 (.clk(clk), .rst(rst) /* ... */);
  op_78 u_op_78 (.clk(clk), .rst(rst) /* ... */);
  op_79 u_op_79 (.clk(clk), .rst(rst) /* ... */);
  dma_80 u_dma_80 (.clk(clk), .rst(rst) /* ... */);
  spad_81 u_spad_81 (.clk(clk), .rst(rst) /* ... */);
  gen_82 u_gen_82 (.clk(clk), .rst(rst) /* ... */);
  rec_83 u_rec_83 (.clk(clk), .rst(rst) /* ... */);
  reg_84 u_reg_84 (.clk(clk), .rst(rst) /* ... */);
endmodule
module overgen_system (
  input  wire clk,
  input  wire rst,
  // AXI4 DRAM channel(s)
  output wire [511:0] axi_mem
);
  // crossbar NoC: 4 tiles + L2 + peripherals
  tilelink_xbar #(.ENDPOINTS(6), .WIDTH(256)) u_noc ();
  inclusive_l2 #(.KIB(512), .BANKS(4)) u_l2 ();
  overgen_tile_0 u_tile_0 (.clk(clk), .rst(rst) /* ... */);
  rocket_core u_core_0 (.clk(clk), .rst(rst) /* ... */);
  overgen_tile_0 u_tile_1 (.clk(clk), .rst(rst) /* ... */);
  rocket_core u_core_1 (.clk(clk), .rst(rst) /* ... */);
  overgen_tile_0 u_tile_2 (.clk(clk), .rst(rst) /* ... */);
  rocket_core u_core_2 (.clk(clk), .rst(rst) /* ... */);
  overgen_tile_0 u_tile_3 (.clk(clk), .rst(rst) /* ... */);
  rocket_core u_core_3 (.clk(clk), .rst(rst) /* ... */);
endmodule
