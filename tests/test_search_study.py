"""Tests for the persistent study service (repro.search.study) and the
HTML report renderer."""

import json

import pytest

from repro.dse import DseConfig, Explorer
from repro.engine.store import ArtifactStore
from repro.search import (
    SEARCH_SCHEMA,
    Study,
    Trial,
    export_study,
    frontier_doc,
    import_dse_points,
    list_studies,
    load_study,
    merge_studies,
    render_html,
    save_study,
    study_from_points,
    study_key,
)
from repro.workloads import get_workload


def _trial(index, objective, lut=100.0, strategy="t", kind="params"):
    return Trial(
        index=index,
        strategy=strategy,
        kind=kind,
        lineage={"i": index},
        seed=0,
        feasible=True,
        objective=objective,
        modeled_seconds=1.0,
        lut=lut,
        ff=50.0,
        bram=4.0,
        dsp=2.0,
        bottleneck="none",
    )


def _study(key="k1", trials=(), strategy="t"):
    return Study(
        key=key,
        strategy=strategy,
        seed=0,
        batch=2,
        workloads=["vecmax"],
        config_fingerprint="cfg",
        trials=list(trials),
    )


class TestStudyBasics:
    def test_best_trial_prefers_objective_then_earliest(self):
        study = _study(trials=[_trial(0, 5.0), _trial(1, 9.0), _trial(2, 9.0)])
        assert study.best_trial().index == 1

    def test_infeasible_trials_are_excluded(self):
        bad = _trial(0, None)
        bad.feasible = False
        study = _study(trials=[bad])
        assert study.best_trial() is None
        assert study.feasible_trials() == []

    def test_trial_round_trips_through_dict(self):
        trial = _trial(3, 7.5)
        assert Trial.from_dict(trial.as_dict()) == trial.stripped()

    def test_study_key_ignores_nothing_it_should_include(self):
        w = [get_workload("vecmax")]
        cfg = DseConfig(iterations=4, seed=1)
        base = study_key(w, cfg, "tpe", 1, 2)
        assert study_key(w, cfg, "tpe", 1, 2) == base
        assert study_key(w, cfg, "tpe", 2, 2) != base
        assert study_key(w, cfg, "tpe", 1, 3) != base
        assert study_key(w, cfg, "anneal", 1, 2) != base
        assert study_key(w, DseConfig(iterations=5, seed=1), "tpe", 1, 2) != base


class TestPersistence:
    def test_save_load_round_trip_with_state(self, tmp_path):
        store = ArtifactStore(tmp_path)
        study = _study(trials=[_trial(0, 1.0), _trial(1, 2.0)])
        save_study(store, study, strategy_state={"salt": 7})
        loaded, state = load_study(store, study.key)
        assert loaded == study
        assert state == {"salt": 7}

    def test_missing_key_loads_none(self, tmp_path):
        assert load_study(ArtifactStore(tmp_path), "nope") == (None, None)

    def test_list_studies_filters_by_kind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        save_study(store, _study(key="a" * 64))
        store.put("b" * 64, {"not": "a study"}, meta={"kind": "dse"})
        rows = list_studies(store)
        assert [r["key"] for r in rows] == ["a" * 64]
        assert rows[0]["strategy"] == "t"
        assert rows[0]["trials"] == 0


class TestMerge:
    def test_merge_is_order_independent(self):
        a = _study(key="a" * 64, trials=[_trial(0, 1.0)])
        b = _study(key="b" * 64, trials=[_trial(0, 2.0)])
        ab, ba = merge_studies([a, b]), merge_studies([b, a])
        assert ab.key == ba.key
        assert ab.trials == ba.trials
        assert ab.strategy == "merged"

    def test_merge_dedups_identical_content(self):
        a = _study(key="a" * 64, trials=[_trial(0, 1.0), _trial(1, 2.0)])
        merged = merge_studies([a, a])
        assert len(merged.trials) == 2
        assert [t.index for t in merged.trials] == [0, 1]

    def test_merge_reindexes_across_studies(self):
        a = _study(key="a" * 64, trials=[_trial(0, 1.0)])
        b = _study(key="b" * 64, trials=[_trial(0, 2.0)])
        merged = merge_studies([a, b])
        assert [t.index for t in merged.trials] == [0, 1]
        assert sorted(t.objective for t in merged.trials) == [1.0, 2.0]

    def test_merge_nothing_raises(self):
        with pytest.raises(ValueError):
            merge_studies([])


class TestImport:
    def test_from_accepted_point_tuples(self):
        points = [
            (0, 1.5, 10.0, 1000.0, 800.0, 4.0, 2.0),
            (3, 2.0, 12.0, 1100.0, 900.0, 5.0, 3.0),
        ]
        study = study_from_points(
            points, workloads=["vecmax"], seed=7, strategy="import"
        )
        assert len(study.trials) == 2
        assert study.trials[0].kind == "imported"
        assert study.trials[0].objective == 10.0
        assert study.trials[0].modeled_seconds == 1.5 * 3600.0
        assert study.trials[1].lineage == {"iteration": 3}
        # Content-addressed key: same input, same study.
        again = study_from_points(
            points, workloads=["vecmax"], seed=7, strategy="import"
        )
        assert again.key == study.key

    def test_from_dse_point_event_dicts(self):
        events = [
            {
                "event": "dse_point", "seed": 4, "iteration": 2,
                "modeled_hours": 0.5, "objective": 9.0,
                "lut": 10.0, "ff": 5.0, "bram": 1.0, "dsp": 1.0,
            }
        ]
        study = study_from_points(events, workloads=["fir"])
        assert study.trials[0].seed == 4
        assert study.trials[0].objective == 9.0
        assert study.trials[0].modeled_seconds == 1800.0

    def test_import_real_dse_result(self):
        result = Explorer(
            [get_workload("vecmax")],
            DseConfig(iterations=6, seed=3),
            name="import-test",
        ).run()
        study = import_dse_points(
            result, workloads=["vecmax"], seed=3
        )
        assert study.strategy == "anneal-import"
        assert len(study.trials) == len(result.points)
        assert study.best_trial().objective == pytest.approx(
            max(p[2] for p in result.points)
        )


class TestExportAndReport:
    def test_export_study_embeds_frontier(self):
        study = _study(trials=[_trial(0, 1.0, lut=50.0), _trial(1, 2.0)])
        doc = json.loads(export_study(study))
        assert doc["schema"] == SEARCH_SCHEMA
        assert doc["pareto"]["points"]
        assert len(doc["trials"]) == 2

    def test_render_html_is_deterministic_and_self_contained(self):
        study = _study(
            trials=[_trial(0, 1.0, lut=50.0), _trial(1, 2.0), _trial(2, 1.5)]
        )
        page = render_html(study)
        assert page == render_html(study)
        assert "<svg" in page and "</html>" in page
        assert study.key[:16] in page
        # One table row per trial plus the header.
        assert page.count("<tr") == len(study.trials) + 1
        # No external assets or scripts.
        assert "http" not in page and "<script" not in page

    def test_render_html_survives_empty_study(self):
        page = render_html(_study())
        assert "no feasible trials" in page

    def test_frontier_doc_on_real_search_axes(self):
        study = _study(
            trials=[_trial(0, 5.0, lut=100.0), _trial(1, 5.0, lut=90.0)]
        )
        doc = frontier_doc(study)
        # Trial 1 dominates trial 0 (same objective, less LUT).
        assert [p["trial"] for p in doc["points"]] == [1]
