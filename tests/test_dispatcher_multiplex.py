"""Tests for the stream dispatcher model and temporal multiplexing."""

import pytest

from repro.adg import general_overlay
from repro.compiler import generate_variants
from repro.scheduler import schedule_workload
from repro.sim import (
    Barrier,
    MIN_DISPATCH_LATENCY,
    StreamCommand,
    StreamDispatcher,
    reconfiguration_cycles,
    run_sequence,
)
from repro.workloads import get_workload


def cmd(name, port="p0", engine="dma", duration=10, **params):
    return StreamCommand(
        name=name, engine=engine, port=port,
        params=params or {"address": hash(name) % 1000, "length": 64},
        duration=duration,
    )


class TestDispatcher:
    def test_min_dispatch_latency(self):
        d = StreamDispatcher()
        record = d.issue(cmd("a"))
        assert record.dispatch_latency == MIN_DISPATCH_LATENCY

    def test_one_dispatch_per_cycle_across_ports(self):
        d = StreamDispatcher()
        records = [
            d.issue(cmd(f"s{i}", port=f"p{i}", address=i, length=64))
            for i in range(6)
        ]
        dispatched = [r.dispatched for r in records]
        assert dispatched == sorted(dispatched)
        assert len(set(dispatched)) == len(dispatched)  # <= 1/cycle

    def test_port_conflict_blocks(self):
        d = StreamDispatcher()
        first = d.issue(cmd("a", port="p0", duration=50))
        second = d.issue(cmd("b", port="p0", duration=5))
        assert second.dispatched >= first.completes

    def test_different_ports_overlap(self):
        d = StreamDispatcher()
        first = d.issue(cmd("a", port="p0", duration=50))
        second = d.issue(cmd("b", port="p1", duration=5))
        assert second.dispatched < first.completes  # out-of-order dispatch

    def test_register_file_reuse_skips_writes(self):
        d = StreamDispatcher()
        a = d.issue(
            StreamCommand("a", "dma", "p0", {"address": 1, "length": 64}, 5)
        )
        # Same length register: only the address write is needed.
        b = d.issue(
            StreamCommand("b", "dma", "p1", {"address": 2, "length": 64}, 5)
        )
        c = d.issue(
            StreamCommand("c", "dma", "p2", {"address": 3, "length": 128}, 5)
        )
        writes_b = b.config_done - a.instantiated
        writes_c = c.config_done - b.instantiated
        assert writes_b == 1  # only address changed
        assert writes_c == 2  # address + length changed

    def test_full_barrier_waits_for_everything(self):
        d = StreamDispatcher()
        records = [d.issue(cmd(f"s{i}", port=f"p{i}", duration=30)) for i in range(3)]
        drained = d.barrier()
        assert drained >= max(r.completes for r in records)

    def test_selective_barrier(self):
        d = StreamDispatcher()
        slow = d.issue(cmd("slow", port="p0", duration=100))
        fast = d.issue(cmd("fast", port="p1", duration=5))
        at = d.barrier(Barrier(resources=("p1",)))
        assert at >= fast.completes
        assert at < slow.completes

    def test_run_returns_drain_cycle(self):
        d = StreamDispatcher()
        total = d.run([cmd("a", duration=10), Barrier(), cmd("b", duration=10)])
        assert total >= 20

    def test_dispatch_rate_near_one_when_saturated(self):
        d = StreamDispatcher()
        for i in range(20):
            d.issue(
                StreamCommand(f"s{i}", "dma", f"p{i}", {"address": i}, 100)
            )
        assert d.dispatch_rate() > 0.4  # 1 param write + dispatch per stream

    def test_barrier_prunes_drained_scoreboard(self):
        d = StreamDispatcher()
        for i in range(50):
            d.issue(cmd(f"s{i}", port=f"p{i % 4}", duration=5))
            d.barrier()
        # every resource drained at the barrier -> nothing stays resident
        assert d._busy_until == {}

    def test_pruning_preserves_semantics(self):
        # the same command sequence with interleaved barriers must yield
        # identical records whether or not earlier entries were pruned
        sequence = [cmd(f"s{i}", port=f"p{i % 2}", duration=7) for i in range(6)]
        pruned = StreamDispatcher()
        timeline = []
        for c in sequence[:3]:
            timeline.append(pruned.issue(c))
        pruned.barrier()  # prunes everything in flight
        for c in sequence[3:]:
            timeline.append(pruned.issue(c))
        drained = pruned.barrier()
        assert drained == max(r.completes for r in timeline)
        # per-port request order survives pruning
        for port in ("p0", "p1"):
            ds = [r.dispatched for r, c in zip(timeline, sequence) if c.port == port]
            assert ds == sorted(ds)


class TestMultiplex:
    @pytest.fixture(scope="class")
    def setup(self):
        overlay = general_overlay()
        schedules = []
        for name in ("vecmax", "convert-bit", "accumulate"):
            s = schedule_workload(
                generate_variants(get_workload(name)), overlay.adg, overlay.params
            )
            assert s is not None
            schedules.append(s)
        return overlay, schedules

    def test_sequence_accounts_compute_and_reconfig(self, setup):
        overlay, schedules = setup
        result = run_sequence(schedules, overlay)
        assert result.switches == 3
        assert result.compute_cycles > 0
        assert result.reconfig_cycles == sum(
            reconfiguration_cycles(s) for s in schedules
        )

    def test_same_kernel_twice_skips_reconfig(self, setup):
        overlay, schedules = setup
        result = run_sequence([schedules[0], schedules[0]], overlay)
        assert result.switches == 1

    def test_repeats_multiply_switches(self, setup):
        overlay, schedules = setup
        once = run_sequence(schedules, overlay, repeats=1)
        thrice = run_sequence(schedules, overlay, repeats=3)
        assert thrice.switches == 3 * once.switches

    def test_reconfig_overhead_is_small(self, setup):
        overlay, schedules = setup
        result = run_sequence(schedules, overlay)
        assert result.reconfig_overhead < 0.5

    def test_reflash_alternative_is_catastrophic(self, setup):
        overlay, schedules = setup
        result = run_sequence(schedules, overlay)
        freq = overlay.params.frequency_mhz
        assert result.reflash_alternative_seconds(freq) > 1000 * result.seconds(
            freq
        )

    def test_empty_sequence_rejected(self, setup):
        overlay, _ = setup
        with pytest.raises(ValueError):
            run_sequence([], overlay)
