"""Tests for the unified DSE (system sweep + annealing explorer)."""

import pytest

from repro.adg import SystemParams, general_overlay
from repro.dse import DseConfig, explore, max_tiles_that_fit, system_dse
from repro.model.resource import (
    AnalyticEstimator,
    Resources,
    XCVU9P,
    system_resources,
    tile_resources,
    usable_budget,
)
from repro.workloads import get_suite, get_workload


@pytest.fixture(scope="module")
def dsp_result():
    return explore(
        get_suite("dsp"), DseConfig(iterations=40, seed=7), name="dsp-test"
    )


class TestSystemDse:
    def test_max_tiles_monotone_in_tile_cost(self):
        params = SystemParams()
        budget = usable_budget()
        small = Resources(lut=30_000, ff=30_000, bram=10, dsp=20)
        big = small * 4
        assert max_tiles_that_fit(small, params, budget) >= max_tiles_that_fit(
            big, params, budget
        )

    def test_zero_when_nothing_fits(self):
        params = SystemParams()
        monster = Resources(lut=2e6, ff=1e6, bram=100, dsp=100)
        assert max_tiles_that_fit(monster, params, usable_budget()) == 0

    def test_system_dse_returns_fitting_choice(self, dsp_result):
        # re-run the nested sweep on the final design
        choice = system_dse(
            dsp_result.sysadg.adg,
            list(dsp_result.schedules.values()),
        )
        assert choice is not None
        assert choice.system_total.fits_in(usable_budget())
        assert choice.objective > 0

    def test_general_overlay_system_fits(self):
        g = general_overlay()
        assert system_resources(g).fits_in(usable_budget())


class TestExplorer:
    def test_produces_valid_overlay(self, dsp_result):
        dsp_result.sysadg.validate()
        assert dsp_result.sysadg.params.num_tiles >= 1

    def test_all_workloads_scheduled(self, dsp_result):
        names = {w.name for w in get_suite("dsp")}
        assert set(dsp_result.schedules) == names
        for schedule in dsp_result.schedules.values():
            assert schedule.is_valid_for(dsp_result.sysadg.adg)
            assert schedule.estimate is not None

    def test_objective_improves_over_seed(self, dsp_result):
        first = dsp_result.history[0][2]
        last = dsp_result.choice.objective
        assert last >= first

    def test_deterministic_given_seed(self):
        a = explore(
            [get_workload("vecmax")], DseConfig(iterations=15, seed=3)
        )
        b = explore(
            [get_workload("vecmax")], DseConfig(iterations=15, seed=3)
        )
        assert a.choice.objective == b.choice.objective
        assert a.sysadg.params == b.sysadg.params

    def test_history_is_monotone_in_time(self, dsp_result):
        hours = [h for _, h, _ in dsp_result.history]
        assert hours == sorted(hours)

    def test_modeled_time_is_hours_scale(self, dsp_result):
        assert 1.0 < dsp_result.modeled_hours < 100.0

    def test_stats_account_iterations(self, dsp_result):
        s = dsp_result.stats
        assert s.iterations == 40
        assert s.accepted + s.rejected_annealing <= s.iterations
        assert s.preserved_hits + s.repairs > 0

    def test_final_design_fills_fpga(self, dsp_result):
        util = system_resources(dsp_result.sysadg).utilization(XCVU9P)
        assert util["lut"] > 0.6  # generality padding consumes the device
        assert util["lut"] <= 1.0

    def test_schedule_preserving_off_still_works(self):
        res = explore(
            [get_workload("vecmax")],
            DseConfig(iterations=15, seed=5, schedule_preserving=False),
        )
        assert res.stats.preserving_transforms == 0
        assert res.choice.objective > 0

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError):
            explore([], DseConfig(iterations=1))

    def test_fast_path_skips_repair(self, monkeypatch):
        """A no-op transform must take revalidation, never repair (V-B)."""
        from repro.dse import explorer as mod
        from repro.compiler import generate_variants
        from repro.profile import ResultMemo

        workloads = [get_workload("vecmax"), get_workload("accumulate")]
        cfg = DseConfig(iterations=1, seed=3, preserving_prob=1.0)
        ex = mod.Explorer(workloads, cfg)
        ex.memo = ResultMemo()
        adg = ex._initial_adg()
        variant_sets = {w.name: generate_variants(w) for w in workloads}
        schedules = ex._schedule_all(variant_sets, adg)
        assert schedules is not None

        repair_calls = []
        monkeypatch.setattr(
            mod, "collapse_random_switch", lambda *a, **k: True
        )
        monkeypatch.setattr(
            mod,
            "repair_schedule",
            lambda *a, **k: repair_calls.append(1) or None,
        )
        hits0 = ex.stats.preserved_hits
        modeled0 = ex.modeled_seconds
        out = ex._propose(adg, schedules)
        assert out is not None
        assert repair_calls == []
        assert ex.stats.preserved_hits - hits0 == len(workloads)
        # Preserved hits are charged as revalidations, not repair fractions.
        assert ex.modeled_seconds - modeled0 == pytest.approx(
            cfg.time_model.revalidate * len(workloads)
        )
        candidate, repaired = out
        for schedule in repaired.values():
            assert schedule.is_valid_for(candidate)
            assert schedule.adg_version == candidate.version
            assert schedule.estimate is not None

    def test_repair_path_charges_repair(self, monkeypatch):
        """When revalidation fails, repair runs and is charged in full."""
        from repro.dse import explorer as mod
        from repro.compiler import generate_variants
        from repro.profile import ResultMemo

        workloads = [get_workload("vecmax")]
        cfg = DseConfig(iterations=1, seed=3, preserving_prob=1.0)
        ex = mod.Explorer(workloads, cfg)
        ex.memo = ResultMemo()
        adg = ex._initial_adg()
        variant_sets = {w.name: generate_variants(w) for w in workloads}
        schedules = ex._schedule_all(variant_sets, adg)
        assert schedules is not None

        monkeypatch.setattr(
            mod, "collapse_random_switch", lambda *a, **k: True
        )
        monkeypatch.setattr(mod, "revalidate_schedule", lambda *a, **k: None)
        repairs0 = ex.stats.repairs
        modeled0 = ex.modeled_seconds
        out = ex._propose(adg, schedules)
        assert out is not None
        assert ex.stats.repairs - repairs0 == 1
        assert ex.modeled_seconds - modeled0 == pytest.approx(
            cfg.time_model.repair
        )

    def test_upgrade_variants_survives_estimateless_schedule(self, monkeypatch):
        """A variant that schedules without an estimate must not crash the
        anneal; the incumbent (comparable) schedule is kept instead."""
        from repro.adg import SystemParams
        from repro.dse import explorer as mod
        from repro.compiler import generate_variants
        from repro.profile import ResultMemo
        from repro.scheduler import schedule_workload

        w = get_workload("vecmax")
        ex = mod.Explorer([w], DseConfig(iterations=1, seed=11))
        adg = ex._initial_adg()
        variant_sets = {w.name: generate_variants(w)}
        baseline = schedule_workload(variant_sets[w.name], adg, SystemParams())
        assert baseline is not None and baseline.estimate is not None

        broken = baseline.clone()
        broken.estimate = None
        ex.memo = ResultMemo()  # force the monkeypatched path to run
        monkeypatch.setattr(
            mod, "schedule_workload", lambda *a, **k: broken
        )
        out = ex._upgrade_variants(variant_sets, adg, {w.name: baseline})
        assert out[w.name] is baseline  # incumbent kept, no AttributeError
        # Without an incumbent the estimateless schedule is still adopted
        # (mapping validity matters more than comparability).
        out2 = ex._upgrade_variants(variant_sets, adg, {})
        assert out2[w.name].estimate is None

    def test_schedule_memo_reuses_results_across_runs(self):
        """Two explorer runs over one config share schedule results."""
        from repro.dse import explorer as mod
        from repro.engine.hashing import config_fingerprint
        from repro.profile import drop_memo

        cfg = DseConfig(iterations=6, seed=9)
        drop_memo(config_fingerprint(cfg))
        w = [get_workload("vecmax")]
        cold = mod.Explorer(w, cfg)
        a = cold.run()
        assert cold.memo.stats.schedule_misses > 0
        warm = mod.Explorer(w, cfg)
        b = warm.run()
        assert warm.memo is cold.memo
        assert warm.memo.stats.schedule_hits > 0
        # Memoization is wall-clock only: results stay bit-identical.
        assert a.choice.objective == b.choice.objective
        assert a.stats == b.stats
        assert a.modeled_seconds == b.modeled_seconds
        drop_memo(config_fingerprint(cfg))

    def test_simulation_agrees_with_model_direction(self, dsp_result):
        # The analytical model is an upper-bound-style estimate; simulated
        # IPC lands within a sane band of it for the chosen designs.
        from repro.sim import simulate_schedule

        for name, schedule in dsp_result.schedules.items():
            sim = simulate_schedule(schedule, dsp_result.sysadg)
            est = schedule.estimate
            # re-estimate with final system params
            assert sim.ipc > 0
            assert sim.ipc <= dsp_result.choice.estimates[name].ipc * 1.6, name
