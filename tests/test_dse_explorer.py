"""Tests for the unified DSE (system sweep + annealing explorer)."""

import pytest

from repro.adg import SystemParams, general_overlay
from repro.dse import DseConfig, explore, max_tiles_that_fit, system_dse
from repro.model.resource import (
    AnalyticEstimator,
    Resources,
    XCVU9P,
    system_resources,
    tile_resources,
    usable_budget,
)
from repro.workloads import get_suite, get_workload


@pytest.fixture(scope="module")
def dsp_result():
    return explore(
        get_suite("dsp"), DseConfig(iterations=40, seed=7), name="dsp-test"
    )


class TestSystemDse:
    def test_max_tiles_monotone_in_tile_cost(self):
        params = SystemParams()
        budget = usable_budget()
        small = Resources(lut=30_000, ff=30_000, bram=10, dsp=20)
        big = small * 4
        assert max_tiles_that_fit(small, params, budget) >= max_tiles_that_fit(
            big, params, budget
        )

    def test_zero_when_nothing_fits(self):
        params = SystemParams()
        monster = Resources(lut=2e6, ff=1e6, bram=100, dsp=100)
        assert max_tiles_that_fit(monster, params, usable_budget()) == 0

    def test_system_dse_returns_fitting_choice(self, dsp_result):
        # re-run the nested sweep on the final design
        choice = system_dse(
            dsp_result.sysadg.adg,
            list(dsp_result.schedules.values()),
        )
        assert choice is not None
        assert choice.system_total.fits_in(usable_budget())
        assert choice.objective > 0

    def test_general_overlay_system_fits(self):
        g = general_overlay()
        assert system_resources(g).fits_in(usable_budget())


class TestExplorer:
    def test_produces_valid_overlay(self, dsp_result):
        dsp_result.sysadg.validate()
        assert dsp_result.sysadg.params.num_tiles >= 1

    def test_all_workloads_scheduled(self, dsp_result):
        names = {w.name for w in get_suite("dsp")}
        assert set(dsp_result.schedules) == names
        for schedule in dsp_result.schedules.values():
            assert schedule.is_valid_for(dsp_result.sysadg.adg)
            assert schedule.estimate is not None

    def test_objective_improves_over_seed(self, dsp_result):
        first = dsp_result.history[0][2]
        last = dsp_result.choice.objective
        assert last >= first

    def test_deterministic_given_seed(self):
        a = explore(
            [get_workload("vecmax")], DseConfig(iterations=15, seed=3)
        )
        b = explore(
            [get_workload("vecmax")], DseConfig(iterations=15, seed=3)
        )
        assert a.choice.objective == b.choice.objective
        assert a.sysadg.params == b.sysadg.params

    def test_history_is_monotone_in_time(self, dsp_result):
        hours = [h for _, h, _ in dsp_result.history]
        assert hours == sorted(hours)

    def test_modeled_time_is_hours_scale(self, dsp_result):
        assert 1.0 < dsp_result.modeled_hours < 100.0

    def test_stats_account_iterations(self, dsp_result):
        s = dsp_result.stats
        assert s.iterations == 40
        assert s.accepted + s.rejected_annealing <= s.iterations
        assert s.preserved_hits + s.repairs > 0

    def test_final_design_fills_fpga(self, dsp_result):
        util = system_resources(dsp_result.sysadg).utilization(XCVU9P)
        assert util["lut"] > 0.6  # generality padding consumes the device
        assert util["lut"] <= 1.0

    def test_schedule_preserving_off_still_works(self):
        res = explore(
            [get_workload("vecmax")],
            DseConfig(iterations=15, seed=5, schedule_preserving=False),
        )
        assert res.stats.preserving_transforms == 0
        assert res.choice.objective > 0

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError):
            explore([], DseConfig(iterations=1))

    def test_simulation_agrees_with_model_direction(self, dsp_result):
        # The analytical model is an upper-bound-style estimate; simulated
        # IPC lands within a sane band of it for the chosen designs.
        from repro.sim import simulate_schedule

        for name, schedule in dsp_result.schedules.items():
            sim = simulate_schedule(schedule, dsp_result.sysadg)
            est = schedule.estimate
            # re-estimate with final system params
            assert sim.ipc > 0
            assert sim.ipc <= dsp_result.choice.estimates[name].ipc * 1.6, name
