"""Tests for DSE mutation operators and schedule-preserving transforms."""

import random

import pytest

from repro.adg import NodeKind, SystemParams, general_overlay, mesh_adg, caps_for_dtype
from repro.compiler import lower
from repro.dse import (
    RANDOM_TRANSFORMS,
    TransformFailed,
    apply_random_transform,
    collapse_random_switch,
    collapse_switch,
    preserve_edge_delays,
    prune_capabilities,
)
from repro.ir import F64, I64, Op
from repro.scheduler import schedule_mdfg
from repro.workloads import get_workload


@pytest.fixture()
def overlay():
    return general_overlay()


@pytest.fixture()
def scheduled(overlay):
    adg = overlay.adg.clone()
    mdfg = lower(get_workload("mm"), unroll=2)
    schedule = schedule_mdfg(mdfg, adg, overlay.params)
    assert schedule is not None
    return adg, schedule


class TestRandomTransforms:
    def test_apply_random_transform_mutates(self, overlay):
        adg = overlay.adg.clone()
        before = adg.version
        rng = random.Random(0)
        desc = apply_random_transform(adg, rng)
        assert isinstance(desc, str)
        assert adg.version > before

    def test_transforms_keep_adg_valid(self, overlay):
        rng = random.Random(1)
        adg = overlay.adg.clone()
        for _ in range(60):
            try:
                apply_random_transform(adg, rng)
            except TransformFailed:
                continue
            adg.validate()

    def test_every_operator_runs_or_declines(self, overlay):
        rng = random.Random(2)
        for op in RANDOM_TRANSFORMS:
            adg = overlay.adg.clone()
            try:
                op(adg, rng)
                adg.validate()
            except TransformFailed:
                pass  # legitimately inapplicable

    def test_remove_switch_keeps_routing_floor(self):
        # A design with switches == 0.8*PEs must refuse further removal.
        from repro.dse.transforms import remove_switch

        adg = mesh_adg(2, 2, caps=caps_for_dtype(I64, (Op.ADD,)))
        rng = random.Random(3)
        removed = 0
        for _ in range(50):
            try:
                remove_switch(adg, rng)
                removed += 1
            except TransformFailed:
                break
        assert len(adg.switches) >= max(2, int(0.8 * len(adg.pes)))


class TestCollapseSwitch:
    def test_collapse_preserves_routes(self, scheduled):
        adg, schedule = scheduled
        # Find a switch that routes traffic but is not an endpoint.
        candidates = [
            sw.node_id
            for sw in adg.switches
            if schedule.routes_through(sw.node_id)
        ]
        target = None
        for sw_id in candidates:
            keys = schedule.routes_through(sw_id)
            if all(
                schedule.routes[k][0] != sw_id and schedule.routes[k][-1] != sw_id
                for k in keys
            ):
                target = sw_id
                break
        if target is None:
            pytest.skip("no pass-through switch in this schedule")
        assert collapse_switch(adg, target, [schedule])
        assert not adg.has_node(target)
        # Patched routes remain valid links on the mutated ADG.
        assert schedule.is_valid_for(adg)

    def test_collapse_refuses_endpoint(self, scheduled):
        adg, schedule = scheduled
        pe_id = next(
            hw
            for dfg, hw in schedule.placement.items()
            if adg.has_node(hw) and adg.node(hw).kind is NodeKind.PE
        )
        assert not collapse_switch(adg, pe_id, [schedule])

    def test_collapse_unused_switch_is_free(self, scheduled):
        adg, schedule = scheduled
        unused = [
            sw.node_id
            for sw in adg.switches
            if not schedule.routes_through(sw.node_id)
        ]
        if not unused:
            pytest.skip("every switch in use")
        assert collapse_switch(adg, unused[0], [schedule])
        assert schedule.is_valid_for(adg)

    def test_collapse_random_respects_floor(self, overlay):
        from repro.ir import I16

        adg = mesh_adg(2, 2, caps=caps_for_dtype(I16, (Op.ADD, Op.MAX)))
        # switches (9) > 0.8 * PEs (4): allowed; after enough collapses the
        # helper starts returning None.
        mdfg = lower(get_workload("vecmax"), unroll=1)
        schedule = schedule_mdfg(mdfg, adg)
        assert schedule is not None
        rng = random.Random(4)
        for _ in range(30):
            if collapse_random_switch(adg, [schedule], rng) is None:
                break
        assert len(adg.switches) >= max(2, int(0.8 * len(adg.pes)))


class TestPruning:
    def test_prune_capabilities_drops_unused(self, scheduled):
        adg, schedule = scheduled
        pe_id = schedule.placement[
            next(n.node_id for n in schedule.mdfg.compute_nodes)
        ]
        before = len(adg.node(pe_id).caps)
        changes = prune_capabilities(adg, [schedule])
        after = len(adg.node(pe_id).caps)
        assert changes > 0
        assert after < before
        # The schedule still semantically fits the pruned hardware.
        from repro.scheduler import semantic_ok

        assert semantic_ok(schedule.mdfg, adg, schedule)

    def test_prune_keeps_dma(self, scheduled):
        adg, schedule = scheduled
        prune_capabilities(adg, [schedule])
        assert adg.dmas, "DMA must survive pruning (fallback path)"

    def test_preserve_edge_delays_grows_fifos(self, scheduled):
        adg, schedule = scheduled
        # Artificially shrink every PE's delay FIFO, then restore via the
        # transform.
        for pe in adg.pes:
            adg.replace_node(pe.node_id, max_delay_fifo=0)
        adjusted = preserve_edge_delays(adg, [schedule])
        needed = schedule.delay_fifo_needed
        if any(v > 0 for v in needed.values()):
            assert adjusted > 0
            for pe_id, depth in needed.items():
                assert adg.node(pe_id).max_delay_fifo >= depth
