"""Tests for the cycle-level simulator (components + whole-region runs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adg import general_overlay
from repro.compiler import generate_variants, lower
from repro.scheduler import schedule_mdfg, schedule_workload
from repro.sim import (
    BandwidthPool,
    EngineSim,
    FabricConfig,
    FabricSim,
    PortFifo,
    SimulationError,
    StreamState,
    critical_path_depth,
    simulate_schedule,
)
from repro.workloads import all_workloads, get_workload


@pytest.fixture(scope="module")
def overlay():
    return general_overlay()


def scheduled(name, overlay, **kwargs):
    mdfg = lower(get_workload(name), **kwargs)
    s = schedule_mdfg(mdfg, overlay.adg, overlay.params)
    assert s is not None
    return s


class TestPortFifo:
    def test_push_pop(self):
        f = PortFifo("p", capacity=8)
        assert f.push(5) == 5
        assert f.push(5) == 3  # clipped at capacity
        assert f.pop(6) == 6
        assert f.level == pytest.approx(2)

    @given(st.lists(st.floats(0, 10), min_size=1, max_size=50))
    def test_level_never_escapes_bounds(self, amounts):
        f = PortFifo("p", capacity=16)
        for i, a in enumerate(amounts):
            if i % 2:
                f.pop(a)
            else:
                f.push(a)
            assert 0 <= f.level <= 16 + 1e-9


class TestBandwidthPool:
    def test_take_bounded_by_refill(self):
        pool = BandwidthPool("l2", 32)
        pool.refill()
        assert pool.take(20) == 20
        assert pool.take(20) == 12
        assert pool.take(5) == 0
        pool.refill()
        assert pool.take(5) == 5
        assert pool.consumed_total == pytest.approx(37)


class TestEngineSim:
    def _engine(self, n_streams, bw=32, onehot=True):
        engine = EngineSim("e", bw, onehot_bypass=onehot)
        ports = []
        for i in range(n_streams):
            port = PortFifo(f"p{i}", capacity=1e9)
            ports.append(port)
            engine.add_stream(
                StreamState(f"s{i}", 1e9, 4.0, port, True, 8.0)
            )
        return engine, ports

    def test_bandwidth_shared_across_streams(self):
        engine, ports = self._engine(2, bw=32)
        for t in range(100):
            engine.step(t)
        total = sum(p.level for p in ports)
        assert total == pytest.approx(100 * 32 / 8, rel=0.05)

    def test_stream_cap_respected(self):
        engine, ports = self._engine(1, bw=800)
        for t in range(50):
            engine.step(t)
        # capped at 4 elements/cycle despite huge engine bandwidth
        assert ports[0].level <= 50 * 4 + 1e-6

    def test_dispatch_latency_respected(self):
        port = PortFifo("p", 1e9)
        engine = EngineSim("e", 32)
        engine.add_stream(
            StreamState("s", 1e9, 4.0, port, True, 8.0, dispatched_at=10)
        )
        for t in range(10):
            engine.step(t)
        assert port.level == 0
        engine.step(10)
        assert port.level > 0

    def test_write_stream_drains_port(self):
        port = PortFifo("p", 64, level=64)
        engine = EngineSim("e", 16)
        engine.add_stream(StreamState("s", 64, 8.0, port, False, 8.0))
        for t in range(100):
            engine.step(t)
        assert port.level == pytest.approx(0, abs=1e-6)

    def test_pool_throttles(self):
        pool = BandwidthPool("dram", 8)
        port = PortFifo("p", 1e9)
        engine = EngineSim("e", 64, pools=(pool, pool))
        engine.add_stream(
            StreamState("s", 1e9, 8.0, port, True, 8.0, l2_fraction=1.0)
        )
        for t in range(100):
            pool.refill()
            engine.step(t)
        # 8 bytes/cycle = 1 element/cycle despite 64 B/cyc engine bandwidth
        assert port.level == pytest.approx(100, rel=0.05)


class TestFabric:
    def _fabric(self, depth=4, eps=2.0, out_capacity=64.0):
        in_port = PortFifo("in", capacity=1e9, level=1e9)
        out_port = PortFifo("out", capacity=out_capacity)
        fabric = FabricSim(
            FabricConfig(
                inputs=[(in_port, eps)],
                outputs=[(out_port, eps)],
                total_firings=100.0,
                pipeline_depth=depth,
                insts_per_firing=3.0,
            )
        )
        return fabric, in_port, out_port

    def test_ii_one_when_unblocked(self):
        fabric, _, out = self._fabric(out_capacity=1e9)
        for t in range(104):
            fabric.step(t)
        assert fabric.firings == pytest.approx(100.0)

    def test_output_backpressure_stalls(self):
        fabric, _, out = self._fabric(out_capacity=4.0)
        for t in range(50):
            fabric.step(t)  # out port never drained
        assert fabric.firings < 10

    def test_pipeline_latency_delays_results(self):
        fabric, _, out = self._fabric(depth=10, out_capacity=1e9)
        for t in range(5):
            fabric.step(t)
        assert out.level == 0  # results still in flight
        for t in range(5, 15):
            fabric.step(t)
        assert out.level > 0

    def test_starved_input_stalls(self):
        in_port = PortFifo("in", capacity=8, level=0)
        out_port = PortFifo("out", capacity=1e9)
        fabric = FabricSim(
            FabricConfig([(in_port, 2.0)], [(out_port, 1.0)], 10, 2, 1.0)
        )
        fabric.step(0)
        assert fabric.firings == 0
        assert fabric.stall_cycles == 1


class TestWholeRegion:
    def test_all_workloads_simulate(self, overlay):
        for w in all_workloads():
            schedule = schedule_workload(
                generate_variants(w), overlay.adg, overlay.params
            )
            result = simulate_schedule(schedule, overlay)
            assert result.cycles > 0, w.name
            assert result.ipc > 0, w.name

    def test_sim_tracks_model_for_streaming_kernels(self, overlay):
        # Long, regular kernels reach the model's steady-state rate.
        for name in ("vecmax", "accumulate", "convert-bit", "bgr2grey"):
            schedule = schedule_workload(
                generate_variants(get_workload(name)), overlay.adg, overlay.params
            )
            sim = simulate_schedule(schedule, overlay)
            assert sim.ipc == pytest.approx(
                schedule.estimate.ipc, rel=0.25
            ), name

    def test_onehot_bypass_helps_single_stream_kernel(self, overlay):
        schedule = scheduled("accumulate", overlay, unroll=16, use_recurrence=False)
        fast = simulate_schedule(schedule, overlay, onehot_bypass=True)
        slow = simulate_schedule(schedule, overlay, onehot_bypass=False)
        assert slow.cycles >= fast.cycles

    def test_more_dram_channels_speed_streaming(self, overlay):
        schedule = scheduled("vecmax", overlay, unroll=16)
        # Provision L2/NoC generously so DRAM is the binding constraint.
        roomy = overlay.with_params(l2_banks=16, noc_bytes_per_cycle=64)
        one = simulate_schedule(schedule, roomy)
        four = simulate_schedule(
            schedule, roomy.with_params(dram_channels=4)
        )
        assert four.cycles < one.cycles

    def test_exact_matches_extrapolated_direction(self, overlay):
        schedule = scheduled("mm", overlay, unroll=2)
        exact = simulate_schedule(schedule, overlay, exact=True)
        assert not exact.extrapolated
        quick = simulate_schedule(
            schedule, overlay, max_exact_cycles=500
        )
        if quick.extrapolated:
            assert quick.cycles == pytest.approx(exact.cycles, rel=0.25)

    def test_small_cap_clamps_measure_window(self, overlay):
        # max_exact_cycles below the default 4k measurement window used to
        # extrapolate from a window that never opened (rate measured from
        # cycle 0, warm-up included).  The clamp keeps the estimate close
        # to the exact run.
        schedule = scheduled("mm", overlay, unroll=2)
        exact = simulate_schedule(schedule, overlay, exact=True)
        quick = simulate_schedule(schedule, overlay, max_exact_cycles=600)
        assert quick.extrapolated
        assert quick.stepped_cycles <= 600
        assert quick.cycles == pytest.approx(exact.cycles, rel=0.25)

    def test_tiny_cap_raises_cleanly(self, overlay):
        schedule = scheduled("vecmax", overlay, unroll=16)
        for cap in (0, 1):
            with pytest.raises(SimulationError, match="max_exact_cycles"):
                simulate_schedule(schedule, overlay, max_exact_cycles=cap)

    def test_stepped_cycles_reported(self, overlay):
        schedule = scheduled("vecmax", overlay, unroll=16)
        exact = simulate_schedule(schedule, overlay, exact=True)
        assert not exact.extrapolated
        # For an exact run, total cycles = stepped + config reload.
        assert exact.cycles == pytest.approx(
            exact.stepped_cycles + schedule.mdfg.config_words
        )

    def test_no_progress_deadlock_detected(self, overlay, monkeypatch):
        import repro.sim.simulator as simmod

        schedule = scheduled("vecmax", overlay, unroll=16)
        monkeypatch.setattr(simmod.FabricSim, "step", lambda self, t: None)
        # Patching the Python-level step only affects the object core; the
        # vector core's deadlock parity is covered in test_sim_vector.py.
        with pytest.raises(SimulationError, match="no progress"):
            simulate_schedule(schedule, overlay, exact=True, core="object")

    def test_critical_path_depth_positive(self, overlay):
        schedule = scheduled("bgr2grey", overlay, unroll=4)
        depth = critical_path_depth(schedule.mdfg, schedule)
        assert depth >= 4

    def test_config_reload_adds_cycles(self, overlay):
        schedule = scheduled("vecmax", overlay, unroll=16)
        sim = simulate_schedule(schedule, overlay)
        assert sim.cycles > schedule.mdfg.config_words
