"""Tests for repro.profile: span tracer, result memo, and the bench CLI."""

import json
import threading

import pytest

from repro.adg import general_overlay
from repro.compiler import generate_variants, lower
from repro.profile import (
    NULL_SPAN,
    ResultMemo,
    Tracer,
    add_counter,
    clear_memos,
    current,
    drop_memo,
    install,
    memo_for_config,
    simulate_memoized,
    span,
    tracing,
    uninstall,
)
from repro.profile.bench import (
    BenchBudget,
    compare_reports,
    measure_overhead,
    run_bench,
)
from repro.scheduler import schedule_mdfg
from repro.workloads import get_workload


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Tests must not leave a tracer installed for the rest of the suite."""
    yield
    uninstall()


class TestTracer:
    def test_span_records_nesting_and_attrs(self):
        tracer = install(Tracer())
        with span("outer", workload="fir"):
            with span("inner"):
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["outer", "inner"]  # start order
        by_name = {s.name: s for s in spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["outer"].attrs == {"workload": "fir"}
        assert by_name["inner"].start >= by_name["outer"].start
        assert by_name["inner"].end <= by_name["outer"].end

    def test_no_tracer_installed_is_null_span(self):
        uninstall()
        assert span("anything") is NULL_SPAN
        add_counter("anything")  # must not raise

    def test_disabled_tracer_records_nothing(self):
        tracer = install(Tracer(enabled=False))
        assert span("x") is NULL_SPAN
        with span("x"):
            pass
        add_counter("c")
        assert tracer.spans() == []
        assert tracer.counters() == {}
        tracer.enable()
        with span("x"):
            pass
        assert len(tracer.spans()) == 1
        tracer.disable()
        assert span("x") is NULL_SPAN

    def test_counters_accumulate(self):
        tracer = install(Tracer())
        add_counter("hits")
        add_counter("hits")
        add_counter("cycles", 500)
        assert tracer.counters() == {"hits": 2.0, "cycles": 500.0}

    def test_exception_inside_span_still_recorded(self):
        tracer = install(Tracer())
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans()] == ["doomed"]

    def test_summarize_aggregates(self):
        tracer = install(Tracer())
        for _ in range(5):
            with span("work"):
                pass
        stats = tracer.summarize()["work"]
        assert stats.count == 5
        assert stats.min_s <= stats.mean_s <= stats.max_s
        assert stats.total_s == pytest.approx(stats.mean_s * 5)
        d = stats.as_dict()
        assert set(d) == {"count", "total_s", "mean_s", "min_s", "max_s"}

    def test_chrome_trace_document(self, tmp_path):
        tracer = install(Tracer())
        with span("scheduler.repair", workload="mm"):
            pass
        doc = tracer.chrome_trace()
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["cat"] == "scheduler"
        assert event["args"] == {"workload": "mm"}
        assert event["ts"] >= 0 and event["dur"] >= 0
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        assert json.loads(path.read_text())["traceEvents"]

    def test_flush_to_metrics(self, tmp_path):
        from repro.engine import MetricsLogger

        tracer = install(Tracer())
        with span("sim.region"):
            pass
        add_counter("sim.regions")
        path = tmp_path / "metrics.jsonl"
        tracer.flush_to_metrics(MetricsLogger(str(path)))
        (line,) = path.read_text().splitlines()
        event = json.loads(line)
        assert event["event"] == "trace_summary"
        assert "sim.region" in event["spans"]
        assert event["counters"] == {"sim.regions": 1.0}

    def test_thread_safety(self):
        tracer = install(Tracer())
        # Hold all threads alive together: thread idents are reused after
        # exit, so without the barrier distinct tids are not guaranteed.
        barrier = threading.Barrier(4)

        def work():
            for _ in range(100):
                with span("threaded"):
                    pass
                add_counter("n")
            barrier.wait()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans()) == 400
        assert tracer.counters()["n"] == 400.0
        assert len({s.tid for s in tracer.spans()}) == 4

    def test_tracing_context_restores_previous(self):
        outer = install(Tracer())
        inner = Tracer()
        with tracing(inner) as t:
            assert t is inner
            assert current() is inner
        assert current() is outer
        uninstall()
        with tracing():
            assert current() is not None
        assert current() is None


class _Cloneable:
    def __init__(self, value):
        self.value = value

    def clone(self):
        return _Cloneable(self.value)


class TestResultMemo:
    def test_schedule_hits_return_clones(self):
        memo = ResultMemo()
        original = _Cloneable(42)
        memo.store_schedule("fp", "fir", original)
        hit, out = memo.lookup_schedule("fp", "fir")
        assert hit and out.value == 42
        assert out is not original  # stored and returned copies are isolated
        out.value = -1
        _, again = memo.lookup_schedule("fp", "fir")
        assert again.value == 42

    def test_unschedulable_none_is_memoized(self):
        memo = ResultMemo()
        hit, _ = memo.lookup_schedule("fp", "mm")
        assert not hit
        memo.store_schedule("fp", "mm", None)
        hit, out = memo.lookup_schedule("fp", "mm")
        assert hit and out is None
        assert memo.stats.schedule_hits == 1
        assert memo.stats.schedule_misses == 1
        assert memo.stats.schedule_hit_rate == 0.5

    def test_registry_scopes_by_config(self):
        clear_memos()
        a = memo_for_config("cfg-a")
        assert memo_for_config("cfg-a") is a
        assert memo_for_config("cfg-b") is not a
        drop_memo("cfg-a")
        assert memo_for_config("cfg-a") is not a
        clear_memos()

    def test_simulate_memoized_hit_matches_and_is_isolated(self):
        overlay = general_overlay()
        mdfg = lower(get_workload("mm"), unroll=2)
        schedule = schedule_mdfg(mdfg, overlay.adg, overlay.params)
        assert schedule is not None
        memo = ResultMemo()
        first = simulate_memoized(
            schedule, overlay, memo, max_exact_cycles=600
        )
        second = simulate_memoized(
            schedule, overlay, memo, max_exact_cycles=600
        )
        assert memo.stats.sim_misses == 1
        assert memo.stats.sim_hits == 1
        assert second.cycles == first.cycles
        # Mutating a hit's dict fields must not corrupt the cache.
        second.engine_busy.clear()
        third = simulate_memoized(
            schedule, overlay, memo, max_exact_cycles=600
        )
        assert third.engine_busy == first.engine_busy
        # Different sim options are different cache keys.
        simulate_memoized(schedule, overlay, memo, max_exact_cycles=700)
        assert memo.stats.sim_misses == 2


class TestCompareReports:
    BASE = {"kind": "dse", "candidates_per_second": 100.0,
            "fast_path_speedup": 5.0, "memo_speedup": 2.0}

    def test_improvement_and_unchanged(self):
        cur = dict(self.BASE, candidates_per_second=200.0)
        cmp = compare_reports(cur, self.BASE, tolerance=0.25)
        assert cmp["ok"]
        statuses = {r["metric"]: r["status"] for r in cmp["rows"]}
        assert statuses["candidates_per_second"] == "improvement"
        assert statuses["fast_path_speedup"] == "unchanged"

    def test_regression_fails(self):
        cur = dict(self.BASE, memo_speedup=1.0)
        cmp = compare_reports(cur, self.BASE, tolerance=0.25)
        assert not cmp["ok"]
        assert cmp["regressions"] == ["memo_speedup"]

    def test_missing_metric_never_fails(self):
        cur = dict(self.BASE)
        del cur["fast_path_speedup"]
        baseline = dict(self.BASE, memo_speedup=0.0)
        cmp = compare_reports(cur, baseline, tolerance=0.25)
        assert cmp["ok"]
        statuses = {r["metric"]: r["status"] for r in cmp["rows"]}
        assert statuses["fast_path_speedup"] == "missing"
        assert statuses["memo_speedup"] == "missing"

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compare_reports({"kind": "sim"}, self.BASE)
        with pytest.raises(ValueError):
            compare_reports({"kind": "dse"}, {"kind": "nonsense"})


TINY = BenchBudget(
    name="tiny",
    dse_workloads=("vecmax",),
    dse_iterations=4,
    sim_workloads=("vecmax",),
    overhead_calls=2_000,
)


class TestBench:
    def test_run_bench_writes_reports(self, tmp_path):
        report = run_bench(
            TINY,
            seed=5,
            out_dir=str(tmp_path),
            trace_path=str(tmp_path / "trace.json"),
        )
        dse = json.loads((tmp_path / "BENCH_dse.json").read_text())
        sim = json.loads((tmp_path / "BENCH_sim.json").read_text())
        assert dse["schema"] == 1 and dse["kind"] == "dse"
        assert sim["schema"] == 1 and sim["kind"] == "sim"
        assert dse["seed"] == 5
        assert dse["iterations"] == TINY.dse_iterations
        assert dse["wall_seconds"] > 0
        assert 0.0 <= dse["preserved_hit_rate"] <= 1.0
        assert dse["candidates_per_second"] > 0
        assert "scheduler.revalidate" in dse["spans"] or dse["repairs"] > 0
        assert dse["overhead"]["ratio"] > 0
        assert sim["stepped_cycles"] > 0
        assert sim["cycles_per_second"] > 0
        # The vector core made a cold simulation nearly as cheap as a memo
        # lookup at tiny budgets, so "hit beats miss" is no longer a law;
        # the memo path just has to work and report a sane ratio.
        assert sim["memo_speedup"] > 0
        assert report.dse == dse and report.sim == sim
        trace = json.loads((tmp_path / "trace.json").read_text())
        assert trace["traceEvents"]
        assert current() is None  # bench must not leak its tracer

    def test_warm_rerun_hits_schedule_memo(self, tmp_path):
        drop_memo_all = clear_memos
        drop_memo_all()
        report = run_bench(TINY, seed=6, out_dir=str(tmp_path))
        memo = report.dse["memo"]
        assert memo["schedule_hits"] > 0  # warm rerun reused cold schedules
        assert memo["schedule_hit_rate"] > 0

    def test_measure_overhead_restores_tracer(self):
        mine = install(Tracer())
        out = measure_overhead(500, repeats=2)
        assert current() is mine
        assert out["no_tracer_s"] > 0 and out["disabled_tracer_s"] > 0
        assert out["ratio"] > 0
        uninstall()
        measure_overhead(100, repeats=1)
        assert current() is None
