# Package marker for promoted regression cases.
