"""Concurrent-access tests for the artifact store (ISSUE 4 satellite).

Two writer/reader processes hammer the *same* key; because every write
(pickle and meta JSON alike) goes through temp-file + ``os.replace``, a
reader must only ever observe a complete old value or a complete new
value — never a torn file — and ``discard`` races must be tolerated.
"""

import json
import os
import pickle
import subprocess
import sys
import threading

import pytest

from repro.engine import ArtifactStore

KEY = "ab" * 32

_WORKER = r"""
import json, pickle, sys, time
from repro.engine import ArtifactStore

root, role, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = ArtifactStore(root)
key = "ab" * 32
payload = {"blob": "x" * 4096}
bad = 0
for i in range(rounds):
    if role == "writer":
        store.put(key, {**payload, "i": i}, meta={"i": i, "pad": "y" * 2048})
    elif role == "reader":
        value = store.get(key, default=None)
        if value is not None and value.get("blob") != "x" * 4096:
            bad += 1
        meta = store.meta(key)
        if meta is not None and meta.get("pad") != "y" * 2048:
            bad += 1
    else:  # discarder
        store.discard(key)
        time.sleep(0.001)
print(json.dumps({
    "role": role, "bad": bad, "corrupt": store.stats.corrupt,
    "hits": store.stats.hits, "misses": store.stats.misses,
}))
"""


def _spawn(tmp_path, role, rounds):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.Popen(
        [sys.executable, "-c", _WORKER, str(tmp_path), role, str(rounds)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def _finish(proc):
    out, err = proc.communicate(timeout=120)
    assert proc.returncode == 0, err
    return json.loads(out.strip().splitlines()[-1])


class TestConcurrentAccess:
    def test_two_processes_put_and_get_same_key(self, tmp_path):
        writer = _spawn(tmp_path, "writer", 300)
        reader = _spawn(tmp_path, "reader", 300)
        w, r = _finish(writer), _finish(reader)
        assert w["corrupt"] == 0
        # The reader never saw a torn pickle or a torn meta sidecar, and
        # never booked a spurious corrupt-entry stat.
        assert r["bad"] == 0
        assert r["corrupt"] == 0
        assert r["hits"] + r["misses"] == 300  # meta() reads book no stats

    def test_writer_vs_writer_last_value_is_complete(self, tmp_path):
        a = _spawn(tmp_path, "writer", 200)
        b = _spawn(tmp_path, "writer", 200)
        _finish(a), _finish(b)
        store = ArtifactStore(tmp_path)
        value = store.get(KEY)
        assert value is not None and value["blob"] == "x" * 4096
        assert store.stats.corrupt == 0
        meta = store.meta(KEY)
        assert meta is not None and meta["pad"] == "y" * 2048

    def test_discard_races_are_tolerated(self, tmp_path):
        writer = _spawn(tmp_path, "writer", 200)
        discarder = _spawn(tmp_path, "discarder", 200)
        reader = _spawn(tmp_path, "reader", 200)
        w, d, r = _finish(writer), _finish(discarder), _finish(reader)
        assert w["corrupt"] == 0 and d["corrupt"] == 0
        assert r["bad"] == 0 and r["corrupt"] == 0

    def test_threaded_put_get_same_store_instance(self, tmp_path):
        """In-process version: one store object shared across threads."""
        store = ArtifactStore(tmp_path)
        errors = []

        def writer():
            for i in range(200):
                store.put(KEY, {"i": i, "blob": "x" * 1024}, meta={"i": i})

        def reader():
            for _ in range(200):
                value = store.get(KEY)
                if value is not None and value.get("blob") != "x" * 1024:
                    errors.append(value)
                store.meta(KEY)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert store.stats.corrupt == 0


class TestMetaAtomicity:
    def test_meta_written_atomically(self, tmp_path, monkeypatch):
        """A crash between temp-write and replace leaves no torn meta."""
        store = ArtifactStore(tmp_path)
        real_replace = os.replace
        calls = []

        def failing_replace(src, dst):
            calls.append(dst)
            if str(dst).endswith(".json"):
                raise RuntimeError("injected crash before meta replace")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(RuntimeError):
            store.put(KEY, {"v": 1}, meta={"m": 1})
        monkeypatch.undo()
        # The pickle landed; the meta never appeared even partially.
        assert store.get(KEY) == {"v": 1}
        assert store.meta(KEY) is None
        leftovers = list(tmp_path.glob("**/*.tmp"))
        assert leftovers == []

    def test_torn_meta_is_absent_not_corrupt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY, {"v": 1}, meta={"m": 1})
        store._meta_path(KEY).write_text('{"m": 1')  # torn JSON
        before = dict(store.stats.as_dict())
        assert store.meta(KEY) is None
        # No hits/misses/corrupt accounting moved, artifact untouched.
        assert store.stats.as_dict() == before
        assert store.get(KEY) == {"v": 1}

    def test_meta_survives_pickle_rewrite(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY, {"v": 1}, meta={"gen": 1})
        store.put(KEY, {"v": 2}, meta={"gen": 2})
        assert store.get(KEY) == {"v": 2}
        assert store.meta(KEY) == {"gen": 2}
