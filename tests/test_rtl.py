"""Tests for the RTL backend and floorplanner."""

import pytest

from repro.adg import general_overlay, mesh_adg, caps_for_dtype
from repro.ir import I64, Op
from repro.rtl import (
    NUM_SLRS,
    FloorplanError,
    emit_system,
    emit_tile,
    estimated_frequency,
    floorplan,
    rtl_stats,
)


@pytest.fixture(scope="module")
def overlay():
    return general_overlay()


class TestVerilogEmission:
    def test_module_balance(self, overlay):
        rtl = emit_system(overlay)
        stats = rtl_stats(rtl)
        assert stats["modules"] == stats["endmodules"]
        assert stats["modules"] > 50

    def test_every_node_has_a_module(self, overlay):
        rtl = emit_tile(overlay.adg)
        for node in overlay.adg.nodes():
            assert f"module {node.kind.value}_{node.node_id} " in rtl or (
                f"module {node.kind.value}_{node.node_id}(" in rtl
            ), node.name

    def test_links_become_wires(self, overlay):
        rtl = emit_tile(overlay.adg)
        for src, dst in overlay.adg.links()[:20]:
            assert f"link_{src}_{dst}" in rtl

    def test_deterministic(self, overlay):
        assert emit_system(overlay) == emit_system(overlay)

    def test_system_header_carries_params(self, overlay):
        rtl = emit_system(overlay)
        assert "tiles=4" in rtl
        assert "l2=512KiB" in rtl
        assert "XCVU9P" in rtl

    def test_small_mesh_emits(self):
        adg = mesh_adg(1, 1, caps=caps_for_dtype(I64, (Op.ADD,)))
        rtl = emit_tile(adg)
        assert rtl_stats(rtl)["modules"] > 5


class TestFloorplan:
    def test_all_tiles_placed(self, overlay):
        plan = floorplan(overlay)
        assert len(plan.placements) == overlay.params.num_tiles

    def test_slr_loads_accounted(self, overlay):
        plan = floorplan(overlay)
        total_load = sum(plan.slr_utilization.values())
        # All tile area lands somewhere on the three dies.
        assert total_load > 0
        assert all(0 <= u <= 1.01 for u in plan.slr_utilization.values())

    def test_bottom_die_fills_first(self, overlay):
        plan = floorplan(overlay)
        assert plan.slr_utilization[0] >= plan.slr_utilization[NUM_SLRS - 1]

    def test_crossings_counted(self, overlay):
        plan = floorplan(overlay)
        assert plan.die_crossings >= 0

    def test_frequency_near_paper(self, overlay):
        plan = floorplan(overlay)
        freq = estimated_frequency(plan)
        assert 75 < freq < 115  # paper: 92.87 MHz

    def test_single_tile_is_fast(self):
        from repro.adg import SysADG, SystemParams

        adg = mesh_adg(1, 1, caps=caps_for_dtype(I64, (Op.ADD,)))
        tiny = SysADG(adg=adg, params=SystemParams(num_tiles=1), name="tiny")
        plan = floorplan(tiny)
        assert estimated_frequency(plan) > estimated_frequency(
            floorplan(general_overlay())
        )

    def test_ascii_art_renders(self, overlay):
        art = floorplan(overlay).ascii_art()
        assert "SLR0" in art and "DRAM controller" in art


class TestRtlStatsWireCount:
    """Regression: port declarations must not inflate the wire count."""

    def test_counts_only_wire_declarations(self, overlay):
        rtl = emit_tile(overlay.adg)
        declared = sum(
            1 for line in rtl.splitlines()
            if line.lstrip().startswith("wire")
        )
        stats = rtl_stats(rtl)
        assert stats["wires"] == declared
        # Every module has "input  wire"/"output wire" port lines; the old
        # substring count swept those in too.
        port_wires = sum(
            1 for line in rtl.splitlines()
            if line.lstrip().startswith(("input", "output"))
        )
        assert port_wires > 0
        assert stats["wires"] < declared + port_wires

    def test_small_mesh_wire_total(self):
        adg = mesh_adg(1, 1, caps=caps_for_dtype(I64, (Op.ADD,)))
        rtl = emit_tile(adg)
        # One dispatch_bus wire plus one wire per ADG link, exactly.
        assert rtl_stats(rtl)["wires"] == len(adg.links()) + 1


class TestFloorplanInfeasible:
    """Regression: oversize overlays are flagged, not silently clamped."""

    @pytest.fixture(scope="class")
    def huge(self):
        return general_overlay(num_tiles=64)

    def test_feasible_flag(self, overlay, huge):
        assert floorplan(overlay).feasible is True
        assert floorplan(huge).feasible is False

    def test_strict_raises(self, huge):
        with pytest.raises(FloorplanError, match="XCVU9P"):
            floorplan(huge, strict=True)

    def test_overflow_counts_against_top_die(self, huge):
        plan = floorplan(huge)
        # Demand beyond the device lands on SLR2 rather than vanishing.
        assert plan.slr_utilization[NUM_SLRS - 1] > 1.0

    def test_positions_stay_normalized(self, overlay, huge):
        for sysadg in (overlay, huge):
            for p in floorplan(sysadg).placements:
                assert 0.0 <= p.x < 1.0
                assert 0.0 <= p.y < NUM_SLRS

    def test_infeasible_marked_in_ascii_art(self, huge):
        assert "INFEASIBLE" in floorplan(huge).ascii_art()
