"""Tests for affine index expressions and value expression trees."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import (
    Affine,
    BinOp,
    Const,
    IndirectIndex,
    Load,
    LoopVar,
    Op,
    UnOp,
    as_affine,
    as_expr,
    count_ops,
    loads_in,
    sqrt,
    vmax,
    walk,
)


class TestAffine:
    def test_loopvar_arithmetic_builds_affine(self):
        i, j = LoopVar("i"), LoopVar("j")
        expr = i * 32 + j + 1
        assert isinstance(expr, Affine)
        assert expr.coefficient("i") == 32
        assert expr.coefficient("j") == 1
        assert expr.const == 1

    def test_zero_coefficients_dropped(self):
        expr = Affine.of({"i": 0, "j": 2})
        assert expr.variables() == ("j",)

    def test_addition_merges_coefficients(self):
        i = LoopVar("i")
        expr = as_affine(i) + (i * 3)
        assert expr.coefficient("i") == 4

    def test_subtraction(self):
        i, j = LoopVar("i"), LoopVar("j")
        expr = (i + 5) - j - 2
        assert expr.coefficient("i") == 1
        assert expr.coefficient("j") == -1
        assert expr.const == 3

    def test_scalar_multiplication_distributes(self):
        i = LoopVar("i")
        expr = (i + 3) * 4
        assert expr.coefficient("i") == 4
        assert expr.const == 12

    def test_substitute_folds_constant(self):
        i, j = LoopVar("i"), LoopVar("j")
        expr = (i * 8 + j).substitute("i", 2)
        assert not expr.involves("i")
        assert expr.const == 16

    def test_evaluate(self):
        expr = Affine.of({"i": 4, "j": 1}, 7)
        assert expr.evaluate({"i": 2, "j": 3}) == 18

    def test_involves(self):
        expr = Affine.of({"i": 1})
        assert expr.involves("i")
        assert not expr.involves("j")

    def test_hashable_and_equal(self):
        a = Affine.of({"i": 2}, 1)
        b = Affine.of({"i": 2}, 1)
        assert a == b
        assert hash(a) == hash(b)

    @given(
        st.dictionaries(
            st.sampled_from(["i", "j", "k"]),
            st.integers(-50, 50),
            max_size=3,
        ),
        st.integers(-100, 100),
        st.dictionaries(
            st.sampled_from(["i", "j", "k"]),
            st.integers(-50, 50),
            max_size=3,
        ),
        st.integers(-100, 100),
    )
    def test_addition_is_pointwise(self, c1, k1, c2, k2):
        env = {"i": 3, "j": 5, "k": 7}
        a = Affine.of(c1, k1)
        b = Affine.of(c2, k2)
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(
        st.dictionaries(
            st.sampled_from(["i", "j"]), st.integers(-20, 20), max_size=2
        ),
        st.integers(-20, 20),
        st.integers(-10, 10),
    )
    def test_scalar_mul_matches_evaluation(self, coeffs, const, factor):
        env = {"i": 2, "j": 9}
        a = Affine.of(coeffs, const)
        assert (a * factor).evaluate(env) == factor * a.evaluate(env)


class TestIndirect:
    def test_indirect_from_nested_load(self):
        from repro.ir import F64, WorkloadBuilder

        wb = WorkloadBuilder("t", suite="s", dtype=F64)
        x = wb.array("x", 16)
        col = wb.array("col", 16)
        i = wb.loop("i", 16)
        gathered = x[col[i]]
        assert isinstance(gathered.index, IndirectIndex)
        assert gathered.index.index_array == "col"

    def test_indirect_involves(self):
        idx = IndirectIndex("col", Affine.of({"i": 1}))
        assert idx.involves("i")
        assert not idx.involves("j")


class TestValueExpr:
    def test_operator_overloading(self):
        a = Load("a", Affine.of({"i": 1}))
        b = Load("b", Affine.of({"i": 1}))
        expr = a * b + 3
        assert isinstance(expr, BinOp)
        assert expr.op is Op.ADD
        assert isinstance(expr.lhs, BinOp)
        assert expr.lhs.op is Op.MUL

    def test_reverse_operators(self):
        a = Load("a", Affine.of({"i": 1}))
        expr = 2 * a
        assert isinstance(expr, BinOp)
        assert isinstance(expr.lhs, Const)

    def test_shift_operators(self):
        a = Load("a", Affine.of({"i": 1}))
        assert (a >> 4).op is Op.SHR
        assert (a << 2).op is Op.SHL

    def test_loads_in_collects_all_leaves(self):
        a = Load("a", Affine.of({"i": 1}))
        b = Load("b", Affine.of({"j": 1}))
        expr = sqrt(a * b + a)
        found = loads_in(expr)
        assert found.count(a) == 2
        assert found.count(b) == 1

    def test_count_ops(self):
        a = Load("a", Affine.of({"i": 1}))
        expr = a * a + a * a
        counts = count_ops(expr)
        assert counts[Op.MUL] == 2
        assert counts[Op.ADD] == 1

    def test_walk_visits_every_node(self):
        a = Load("a", Affine.of({"i": 1}))
        expr = vmax(a, a + 1)
        kinds = [type(n).__name__ for n in walk(expr)]
        assert kinds.count("Load") == 2
        assert "BinOp" in kinds

    def test_as_expr_rejects_junk(self):
        with pytest.raises(TypeError):
            as_expr("nope")

    def test_as_affine_rejects_junk(self):
        with pytest.raises(TypeError):
            as_affine(3.5)
