"""Tests for the FPGA resource models (analytic + ML) and device budgets."""

import os

import numpy as np
import pytest

from repro.adg import (
    FuCap,
    InputPortHW,
    OutputPortHW,
    ProcessingElement,
    Switch,
    general_overlay,
)
from repro.ir import Op
from repro.model.resource import (
    AnalyticEstimator,
    MlEstimator,
    Resources,
    XCVU9P,
    generate_all,
    pe_resources,
    switch_resources,
    system_breakdown,
    system_resources,
    tile_resources,
    usable_budget,
)
from repro.model.resource.dataset import TABLE1_COUNTS
from repro.model.resource.mlp import MlpConfig, ResourceMlp


class TestResourcesVector:
    def test_arithmetic(self):
        a = Resources(lut=10, ff=20, bram=1, dsp=2)
        b = Resources(lut=5, ff=5, bram=0, dsp=1)
        assert (a + b).lut == 15
        assert (a - b).dsp == 1
        assert (a * 2).ff == 40
        assert (2 * a).ff == 40

    def test_fits_in(self):
        small = Resources(lut=10)
        big = Resources(lut=100, ff=100, bram=10, dsp=10)
        assert small.fits_in(big)
        assert not big.fits_in(small)

    def test_utilization(self):
        half = Resources(
            lut=XCVU9P.lut / 2,
            ff=XCVU9P.ff / 2,
            bram=XCVU9P.bram / 2,
            dsp=XCVU9P.dsp / 2,
        )
        assert half.max_utilization(XCVU9P) == pytest.approx(0.5)

    def test_total(self):
        items = [Resources(lut=1), Resources(lut=2), Resources(lut=3)]
        assert Resources.total(items).lut == 6


class TestAnalyticCosts:
    def test_pe_cost_grows_with_width(self):
        caps = frozenset({FuCap(Op.ADD, True, 64)})
        narrow = ProcessingElement(0, caps=caps, width_bits=64)
        wide = ProcessingElement(0, caps=caps, width_bits=512)
        assert pe_resources(wide).lut > pe_resources(narrow).lut

    def test_float_mul_uses_dsp(self):
        caps = frozenset({FuCap(Op.MUL, True, 64)})
        pe = ProcessingElement(0, caps=caps, width_bits=512)
        assert pe_resources(pe).dsp >= 8  # 8 lanes x 2 DSP

    def test_capability_pruning_saves_area(self):
        full = ProcessingElement(
            0,
            caps=frozenset(
                {FuCap(Op.ADD, True, 64), FuCap(Op.MUL, True, 64),
                 FuCap(Op.DIV, True, 64)}
            ),
            width_bits=512,
        )
        pruned = ProcessingElement(
            0, caps=frozenset({FuCap(Op.ADD, True, 64)}), width_bits=512
        )
        assert pe_resources(pruned).lut < pe_resources(full).lut

    def test_switch_cost_grows_with_radix(self):
        sw = Switch(0, width_bits=512)
        small = switch_resources(sw, 2, 2)
        big = switch_resources(sw, 6, 6)
        assert big.lut > small.lut

    def test_subword_simd_sharing(self):
        # An i8 add on a PE that already has a 64-bit adder is nearly free.
        base = frozenset({FuCap(Op.ADD, False, 64)})
        with_sub = base | {FuCap(Op.ADD, False, 8)}
        pe_a = ProcessingElement(0, caps=base, width_bits=512)
        pe_b = ProcessingElement(0, caps=frozenset(with_sub), width_bits=512)
        assert pe_resources(pe_b).lut == pytest.approx(pe_resources(pe_a).lut)


class TestCalibration:
    """The paper's headline utilization shapes (Q1, Q4)."""

    def test_four_general_tiles_fit(self):
        g = general_overlay(num_tiles=4)
        assert system_resources(g).fits_in(usable_budget())

    def test_five_general_tiles_do_not_fit(self):
        g = general_overlay(num_tiles=5)
        assert not system_resources(g).fits_in(usable_budget())

    def test_lut_is_limiting_resource(self):
        g = general_overlay(num_tiles=4)
        util = system_resources(g).utilization(XCVU9P)
        assert util["lut"] == max(util.values())
        assert util["lut"] > 0.8  # Fig. 16a: overlays consume 81-97% LUT

    def test_breakdown_sums_to_total(self):
        g = general_overlay()
        total = system_resources(g)
        parts = Resources.total(system_breakdown(g).values())
        assert parts.lut == pytest.approx(total.lut)
        assert parts.bram == pytest.approx(total.bram)

    def test_l2_dominates_bram(self):
        g = general_overlay()
        breakdown = system_breakdown(g)
        assert breakdown["noc"].bram > 100  # 512 KiB of L2 data


class TestDataset:
    def test_table1_counts(self):
        assert TABLE1_COUNTS["pe"] == 100_000
        assert TABLE1_COUNTS["switch"] == 56_700
        assert TABLE1_COUNTS["in_port"] == 34_412
        assert TABLE1_COUNTS["out_port"] == 25_796

    def test_generate_all_families(self):
        data = generate_all(scale=0.002)
        assert set(data) == {"pe", "switch", "in_port", "out_port"}
        for ds in data.values():
            assert len(ds.features) == len(ds.labels)
            assert ds.features.shape[1] == len(ds.feature_names)

    def test_split_ratios(self):
        data = generate_all(scale=0.01)["switch"]
        train, test, val = data.split()
        n = len(data.features)
        assert len(train.features) == int(n * 0.8)
        assert abs(len(test.features) - n * 0.1) <= 1
        assert len(train.features) + len(test.features) + len(val.features) == n

    def test_labels_nonnegative(self):
        data = generate_all(scale=0.002)
        for ds in data.values():
            assert (ds.labels >= 0).all()

    def test_generate_all_reproducible_across_processes(self):
        # The per-family seed offset must not depend on PYTHONHASHSEED:
        # two subprocesses with different hash seeds must agree bit-for-bit.
        import subprocess
        import sys

        script = (
            "from repro.model.resource.dataset import generate_all\n"
            "import hashlib\n"
            "d = generate_all(scale=0.002, seed=7)\n"
            "h = hashlib.sha256()\n"
            "for fam in sorted(d):\n"
            "    h.update(d[fam].features.tobytes())\n"
            "    h.update(d[fam].labels.tobytes())\n"
            "print(h.hexdigest())\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        digests = []
        for hash_seed in ("0", "4242"):
            env = dict(
                os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src_dir
            )
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.append(out.stdout.strip())
        assert digests[0] == digests[1]

    def test_pessimism_inflates_lut(self):
        # Dataset labels should be systematically above the analytic truth.
        from repro.model.resource.dataset import generate_switch_dataset
        from repro.model.resource.analytic import switch_resources

        ds = generate_switch_dataset(count=300, seed=7)
        ratio = []
        for feats, label in zip(ds.features, ds.labels):
            sw = Switch(0, width_bits=int(feats[0]))
            truth = switch_resources(sw, int(feats[1]), int(feats[2]))
            ratio.append(label[0] / truth.lut)
        assert np.mean(ratio) > 1.05


class TestMlp:
    @pytest.fixture(scope="class")
    def trained(self):
        data = generate_all(scale=0.01)["switch"]
        train, test, val = data.split()
        mlp = ResourceMlp(
            data.features.shape[1], MlpConfig(epochs=40, seed=3)
        )
        mlp.fit(train)
        return mlp, test

    def test_training_converges(self, trained):
        mlp, test = trained
        err = mlp.evaluate(test)
        assert err["lut"] < 0.25

    def test_predictions_nonnegative(self, trained):
        mlp, test = trained
        pred = mlp.predict(test.features)
        assert (pred >= 0).all()

    def test_predict_single_row(self, trained):
        mlp, test = trained
        pred = mlp.predict(test.features[0])
        assert pred.shape == (1, 4)


class TestEstimators:
    def test_analytic_matches_functions(self):
        g = general_overlay()
        est = AnalyticEstimator()
        assert est.tile(g.adg).lut == pytest.approx(tile_resources(g.adg).lut)
        assert est.system(g).lut == pytest.approx(system_resources(g).lut)

    def test_ml_estimator_tracks_analytic(self):
        g = general_overlay()
        ml = MlEstimator(dataset_scale=0.02, seed=1)
        analytic = AnalyticEstimator().tile(g.adg).lut
        predicted = ml.tile(g.adg).lut
        assert predicted == pytest.approx(analytic, rel=0.35)

    def test_ml_estimator_reports_training_error(self):
        ml = MlEstimator(dataset_scale=0.01, seed=2)
        assert set(ml.training_error) == {"pe", "switch", "in_port", "out_port"}
