"""Remap, simulate_batch, job op, and registry-backed serving.

The remap acceptance criteria: a param-only new version rides the
schedule-preserving fast path (``revalidate_schedule`` returns the same
object), a structurally different version falls back to a full
recompile, and result documents stay byte-identical regardless of which
path produced them.
"""

import asyncio
import copy
import threading

import pytest

from repro.adg import sysadg_to_dict
from repro.cluster import OverlayRegistry
from repro.dse import DseConfig, explore
from repro.engine import MetricsLogger
from repro.jobs import SocketJobExecutor
from repro.serve import (
    OverlayServer,
    ServeClient,
    ServeConfig,
    ServeError,
    canonical_dumps,
    pack_job,
    run_job_payload,
    single_shot,
    unpack_job_result,
    wait_for_server,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def sysadg():
    return explore(
        [get_workload("vecmax")],
        DseConfig(iterations=10, seed=4),
        name="vecmax",
    ).sysadg


@pytest.fixture(scope="module")
def other_sysadg():
    """A structurally different overlay (other seed, other ADG)."""
    return explore(
        [get_workload("vecmax")],
        DseConfig(iterations=10, seed=11),
        name="vecmax",
    ).sysadg


@pytest.fixture()
def registry(tmp_path, sysadg, other_sysadg):
    """fam@v1 = base, fam@v2 = param-only tweak, fam@v3 = new ADG."""
    reg = OverlayRegistry(str(tmp_path / "reg"))
    doc = sysadg_to_dict(sysadg)
    reg.publish("fam", doc, note="base")
    doc2 = copy.deepcopy(doc)
    doc2["params"]["frequency_mhz"] = round(
        doc2["params"]["frequency_mhz"] + 7.0, 2
    )
    reg.publish("fam", doc2, note="freq bump")
    reg.publish("fam", sysadg_to_dict(other_sysadg), note="new adg")
    return reg


@pytest.fixture()
def live_server(registry, tmp_path):
    """Registry-only server (no preloaded overlays) on its own thread."""
    sock = str(tmp_path / "remap.sock")
    config = ServeConfig(
        socket_path=sock,
        workers=0,
        queue_limit=128,
        drain_timeout_s=10.0,
        registry_dir=str(registry.root),
    )
    server = OverlayServer(config, metrics=MetricsLogger())
    started = threading.Event()

    def run():
        async def serve():
            await server.start()
            started.set()
            await server.wait_closed()

        asyncio.run(serve())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "server thread never started"
    asyncio.run(wait_for_server(lambda: ServeClient(socket_path=sock)))
    yield server, sock
    try:
        asyncio.run(_request(sock, "shutdown"))
    except Exception:
        pass
    thread.join(timeout=10)
    assert not thread.is_alive(), "server thread failed to drain"


async def _request(sock, op, **kwargs):
    async with ServeClient(socket_path=sock) as client:
        return await client.request(op, **kwargs)


class TestRemapPaths:
    def test_param_only_version_is_preserved(self, live_server):
        server, sock = live_server
        asyncio.run(_request(sock, "remap", workload="vecmax",
                             overlay="fam@v1"))
        assert server.counters["remap_cold"] == 1
        asyncio.run(_request(sock, "remap", workload="vecmax",
                             overlay="fam@v2"))
        assert server.counters["remap_preserved"] == 1
        assert server.counters["remap_recompiled"] == 0

    def test_new_adg_version_recompiles(self, live_server):
        server, sock = live_server
        asyncio.run(_request(sock, "remap", workload="vecmax",
                             overlay="fam@v1"))
        asyncio.run(_request(sock, "remap", workload="vecmax",
                             overlay="fam@v3"))
        assert server.counters["remap_cold"] == 1
        assert server.counters["remap_recompiled"] == 1

    def test_preserved_doc_is_byte_identical_to_cold(
        self, live_server, sysadg
    ):
        """The wire doc must not leak serving history.

        The same fam@v2 request served preserved (prior schedule held)
        and served cold (fresh server) yields identical bytes — the
        scheduler is deterministic on the same ADG, and the path lives
        only in counters.
        """
        server, sock = live_server
        asyncio.run(_request(sock, "remap", workload="vecmax",
                             overlay="fam@v1"))
        preserved = asyncio.run(
            _request(sock, "remap", workload="vecmax", overlay="fam@v2")
        )
        assert server.counters["remap_preserved"] == 1
        # Cold reference: same design, no history, via the library path.
        from repro.adg import sysadg_from_dict

        v2_doc = server.registry.resolve("fam@v2").design_doc
        cold = single_shot("remap", sysadg_from_dict(v2_doc), "vecmax")
        assert canonical_dumps(preserved) == canonical_dumps(cold)

    def test_remap_duplicate_is_memory_cached(self, live_server):
        server, sock = live_server
        first = asyncio.run(
            _request(sock, "remap", workload="vecmax", overlay="fam@v1")
        )
        again = asyncio.run(
            _request(sock, "remap", workload="vecmax", overlay="fam@v1")
        )
        assert canonical_dumps(first) == canonical_dumps(again)
        assert server.counters["remap_cold"] == 1  # second hit the cache

    def test_unmappable_remap_is_structured(self, live_server):
        _server, sock = live_server
        with pytest.raises(ServeError) as err:
            asyncio.run(_request(sock, "remap", workload="fir",
                                 overlay="fam@v1"))
        assert err.value.code == "unmappable"


class TestRegistryServing:
    def test_bare_name_tracks_the_pin(self, live_server, registry):
        server, sock = live_server
        by_pin = asyncio.run(
            _request(sock, "map", workload="vecmax", overlay="fam")
        )
        explicit = asyncio.run(
            _request(sock, "map", workload="vecmax", overlay="fam@v3")
        )
        # No pin: bare name means latest (v3).
        assert canonical_dumps(by_pin) == canonical_dumps(explicit)
        registry.pin("fam", 1)
        repinned = asyncio.run(
            _request(sock, "map", workload="vecmax", overlay="fam")
        )
        v1 = asyncio.run(
            _request(sock, "map", workload="vecmax", overlay="fam@v1")
        )
        assert canonical_dumps(repinned) == canonical_dumps(v1)

    def test_unknown_spec_is_bad_request(self, live_server):
        _server, sock = live_server
        with pytest.raises(ServeError) as err:
            asyncio.run(_request(sock, "map", workload="vecmax",
                                 overlay="ghost@v1"))
        assert err.value.code == "bad_request"

    def test_stats_reports_registry(self, live_server):
        _server, sock = live_server
        stats = asyncio.run(_request(sock, "stats"))
        assert stats["registry"]["names"] == ["fam"]


class TestSimulateBatchWire:
    def test_batch_matches_per_name_simulate(self, live_server, sysadg):
        _server, sock = live_server
        doc = asyncio.run(
            _request(sock, "simulate_batch", workload="vecmax,fir",
                     overlay="fam@v1")
        )
        assert doc["workloads"] == ["vecmax", "fir"]
        solo = asyncio.run(
            _request(sock, "simulate", workload="vecmax", overlay="fam@v1")
        )
        assert canonical_dumps(doc["results"][0]) == canonical_dumps(solo)
        assert doc["results"][1] is None  # unmappable slot, not an error

    def test_empty_batch_is_bad_request(self, live_server):
        _server, sock = live_server
        with pytest.raises(ServeError) as err:
            asyncio.run(_request(sock, "simulate_batch", workload=",,",
                                 overlay="fam@v1"))
        assert err.value.code == "bad_request"


class TestJobOp:
    def test_pack_run_unpack_roundtrip(self):
        result = run_job_payload(pack_job(sorted, [3, 1, 2]))
        assert unpack_job_result(result) == [1, 2, 3]

    def test_job_over_the_wire(self, live_server):
        server, sock = live_server
        doc = asyncio.run(
            _request(sock, "job",
                     options={"payload": pack_job(len, [10, 20, 30])})
        )
        assert unpack_job_result(doc["payload"]) == 3
        assert server.counters["jobs"] == 1

    def test_job_requires_payload(self, live_server):
        _server, sock = live_server
        with pytest.raises(ServeError) as err:
            asyncio.run(_request(sock, "job"))
        assert err.value.code == "bad_request"

    def test_job_failure_is_structured(self, live_server):
        _server, sock = live_server
        with pytest.raises(ServeError) as err:
            asyncio.run(
                _request(sock, "job",
                         options={"payload": pack_job(len, 42)})
            )
        assert err.value.code == "internal"

    def test_socket_executor_generic_mode(self, live_server):
        """SocketJobExecutor with no request_fn ships the closure."""
        _server, sock = live_server
        executor = SocketJobExecutor(socket_path=sock)
        outcomes = list(
            executor.execute(abs, [(0, -5), (1, 7), (2, -1)])
        )
        assert executor.last_mode == "socket-job"
        assert [o.result for o in outcomes] == [5, 7, 1]
        assert all(o.ok for o in outcomes)
