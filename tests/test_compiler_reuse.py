"""Tests for the reuse analyzer — keyed to the paper's Fig. 5 FIR example."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiler import (
    affine_span,
    analyze_access,
    analyze_workload,
    find_recurrence,
    stationary_factor,
)
from repro.ir import Affine, F64, IndirectIndex, WorkloadBuilder
from repro.workloads import get_workload


def fig5_fir():
    """The exact tiled FIR of the paper's Figure 5 (4x128x32)."""
    wb = WorkloadBuilder("fig5", suite="test", dtype=F64)
    a = wb.array("a", 255)
    b = wb.array("b", 128)
    c = wb.array("c", 128)
    io = wb.loop("io", 4)
    j = wb.loop("j", 128)
    ii = wb.loop("ii", 32)
    wb.accumulate(c[io * 32 + ii], a[io * 32 + ii + j] * b[j])
    return wb.build()


class TestFig5Numbers:
    """The paper works these numbers out explicitly in Section IV-B."""

    def test_a_footprint_is_255(self):
        w = fig5_fir()
        info = analyze_access(
            w, "a", Affine.of({"io": 32, "ii": 1, "j": 1}), is_write=False
        )
        assert info.footprint == 255  # 128 + 128 - 1

    def test_a_traffic_is_trip_product(self):
        w = fig5_fir()
        info = analyze_access(
            w, "a", Affine.of({"io": 32, "ii": 1, "j": 1}), is_write=False
        )
        assert info.traffic == 4 * 128 * 32  # 16384

    def test_a_general_reuse(self):
        w = fig5_fir()
        info = analyze_access(
            w, "a", Affine.of({"io": 32, "ii": 1, "j": 1}), is_write=False
        )
        assert info.general_reuse == pytest.approx(16384 / 255)

    def test_b_has_stationary_reuse_32(self):
        w = fig5_fir()
        info = analyze_access(w, "b", Affine.of({"j": 1}), is_write=False)
        assert info.stationary_reuse == 32  # innermost ii absent
        assert info.footprint == 128

    def test_c_recurrence_detected(self):
        w = fig5_fir()
        rec = find_recurrence(w, w.statements[0])
        assert rec is not None
        assert rec.array == "c"
        assert rec.carried_over == "j"
        assert rec.recurrences == 128
        assert rec.depth == 32  # 32 concurrent instances in flight


class TestSpan:
    def test_constant_index_span_is_one(self):
        w = fig5_fir()
        assert affine_span(w, Affine.of({}, 5)) == 1

    def test_single_var(self):
        w = fig5_fir()
        assert affine_span(w, Affine.of({"j": 1})) == 128

    def test_strided(self):
        w = fig5_fir()
        assert affine_span(w, Affine.of({"j": 4})) == 4 * 127 + 1

    def test_negative_coefficient(self):
        w = fig5_fir()
        span_pos = affine_span(w, Affine.of({"j": 1}))
        span_neg = affine_span(w, Affine.of({"j": -1}))
        assert span_pos == span_neg

    @given(st.integers(1, 8), st.integers(1, 8))
    def test_span_lower_bounded_by_each_extent(self, c1, c2):
        w = fig5_fir()
        span = affine_span(w, Affine.of({"io": c1, "ii": c2}))
        assert span >= c1 * 3 + 1
        assert span >= c2 * 31 + 1


class TestStationary:
    def test_innermost_involved_means_none(self):
        w = fig5_fir()
        assert stationary_factor(w, Affine.of({"ii": 1})) == 1

    def test_innermost_absent_gives_inner_trip(self):
        w = fig5_fir()
        assert stationary_factor(w, Affine.of({"io": 1})) == 32


class TestIndirect:
    def test_indirect_uses_target_array_footprint(self):
        w = get_workload("crs")
        analysis = analyze_workload(w)
        gathers = [a for a in analysis.accesses if a.indirect]
        assert gathers, "crs must have an indirect access"
        assert gathers[0].array == "x"
        assert gathers[0].footprint == w.array("x").size


class TestRecurrenceEdgeCases:
    def test_no_recurrence_without_target_read(self):
        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        a = wb.array("a", 64)
        b = wb.array("b", 64)
        i = wb.loop("i", 8)
        j = wb.loop("j", 8)
        wb.assign(b[j], a[i * 8 + j])
        w = wb.build()
        assert find_recurrence(w, w.statements[0]) is None

    def test_innermost_reduction_is_not_recurrence(self):
        # mm: c[i][j] += ... over innermost k -> accumulator, not recurrence.
        w = get_workload("mm")
        assert find_recurrence(w, w.statements[0]) is None

    def test_full_index_has_no_recurrence(self):
        wb = WorkloadBuilder("t", suite="test", dtype=F64)
        a = wb.array("a", 64)
        i = wb.loop("i", 8)
        j = wb.loop("j", 8)
        wb.accumulate(a[i * 8 + j], a[i * 8 + j] * 2)
        w = wb.build()
        # target index involves every loop: nothing carries a recurrence
        assert find_recurrence(w, w.statements[0]) is None

    def test_accumulate_recurrence_depth_is_frame(self):
        w = get_workload("accumulate")
        rec = find_recurrence(w, w.statements[0])
        assert rec is not None
        assert rec.carried_over == "f"
        assert rec.depth == 128 * 128


class TestWorkloadAnalysis:
    def test_analyze_covers_every_access(self):
        w = fig5_fir()
        analysis = analyze_workload(w)
        touched = {a.array for a in analysis.accesses}
        assert touched == {"a", "b", "c"}

    def test_array_traffic_sums_reads_and_writes(self):
        w = fig5_fir()
        analysis = analyze_workload(w)
        # c is read and written every iteration: 2x trip product
        assert analysis.array_traffic("c") == 2 * 16384
