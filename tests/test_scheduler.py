"""Tests for the spatial scheduler: binding, placement, routing, repair."""

import pytest

from repro.adg import NodeKind, general_overlay, mesh_adg, caps_for_dtype
from repro.compiler import generate_variants, lower
from repro.dfg import ArrayNode, ComputeNode, StreamKind
from repro.ir import F64, I16, I64, Op
from repro.scheduler import (
    RoutingState,
    ScheduleError,
    ScheduleFailure,
    attempt_schedule,
    find_route,
    repair_schedule,
    schedule_mdfg,
    schedule_workload,
)
from repro.workloads import all_workloads, get_workload


@pytest.fixture(scope="module")
def overlay():
    return general_overlay()


class TestRouting:
    def test_route_exists_on_mesh(self, overlay):
        adg = overlay.adg
        ip = adg.in_ports[0]
        pe = adg.pes[0]
        state = RoutingState(adg)
        path = find_route(adg, state, ip.node_id, pe.node_id, 0, 64)
        assert path is not None
        assert path[0] == ip.node_id and path[-1] == pe.node_id

    def test_interior_hops_are_switches(self, overlay):
        adg = overlay.adg
        state = RoutingState(adg)
        path = find_route(
            adg, state, adg.in_ports[0].node_id, adg.pes[10].node_id, 0, 64
        )
        for hop in path[1:-1]:
            assert adg.node(hop).kind is NodeKind.SWITCH

    def test_link_conflict_forces_detour_or_failure(self, overlay):
        adg = overlay.adg
        state = RoutingState(adg)
        src = adg.in_ports[0].node_id
        dst = adg.pes[0].node_id
        first = find_route(adg, state, src, dst, source_dfg=1, width_bits=64)
        state.claim_path(first, 1)
        second = find_route(adg, state, src, dst, source_dfg=2, width_bits=64)
        if second is not None:
            # A different value must not reuse the first value's links.
            first_links = set(zip(first, first[1:]))
            second_links = set(zip(second, second[1:]))
            assert not (first_links & second_links)

    def test_multicast_shares_links(self, overlay):
        adg = overlay.adg
        state = RoutingState(adg)
        src = adg.in_ports[0].node_id
        path = find_route(adg, state, src, adg.pes[0].node_id, 7, 64)
        state.claim_path(path, 7)
        again = find_route(adg, state, src, adg.pes[0].node_id, 7, 64)
        assert again == path  # same source may reuse its own links

    def test_width_blocks_narrow_switches(self):
        adg = mesh_adg(
            1, 1, caps=caps_for_dtype(I64, (Op.ADD,)), width_bits=64
        )
        state = RoutingState(adg)
        ip = adg.in_ports[0]
        pe = adg.pes[0]
        wide = find_route(adg, state, ip.node_id, pe.node_id, 0, 512)
        assert wide is None  # 512-bit value cannot cross 64-bit switches


class TestScheduling:
    def test_all_workloads_schedule_on_general(self, overlay):
        for w in all_workloads():
            s = schedule_workload(
                generate_variants(w), overlay.adg, overlay.params
            )
            assert s is not None, w.name
            assert s.estimate is not None and s.estimate.ipc > 0

    def test_every_compute_node_on_distinct_pe(self, overlay):
        mdfg = lower(get_workload("bgr2grey"), unroll=4)
        s = schedule_mdfg(mdfg, overlay.adg, overlay.params)
        pes = [
            s.placement[c.node_id] for c in mdfg.compute_nodes
        ]
        assert len(pes) == len(set(pes))

    def test_ports_not_shared(self, overlay):
        mdfg = lower(get_workload("stencil-2d"), unroll=1)
        s = schedule_mdfg(mdfg, overlay.adg, overlay.params)
        assert s is not None
        ports = [
            s.placement[p.node_id]
            for p in mdfg.input_ports + mdfg.output_ports
        ]
        assert len(ports) == len(set(ports))

    def test_spad_array_lands_on_spad(self, overlay):
        mdfg = lower(get_workload("mm"), unroll=1)
        s = schedule_mdfg(mdfg, overlay.adg, overlay.params)
        placed_kinds = {
            a.array: overlay.adg.node(s.placement[a.node_id]).kind
            for a in mdfg.arrays
        }
        assert NodeKind.SPAD in placed_kinds.values()

    def test_capacity_respected(self):
        # One tiny scratchpad: high-reuse arrays must spill to DMA.
        adg = mesh_adg(
            2,
            2,
            caps=caps_for_dtype(F64, (Op.ADD, Op.MUL)),
            width_bits=512,
            spad_specs=((256, 32, False),),
        )
        mdfg = lower(get_workload("mm"), unroll=1)
        s = schedule_mdfg(mdfg, adg)
        assert s is not None
        spad_bytes = 0.0
        for a in mdfg.arrays:
            hw = adg.node(s.placement[a.node_id])
            if hw.kind is NodeKind.SPAD:
                spad_bytes += a.footprint_bytes
        assert spad_bytes <= 256

    def test_indirect_needs_capable_engine(self):
        adg = mesh_adg(
            2,
            2,
            caps=caps_for_dtype(F64, (Op.ADD, Op.MUL)),
            width_bits=256,
            spad_specs=((16384, 32, False),),
            dma_indirect=False,
        )
        mdfg = lower(get_workload("ellpack"), unroll=1)
        assert schedule_mdfg(mdfg, adg) is None

    def test_recurrence_depth_enforced(self, overlay):
        # accumulate's recurrence depth is a whole frame (16K elements):
        # the rec-engine variant must fail, the rmw variant must map.
        rec = lower(get_workload("accumulate"), unroll=1, use_recurrence=True)
        assert schedule_mdfg(rec, overlay.adg) is None
        rmw = lower(get_workload("accumulate"), unroll=1, use_recurrence=False)
        assert schedule_mdfg(rmw, overlay.adg) is not None

    def test_relaxation_picks_best_schedulable(self, overlay):
        s = schedule_workload(
            generate_variants(get_workload("stencil-2d")),
            overlay.adg,
            overlay.params,
        )
        assert s is not None
        # stencil-2d at full unroll needs 9 wide ports; must have relaxed.
        assert s.mdfg.unroll < 8

    def test_missing_capability_fails(self):
        adg = mesh_adg(
            2, 2, caps=caps_for_dtype(I64, (Op.ADD,)), width_bits=512
        )
        mdfg = lower(get_workload("mm"), unroll=1)  # needs f64 mul
        assert schedule_mdfg(mdfg, adg) is None


class TestStructuredFailure:
    """Infeasible mappings come back as data, never exceptions."""

    def test_success_has_no_failure(self, overlay):
        mdfg = lower(get_workload("fir"), unroll=1, use_recurrence=False)
        attempt = attempt_schedule(mdfg, overlay.adg, overlay.params)
        assert attempt.ok
        assert attempt.failure is None
        assert attempt.schedule.estimate is not None

    def test_missing_capability_reports_placement(self):
        # Integer-only PEs cannot host mm's f64 multiplies.
        adg = mesh_adg(
            2, 2, caps=caps_for_dtype(I64, (Op.ADD,)), width_bits=512
        )
        mdfg = lower(get_workload("mm"), unroll=1)
        attempt = attempt_schedule(mdfg, adg)
        assert not attempt.ok and attempt.schedule is None
        assert isinstance(attempt.failure, ScheduleFailure)
        assert attempt.failure.stage == "placement"
        assert "no PE supports" in attempt.failure.reason

    def test_oversubscribed_pes_fail_structurally(self):
        # A 1x1 mesh has a single PE; any multi-op DFG over-subscribes it.
        adg = mesh_adg(
            1, 1, caps=caps_for_dtype(F64, (Op.ADD, Op.MUL)), width_bits=512
        )
        mdfg = lower(get_workload("mm"), unroll=1)
        attempt = attempt_schedule(mdfg, adg)
        assert not attempt.ok
        assert attempt.failure.stage in (
            "binding", "placement", "routing", "skew"
        )

    def test_indirect_unsupported_reports_binding(self):
        adg = mesh_adg(
            2,
            2,
            caps=caps_for_dtype(F64, (Op.ADD, Op.MUL)),
            width_bits=256,
            spad_specs=((16384, 32, False),),
            dma_indirect=False,
        )
        mdfg = lower(get_workload("ellpack"), unroll=1)
        attempt = attempt_schedule(mdfg, adg)
        assert not attempt.ok
        assert attempt.failure.stage == "binding"
        assert "indirect" in attempt.failure.reason

    def test_schedule_error_carries_stage(self):
        err = ScheduleError("boom")
        assert err.stage == "schedule"
        err = ScheduleError("boom", stage="routing")
        assert err.stage == "routing"

    def test_every_workload_gets_schedule_or_diagnosis(self, overlay):
        # On a starved ADG nothing escapes as an exception.
        adg = mesh_adg(
            1, 1, caps=caps_for_dtype(I16, (Op.ADD,)), width_bits=64
        )
        for w in all_workloads():
            for mdfg in generate_variants(w).variants:
                attempt = attempt_schedule(mdfg, adg)
                assert attempt.ok or attempt.failure.reason


class TestRepair:
    def _scheduled(self, overlay):
        adg = overlay.adg.clone()
        mdfg = lower(get_workload("fir"), unroll=2, use_recurrence=False)
        s = schedule_mdfg(mdfg, adg, overlay.params)
        assert s is not None
        return adg, mdfg, s

    def test_noop_mutation_keeps_schedule(self, overlay):
        adg, mdfg, s = self._scheduled(overlay)
        #

        unused_pes = [
            p.node_id
            for p in adg.pes
            if p.node_id not in s.hardware_in_use()
        ]
        adg.remove_node(unused_pes[0])
        repaired = repair_schedule(s, adg, overlay.params)
        assert repaired is not None
        assert repaired.placement == s.placement

    def test_removing_used_pe_triggers_reschedule(self, overlay):
        adg, mdfg, s = self._scheduled(overlay)
        used_pe = next(
            s.placement[c.node_id] for c in mdfg.compute_nodes
        )
        adg.remove_node(used_pe)
        repaired = repair_schedule(s, adg, overlay.params)
        assert repaired is not None  # plenty of spare PEs
        assert repaired.is_valid_for(adg)
        assert used_pe not in repaired.placement.values()

    def test_capability_pruning_detected(self, overlay):
        adg, mdfg, s = self._scheduled(overlay)
        mul_node = next(
            c for c in mdfg.compute_nodes if c.op is Op.MUL
        )
        pe_id = s.placement[mul_node.node_id]
        from repro.adg import caps_for_dtype as cfd

        adg.replace_node(pe_id, caps=cfd(F64, (Op.ADD,)))  # drop MUL
        repaired = repair_schedule(s, adg, overlay.params)
        assert repaired is not None
        new_pe = repaired.placement[mul_node.node_id]
        assert new_pe != pe_id

    def test_schedule_validity_check(self, overlay):
        adg, mdfg, s = self._scheduled(overlay)
        assert s.is_valid_for(adg)
        used = sorted(s.hardware_in_use())
        adg.remove_node(used[0])
        assert not s.is_valid_for(adg)
