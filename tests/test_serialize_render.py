"""Tests for ADG serialization round-trips and ASCII rendering."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adg import (
    ADG,
    SerializationError,
    SysADG,
    SystemParams,
    adg_from_dict,
    adg_to_dict,
    caps_for_dtype,
    general_overlay,
    load_sysadg,
    mesh_adg,
    render_adg,
    render_sysadg,
    save_sysadg,
    seed_for_workloads,
    sysadg_from_dict,
    sysadg_to_dict,
)
from repro.ir import F64, I16, I64, Op
from repro.workloads import get_suite


def _structurally_equal(a: ADG, b: ADG) -> bool:
    if len(a.node_ids()) != len(b.node_ids()):
        return False
    if len(a.links()) != len(b.links()):
        return False
    for na, nb in zip(
        (a.node(i) for i in a.node_ids()), (b.node(i) for i in b.node_ids())
    ):
        if type(na) is not type(nb):
            return False
        if na.kind is not nb.kind:
            return False
    return True


class TestRoundTrip:
    def test_general_overlay_roundtrip(self, tmp_path):
        g = general_overlay()
        path = tmp_path / "overlay.json"
        save_sysadg(g, str(path))
        h = load_sysadg(str(path))
        assert h.params == g.params
        assert h.name == g.name
        assert _structurally_equal(g.adg, h.adg)

    def test_pe_caps_survive(self):
        adg = mesh_adg(1, 1, caps=caps_for_dtype(F64, (Op.ADD, Op.DIV)))
        again = adg_from_dict(adg_to_dict(adg))
        caps_a = {c.name for pe in adg.pes for c in pe.caps}
        caps_b = {c.name for pe in again.pes for c in pe.caps}
        assert caps_a == caps_b

    def test_engine_parameters_survive(self):
        adg = mesh_adg(
            1,
            1,
            caps=caps_for_dtype(I64, (Op.ADD,)),
            spad_specs=((4096, 16, True),),
            dma_bandwidth=64,
        )
        again = adg_from_dict(adg_to_dict(adg))
        spad = again.spads[0]
        assert spad.capacity_bytes == 4096
        assert spad.indirect
        assert again.dmas[0].bandwidth_bytes == 64

    def test_json_is_plain_data(self):
        doc = sysadg_to_dict(general_overlay())
        json.dumps(doc)  # must not raise

    def test_dse_output_roundtrips(self):
        # A pruned/padded evolved design survives serialization too.
        from repro.dse import DseConfig, explore
        from repro.workloads import get_workload

        res = explore(
            [get_workload("vecmax")], DseConfig(iterations=12, seed=6)
        )
        doc = sysadg_to_dict(res.sysadg)
        again = sysadg_from_dict(doc)
        assert again.params == res.sysadg.params
        assert _structurally_equal(res.sysadg.adg, again.adg)

    def test_version_check(self):
        doc = adg_to_dict(general_overlay().adg)
        doc["version"] = 99
        with pytest.raises(SerializationError):
            adg_from_dict(doc)

    def test_unknown_kind_rejected(self):
        doc = adg_to_dict(general_overlay().adg)
        doc["nodes"][0]["kind"] = "fpga"
        with pytest.raises(SerializationError):
            adg_from_dict(doc)

    @settings(max_examples=10, deadline=None)
    @given(
        rows=st.integers(1, 3),
        cols=st.integers(1, 3),
        width=st.sampled_from([64, 128, 512]),
    )
    def test_mesh_roundtrip_property(self, rows, cols, width):
        adg = mesh_adg(
            rows, cols, caps=caps_for_dtype(I16, (Op.ADD, Op.MUL)),
            width_bits=width,
        )
        again = adg_from_dict(adg_to_dict(adg))
        assert _structurally_equal(adg, again)
        again.validate()


class TestRender:
    def test_render_contains_all_sections(self):
        text = render_adg(general_overlay().adg)
        for token in ("memory side", "input ports", "fabric", "output ports"):
            assert token in text

    def test_render_sysadg_header(self):
        text = render_sysadg(general_overlay())
        assert "tiles=4" in text
        assert "512KiB" in text

    def test_render_names_every_engine(self):
        adg = general_overlay().adg
        text = render_adg(adg)
        for engine in adg.engines:
            assert engine.name in text

    def test_render_handles_empty_ports(self):
        adg = ADG()
        adg.add_switch()
        text = render_adg(adg)
        assert "(none)" in text
