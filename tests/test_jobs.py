"""Tests for the repro.jobs runtime: ShardPlan, JobRunner, executors,
fault policies, checkpoint/resume, and the golden serial-vs-pool
comparisons that pin the consumers' byte-identity contract."""

import asyncio
import threading
import time

import pytest

from repro.engine.store import ArtifactStore
from repro.jobs import (
    Checkpointing,
    FaultPolicy,
    InProcessExecutor,
    JobRunner,
    JobsFailedError,
    ProcessPoolJobExecutor,
    ShardPlan,
    SocketJobExecutor,
    make_worker_pool,
)
from repro.profile.tracer import tracing


# ----------------------------------------------------------------------
# Job functions (module-level so they pickle to worker processes).
# ----------------------------------------------------------------------
def square(x):
    return x * x


def crash(x):
    raise RuntimeError(f"boom {x}")


def crash_on_two(x):
    if x == 2:
        raise RuntimeError("boom 2")
    return x


def sleepy(seconds):
    time.sleep(seconds)
    return seconds


class PoisonOnUnpickle:
    """Payload that crosses to a worker but explodes on arrival."""

    def __init__(self, value):
        self.value = value

    def __setstate__(self, state):
        raise RuntimeError("poisoned payload")


def poison_value(p):
    return p.value


class Recorder:
    """Minimal MetricsLogger stand-in: captures (event, fields)."""

    def __init__(self):
        self.events = []

    def emit(self, event, **fields):
        self.events.append((event, fields))

    def names(self):
        return [e for e, _ in self.events]


# ----------------------------------------------------------------------
# ShardPlan
# ----------------------------------------------------------------------
class TestShardPlan:
    @pytest.mark.parametrize("total,shards", [
        (12, 5), (12, 1), (12, 12), (7, 3), (0, 4), (3, 8), (100, 7),
    ])
    def test_ranges_cover_total_contiguously(self, total, shards):
        plan = ShardPlan(total=total, shards=shards)
        ranges = plan.ranges()
        assert len(ranges) == plan.count
        assert sum(c for _, c in ranges) == total
        start = 0
        for s, c in ranges:
            assert s == start and c >= 0
            start += c

    def test_split_is_deterministic_and_balanced(self):
        assert ShardPlan(12, 5).ranges() == [
            (0, 3), (3, 3), (6, 2), (8, 2), (10, 2)
        ]
        counts = [c for _, c in ShardPlan(100, 7).ranges()]
        assert max(counts) - min(counts) <= 1

    def test_shard_count_below_one_clamps(self):
        assert ShardPlan(10, 0).ranges() == [(0, 10)]
        assert ShardPlan(10, -3).count == 1

    def test_negative_total_raises(self):
        with pytest.raises(ValueError):
            ShardPlan(-1, 2)

    def test_shard_of_matches_owning_slice(self):
        for total, shards in [(12, 5), (7, 3), (9, 9), (100, 7)]:
            plan = ShardPlan(total, shards)
            for shard in plan:
                for index in shard.indices():
                    assert plan.shard_of(index) == shard.index
        with pytest.raises(IndexError):
            ShardPlan(5, 2).shard_of(5)

    def test_scatter_partitions_in_order(self):
        items = list("abcdefg")
        parts = ShardPlan(7, 3).scatter(items)
        assert [list(p) for p in parts] == [
            ["a", "b", "c"], ["d", "e"], ["f", "g"]
        ]
        with pytest.raises(ValueError):
            ShardPlan(6, 3).scatter(items)

    def test_matches_soak_campaign_split(self):
        from repro.validate.soak import CampaignConfig

        for budget, shards in [(12, 5), (200, 4), (8, 2)]:
            config = CampaignConfig(budget=budget, shards=shards)
            assert config.shard_ranges() == ShardPlan(budget, shards).ranges()


# ----------------------------------------------------------------------
# The one serial-fallback rule
# ----------------------------------------------------------------------
class TestSerialFallbackRule:
    def test_single_worker_runs_serial(self):
        ex = ProcessPoolJobExecutor(workers=1)
        outs = JobRunner(executor=ex).run(square, [1, 2, 3])
        assert [o.result for o in outs] == [1, 4, 9]
        assert ex.last_mode == "serial"

    def test_single_job_runs_serial_even_with_workers(self):
        ex = ProcessPoolJobExecutor(workers=4)
        outs = JobRunner(executor=ex).run(square, [5])
        assert outs[0].result == 25
        assert ex.last_mode == "serial"

    def test_multi_worker_multi_job_uses_pool(self):
        ex = ProcessPoolJobExecutor(workers=2)
        outs = JobRunner(executor=ex).run(square, [1, 2, 3])
        assert [o.result for o in outs] == [1, 4, 9]
        assert ex.last_mode == "pool"

    def test_serial_and_pool_emit_identical_checkpoints(self, tmp_path):
        """Regression for the satellite: one fallback rule means the
        checkpoint artifacts cannot depend on which path executed."""
        blobs = {}
        for mode, workers in (("serial", 1), ("pool", 2)):
            store = ArtifactStore(str(tmp_path / mode))
            ckpt = Checkpointing(
                store=store,
                key_fn=lambda job: f"job-{job}",
                meta_fn=lambda job, result: {"job": job, "result": result},
            )
            ex = ProcessPoolJobExecutor(workers=workers)
            JobRunner(executor=ex).run(square, [3, 4, 5], checkpoint=ckpt)
            assert ex.last_mode == mode
            blobs[mode] = {
                p.name: p.read_bytes()
                for p in sorted((tmp_path / mode).glob("*/*"))
            }
        assert blobs["serial"] == blobs["pool"]
        assert any(n.endswith(".pkl") for n in blobs["serial"])


# ----------------------------------------------------------------------
# Fault injection: crash / hang / unpickle poison / all-failed
# ----------------------------------------------------------------------
EXECUTORS = [
    lambda: InProcessExecutor(),
    lambda: ProcessPoolJobExecutor(workers=2),
]


class TestFaultInjection:
    @pytest.mark.parametrize("make_executor", EXECUTORS)
    def test_crash_degrades_to_survivors(self, make_executor):
        runner = JobRunner(executor=make_executor())
        outs = runner.run(crash_on_two, [1, 2, 3])
        assert [o.ok for o in outs] == [True, False, True]
        assert "boom 2" in outs[1].error
        assert [o.result for o in outs if o.ok] == [1, 3]

    @pytest.mark.parametrize("make_executor", EXECUTORS)
    def test_crash_under_fail_policy_raises_and_cancels(self, make_executor):
        runner = JobRunner(
            executor=make_executor(), policy=FaultPolicy(mode="fail")
        )
        with pytest.raises(JobsFailedError) as err:
            runner.run(crash_on_two, [1, 2, 3])
        outs = err.value.outcomes
        assert len(outs) == 3
        assert outs[0].ok and not outs[1].ok
        assert "boom 2" in str(err.value)

    def test_fail_policy_cancels_rest_serially(self):
        runner = JobRunner(
            executor=InProcessExecutor(), policy=FaultPolicy(mode="fail")
        )
        with pytest.raises(JobsFailedError) as err:
            runner.run(crash_on_two, [1, 2, 3, 4])
        assert [o.error for o in err.value.outcomes[2:]] == [
            "cancelled (fail policy)", "cancelled (fail policy)"
        ]

    def test_hang_times_out_on_pool(self):
        runner = JobRunner(
            executor=ProcessPoolJobExecutor(workers=2),
            policy=FaultPolicy(timeout_s=1.5),
        )
        outs = runner.run(sleepy, [0.01, 30.0])
        assert outs[0].ok and outs[0].result == 0.01
        assert outs[1].timed_out and not outs[1].ok
        assert "timed out" in outs[1].error

    def test_hang_timeout_under_fail_policy_raises(self):
        runner = JobRunner(
            executor=ProcessPoolJobExecutor(workers=2),
            policy=FaultPolicy(mode="fail", timeout_s=1.5),
        )
        with pytest.raises(JobsFailedError):
            runner.run(sleepy, [0.01, 30.0])

    def test_serial_path_cannot_preempt_and_ignores_timeout(self):
        runner = JobRunner(
            executor=InProcessExecutor(),
            policy=FaultPolicy(timeout_s=0.01),
        )
        outs = runner.run(sleepy, [0.05, 0.05])
        assert all(o.ok for o in outs)
        assert not any(o.timed_out for o in outs)

    def test_unpickle_poison_fails_on_pool_succeeds_in_process(self):
        jobs = [PoisonOnUnpickle(1), PoisonOnUnpickle(2)]
        # In-process: no pickling, the payloads are fine.
        outs = JobRunner(executor=InProcessExecutor()).run(poison_value, jobs)
        assert [o.result for o in outs] == [1, 2]
        # Pool: unpickling kills the worker; every job in the batch is
        # poisoned (BrokenProcessPool), so the all-failed backstop fires.
        runner = JobRunner(executor=ProcessPoolJobExecutor(workers=2))
        with pytest.raises(JobsFailedError):
            runner.run(poison_value, jobs)

    @pytest.mark.parametrize("make_executor", EXECUTORS)
    @pytest.mark.parametrize("mode", ["degrade", "fail"])
    def test_all_failed_raises_in_every_mode(self, make_executor, mode):
        runner = JobRunner(
            executor=make_executor(), policy=FaultPolicy(mode=mode)
        )
        with pytest.raises(JobsFailedError) as err:
            runner.run(crash, [1, 2])
        assert all(not o.ok for o in err.value.outcomes)

    @pytest.mark.parametrize("make_executor", EXECUTORS)
    def test_all_failed_suppressed_for_consumer_owned_errors(
        self, make_executor
    ):
        runner = JobRunner(
            executor=make_executor(),
            policy=FaultPolicy(all_failed_raises=False),
        )
        outs = runner.run(crash, [1, 2])
        assert [o.ok for o in outs] == [False, False]

    def test_cached_survivors_suppress_all_failed(self, tmp_path):
        """All *pending* jobs failing is not a failed batch when resumed
        checkpoints already cover part of it."""
        store = ArtifactStore(str(tmp_path))
        ckpt = Checkpointing(store=store, key_fn=lambda job: f"job-{job}")
        runner = JobRunner(executor=InProcessExecutor())
        runner.run(square, [1, 2], checkpoint=ckpt)
        outs = runner.run(crash, [1, 2, 3], checkpoint=ckpt, resume=True)
        assert [o.cached for o in outs] == [True, True, False]
        assert not outs[2].ok

    def test_bad_policy_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(mode="explode")


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointing:
    def test_resume_answers_from_store_without_rerun(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        ckpt = Checkpointing(
            store=store,
            key_fn=lambda job: f"job-{job}",
            meta_fn=lambda job, result: {"job": job},
        )
        metrics = Recorder()
        runner = JobRunner(executor=InProcessExecutor(), metrics=metrics)
        runner.run(square, [2, 3], checkpoint=ckpt)
        assert store.meta("job-2") == {"job": 2}
        metrics.events.clear()
        outs = runner.run(crash, [2, 3], checkpoint=ckpt, resume=True)
        assert [o.result for o in outs] == [4, 9]
        assert all(o.cached for o in outs)
        assert metrics.names().count("job_cached") == 2
        assert "job_done" not in metrics.names()

    def test_validate_fn_rejects_foreign_artifacts(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("job-2", "not-an-int")
        ckpt = Checkpointing(
            store=store,
            key_fn=lambda job: f"job-{job}",
            validate_fn=lambda cached: isinstance(cached, int),
        )
        outs = JobRunner(executor=InProcessExecutor()).run(
            square, [2], checkpoint=ckpt, resume=True
        )
        assert not outs[0].cached and outs[0].result == 4


# ----------------------------------------------------------------------
# Metrics events and span hierarchy
# ----------------------------------------------------------------------
class TestObservability:
    def test_job_events_bracket_batch_and_split_overhead(self):
        metrics = Recorder()
        runner = JobRunner(
            executor=InProcessExecutor(), metrics=metrics, name="t"
        )
        runner.run(square, [1, 2], label_fn=lambda j: f"j{j}")
        names = metrics.names()
        assert names[0] == "job_batch_start" and names[-1] == "job_batch_end"
        assert names.count("job_done") == 2
        done = [f for e, f in metrics.events if e == "job_done"]
        assert [f["job"] for f in done] == ["j1", "j2"]
        end = metrics.events[-1][1]
        assert end["mode"] == "serial" and end["ok"] == 2
        assert end["wall_s"] >= end["execute_s"] >= 0
        assert end["schedule_s"] >= 0
        assert end["wall_s"] == pytest.approx(
            end["execute_s"] + end["schedule_s"], abs=1e-4
        )

    def test_failure_and_timeout_events(self):
        metrics = Recorder()
        runner = JobRunner(
            executor=ProcessPoolJobExecutor(workers=2),
            policy=FaultPolicy(timeout_s=1.5),
            metrics=metrics,
        )
        runner.run(sleepy, [0.01, 30.0])
        assert "job_timeout" in metrics.names()
        metrics.events.clear()
        JobRunner(executor=InProcessExecutor(), metrics=metrics).run(
            crash_on_two, [1, 2]
        )
        assert "job_failed" in metrics.names()

    def test_span_hierarchy(self):
        with tracing() as t:
            JobRunner(executor=InProcessExecutor(), name="spans").run(
                square, [1, 2, 3]
            )
        names = [s.name for s in t.spans()]
        assert names.count("jobs.run") == 1
        assert names.count("jobs.job") == 3
        run_span = next(s for s in t.spans() if s.name == "jobs.run")
        assert run_span.attrs["jobs"] == 3


# ----------------------------------------------------------------------
# make_worker_pool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_zero_workers_gives_threads(self):
        pool, kind = make_worker_pool(0)
        try:
            assert kind == "thread"
            assert pool.submit(square, 3).result() == 9
        finally:
            pool.shutdown()

    def test_positive_workers_gives_processes(self):
        pool, kind = make_worker_pool(2)
        try:
            assert kind == "process"
            assert pool.submit(square, 3).result() == 9
        finally:
            pool.shutdown()


# ----------------------------------------------------------------------
# Golden serial-vs-pool comparisons at the consumer level
# ----------------------------------------------------------------------
class TestConsumerGoldens:
    def test_soak_checkpoints_byte_identical_serial_vs_pool(self, tmp_path):
        from repro.validate import ToleranceBands
        from repro.validate.soak import CampaignConfig, soak_run

        config = CampaignConfig(
            budget=8, seed=3, shards=2, shrink_budget=20,
            bands=ToleranceBands(
                compute=0.0, memory=0.0, aux=0.0, abs_floor=0.0
            ),
        )
        renders = {}
        blobs = {}
        for mode, workers in (("serial", 1), ("pool", 2)):
            state = tmp_path / mode
            report = soak_run(config, state_dir=str(state), workers=workers)
            renders[mode] = report.render()
            blobs[mode] = {
                p.name: p.read_bytes()
                for p in sorted(state.glob("shards/*/*.pkl"))
            }
        assert renders["serial"] == renders["pool"]
        assert blobs["serial"] == blobs["pool"] and blobs["serial"]

    def test_engine_result_identical_serial_vs_pool(self):
        from repro.adg import sysadg_to_dict
        from repro.dse import DseConfig
        from repro.engine import DseEngine
        from repro.serve import canonical_dumps
        from repro.workloads import get_workload

        docs = {}
        for workers in (1, 2):
            engine = DseEngine(cache_dir=None, workers=workers)
            res = engine.explore(
                [get_workload("vecmax")],
                DseConfig(iterations=10, seed=4),
                seeds=[2, 3],
            )
            docs[workers] = (
                canonical_dumps(sysadg_to_dict(res.result.sysadg)),
                res.objective,
                res.metrics.best_seed,
            )
        assert docs[1] == docs[2]


# ----------------------------------------------------------------------
# Socket executor against a live serve worker
# ----------------------------------------------------------------------
class TestSocketExecutor:
    def test_generic_mode_requires_callable_fn(self):
        # Without a request_fn the executor ships fn itself through the
        # serve-side job op — so fn must actually be callable.
        with pytest.raises(ValueError):
            list(SocketJobExecutor().execute(None, [(0, "x")]))

    def test_dispatches_shards_to_serve_worker(self, tmp_path):
        from repro.dse import DseConfig, explore
        from repro.engine import MetricsLogger
        from repro.serve import (
            OverlayServer,
            ServeClient,
            ServeConfig,
            canonical_dumps,
            single_shot,
        )
        from repro.workloads import get_workload

        sysadg = explore(
            [get_workload("vecmax")], DseConfig(iterations=10, seed=4),
            name="vecmax",
        ).sysadg
        sock = str(tmp_path / "serve.sock")
        config = ServeConfig(
            socket_path=sock, workers=0, queue_limit=16,
            default_timeout_s=30.0, drain_timeout_s=10.0,
        )
        server = OverlayServer(config, metrics=MetricsLogger())
        server.add_overlay(sysadg)
        started = threading.Event()

        def serve_forever():
            # The executor owns its own event loop (asyncio.run), so the
            # server must live on a different thread's loop.
            async def run():
                await server.start()
                started.set()
                await server.wait_closed()

            asyncio.run(run())

        thread = threading.Thread(target=serve_forever, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        try:
            executor = SocketJobExecutor(
                socket_path=sock,
                request_fn=lambda job: {"op": job[0], "workload": job[1]},
            )
            runner = JobRunner(executor=executor)
            outs = runner.run(
                None,
                [("map", "vecmax"), ("estimate", "vecmax"),
                 ("map", "no-such-workload")],
            )
            assert executor.last_mode == "socket"
            for out, op in zip(outs[:2], ("map", "estimate")):
                assert out.ok
                assert canonical_dumps(out.result) == canonical_dumps(
                    single_shot(op, sysadg, "vecmax")
                )
            # A structured serve error degrades, never raises.
            assert not outs[2].ok and outs[2].error
        finally:
            async def stop():
                async with ServeClient(socket_path=sock) as client:
                    await client.shutdown()

            asyncio.run(stop())
            thread.join(timeout=10)
        assert not thread.is_alive()
