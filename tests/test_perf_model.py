"""Tests for the bottleneck performance model (Eq. 1-2)."""

import pytest

from repro.adg import SystemParams, general_overlay
from repro.compiler import lower
from repro.model import (
    estimate_cycles,
    estimate_ipc,
    geomean_ipc,
    preferred_binding,
    stream_demand_bytes,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def overlay():
    return general_overlay()


def estimate(name, unroll, overlay, **params):
    mdfg = lower(get_workload(name), unroll=unroll)
    binding = preferred_binding(mdfg, overlay.adg)
    p = overlay.params
    if params:
        from dataclasses import replace

        p = replace(p, **params)
    return mdfg, estimate_ipc(mdfg, binding, overlay.adg, p)


class TestStreamDemand:
    def test_vector_stream_demand(self, overlay):
        mdfg = lower(get_workload("fir"), unroll=4)
        a = next(s for s in mdfg.streams if s.array == "a")
        assert stream_demand_bytes(a, mdfg.unroll) == 4 * 8

    def test_stationary_stream_demand_is_discounted(self, overlay):
        mdfg = lower(get_workload("fir"), unroll=4)
        b = next(s for s in mdfg.streams if s.array == "b")
        # b[j] held for 32/4 firings: one 8-byte fetch per 8 cycles.
        assert stream_demand_bytes(b, mdfg.unroll) == pytest.approx(1.0)


class TestBottlenecks:
    def test_more_tiles_help_until_parallelism(self, overlay):
        mdfg = lower(get_workload("mm"), unroll=1)
        binding = preferred_binding(mdfg, overlay.adg)
        one = estimate_ipc(mdfg, binding, overlay.adg, overlay.params, num_tiles=1)
        four = estimate_ipc(mdfg, binding, overlay.adg, overlay.params, num_tiles=4)
        assert four.ipc > one.ipc

    def test_tiles_capped_by_parallelism(self, overlay):
        mdfg = lower(get_workload("channel-ext"), unroll=32)
        binding = preferred_binding(mdfg, overlay.adg)
        est = estimate_ipc(
            mdfg, binding, overlay.adg, overlay.params, num_tiles=64
        )
        assert est.tiles_used <= mdfg.tile_parallelism

    def test_memory_bound_kernel_hits_bandwidth(self, overlay):
        # vecmax streams 3 arrays with no reuse: must be bandwidth-bound.
        _, est = estimate("vecmax", 16, overlay)
        assert est.bottleneck in ("l2", "dram", "dma")
        assert est.ipc < est.insts_per_cycle * est.tiles_used

    def test_more_l2_banks_raise_l2_production(self, overlay):
        _, few = estimate("vecmax", 16, overlay, l2_banks=1)
        _, many = estimate("vecmax", 16, overlay, l2_banks=16)
        assert many.ipc >= few.ipc

    def test_dram_channels_help_streaming(self, overlay):
        _, one = estimate("accumulate", 16, overlay, l2_banks=16)
        mdfg = lower(get_workload("accumulate"), unroll=16)
        binding = preferred_binding(mdfg, overlay.adg)
        from dataclasses import replace

        p2 = replace(overlay.params, l2_banks=16, dram_channels=4)
        four = estimate_ipc(mdfg, binding, overlay.adg, p2)
        assert four.ipc >= one.ipc

    def test_compute_bound_has_no_bottleneck(self, overlay):
        # mm at unroll 1-2 with spad-resident tiles is compute bound.
        _, est = estimate("mm", 1, overlay)
        assert est.bottleneck == "none"
        assert est.ipc == pytest.approx(
            est.insts_per_cycle * est.tiles_used
        )

    def test_ipc_never_negative_or_infinite(self, overlay):
        from repro.workloads import all_workloads
        from repro.compiler import generate_variants

        for w in all_workloads():
            for mdfg in generate_variants(w).variants:
                binding = preferred_binding(mdfg, overlay.adg)
                est = estimate_ipc(mdfg, binding, overlay.adg, overlay.params)
                assert 0 <= est.ipc < float("inf"), w.name


class TestRecurrenceValue:
    def test_recurrence_variant_offloads_l2(self, overlay):
        rec = lower(get_workload("fir"), unroll=2, use_recurrence=True)
        rmw = lower(get_workload("fir"), unroll=2, use_recurrence=False)
        b_rec = preferred_binding(rec, overlay.adg)
        b_rmw = preferred_binding(rmw, overlay.adg)
        e_rec = estimate_ipc(rec, b_rec, overlay.adg, overlay.params)
        e_rmw = estimate_ipc(rmw, b_rmw, overlay.adg, overlay.params)
        # The recurrence form must not demand more L2 bandwidth.
        assert e_rec.factors.get("l2", 99) >= e_rmw.factors.get("l2", 0)


class TestCyclesAndGeomean:
    def test_cycles_inverse_to_ipc(self, overlay):
        mdfg = lower(get_workload("mm"), unroll=2)
        binding = preferred_binding(mdfg, overlay.adg)
        cycles = estimate_cycles(mdfg, binding, overlay.adg, overlay.params)
        est = estimate_ipc(mdfg, binding, overlay.adg, overlay.params)
        assert cycles == pytest.approx(mdfg.total_instructions / est.ipc)

    def test_geomean(self, overlay):
        from repro.model.perf import PerfEstimate

        ests = [
            PerfEstimate(ipc=4.0, tiles_used=1, insts_per_cycle=1, factors={}),
            PerfEstimate(ipc=16.0, tiles_used=1, insts_per_cycle=1, factors={}),
        ]
        assert geomean_ipc(ests) == pytest.approx(8.0)

    def test_geomean_empty(self):
        assert geomean_ipc([]) == 0.0

    def test_geomean_weights(self):
        from repro.model.perf import PerfEstimate

        ests = [
            PerfEstimate(ipc=4.0, tiles_used=1, insts_per_cycle=1, factors={}),
            PerfEstimate(ipc=16.0, tiles_used=1, insts_per_cycle=1, factors={}),
        ]
        heavy_first = geomean_ipc(ests, weights=[3, 1])
        assert heavy_first < 8.0
