"""Tests for repro.validate.soak / promote: sharded campaigns, resume,
fault isolation, regression promotion, and the ``repro soak`` CLI."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.engine import MetricsLogger
from repro.validate import ToleranceBands
from repro.validate.corpus import case_key
from repro.validate.promote import (
    load_promoted,
    promote_failures,
    replay_promoted,
    replay_promoted_dir,
)
from repro.validate.soak import (
    CampaignConfig,
    SoakError,
    soak_run,
)

#: Flag every model/sim gap: guarantees the fixed seeds below produce
#: divergences to dedupe, promote, and replay.
ZERO_TOL = ToleranceBands(compute=0.0, memory=0.0, aux=0.0, abs_floor=0.0)


def _config(shards, budget=12, seed=3):
    return CampaignConfig(
        budget=budget, seed=seed, shards=shards, bands=ZERO_TOL,
        shrink_budget=20,
    )


@pytest.fixture(scope="module")
def serial_report():
    return soak_run(_config(shards=1), jobs=1)


class TestShardDeterminism:
    def test_campaign_key_ignores_shard_count(self):
        assert _config(1).campaign_key() == _config(4).campaign_key()

    def test_shard_ranges_cover_budget_contiguously(self):
        ranges = _config(shards=5, budget=12).shard_ranges()
        assert sum(c for _, c in ranges) == 12
        assert ranges[0][0] == 0
        for (s0, c0), (s1, _) in zip(ranges, ranges[1:]):
            assert s1 == s0 + c0

    def test_sharded_report_is_byte_identical_to_serial(self, serial_report):
        sharded = soak_run(_config(shards=4), jobs=1)
        assert sharded.render() == serial_report.render()
        assert [f.failure_key for f in sharded.failures] == [
            f.failure_key for f in serial_report.failures
        ]
        assert [case_key(f.case) for f in sharded.failures] == [
            case_key(f.case) for f in serial_report.failures
        ]

    def test_dedup_keeps_smallest_witness_per_key(self, serial_report):
        assert serial_report.raw_failures > len(serial_report.failures)
        keys = [f.failure_key for f in serial_report.failures]
        assert keys == sorted(keys) and len(set(keys)) == len(keys)

    def test_pool_path_matches_serial(self, serial_report):
        pooled = soak_run(_config(shards=3), jobs=2)
        assert pooled.render() == serial_report.render()


class TestFaultIsolation:
    def test_killed_shard_degrades_not_fails(self, serial_report):
        report = soak_run(_config(shards=3), jobs=1, inject_crash_shards=[1])
        assert report.crashed_shards == [1]
        assert not report.complete and not report.ok
        assert report.cases_run < serial_report.cases_run
        assert "degraded: shard failures" in report.render()

    def test_all_shards_crashed_raises(self):
        with pytest.raises(SoakError):
            soak_run(
                _config(shards=2), jobs=1, inject_crash_shards=[0, 1]
            )

    def test_crash_then_resume_reaches_full_coverage(
        self, tmp_path, serial_report
    ):
        state = str(tmp_path / "state")
        config = _config(shards=3)
        crashed = soak_run(
            config, state_dir=state, jobs=1, inject_crash_shards=[1]
        )
        assert crashed.crashed_shards == [1]
        resumed = soak_run(config, state_dir=state, jobs=1, resume=True)
        assert resumed.cached_shards == [0, 2]   # only shard 1 recomputed
        assert resumed.crashed_shards == []
        assert resumed.render() == serial_report.render()

    def test_resume_skips_all_finished_shards(self, tmp_path):
        state = str(tmp_path / "state")
        config = _config(shards=2, budget=8)
        events = []

        class Recorder(MetricsLogger):
            def emit(self, event, **fields):
                events.append(event)
                super().emit(event, **fields)

        first = soak_run(config, state_dir=state, jobs=1)
        events.clear()
        second = soak_run(
            config, state_dir=state, jobs=1, resume=True, metrics=Recorder()
        )
        assert second.cached_shards == [0, 1]
        assert events.count("shard_cached") == 2
        assert "shard_done" not in events
        assert second.render() == first.render()


class TestPromotion:
    @pytest.fixture()
    def promoted_dir(self, tmp_path, serial_report):
        dest = str(tmp_path / "regression")
        names = promote_failures(serial_report.failures, dest, ZERO_TOL)
        assert names
        return dest

    def test_dry_run_names_without_writing(self, tmp_path, serial_report):
        dest = str(tmp_path / "dry")
        names = promote_failures(
            serial_report.failures, dest, ZERO_TOL, dry_run=True
        )
        assert len(names) == len(serial_report.failures)
        assert not os.path.exists(dest)

    def test_promoted_docs_are_strict_deterministic_json(
        self, promoted_dir, serial_report
    ):
        cases_dir = os.path.join(promoted_dir, "cases")
        files = sorted(os.listdir(cases_dir))
        assert len(files) == len(serial_report.failures)
        for name in files:
            doc = load_promoted(os.path.join(cases_dir, name))
            assert doc["expected"] == doc["failure_key"]
            json.dumps(doc, allow_nan=False)
        # Re-promotion lands on identical bytes.
        before = {
            n: open(os.path.join(cases_dir, n), "rb").read() for n in files
        }
        promote_failures(serial_report.failures, promoted_dir, ZERO_TOL)
        for name, content in before.items():
            assert open(os.path.join(cases_dir, name), "rb").read() == content

    def test_replay_matches_expected_key(self, promoted_dir):
        rows = replay_promoted_dir(promoted_dir)
        assert rows
        assert all(actual == expected for _, expected, actual in rows)

    def test_replay_detects_behaviour_change(self, promoted_dir):
        cases_dir = os.path.join(promoted_dir, "cases")
        name = sorted(os.listdir(cases_dir))[0]
        path = os.path.join(cases_dir, name)
        doc = load_promoted(path)
        assert replay_promoted(doc) == doc["expected"]
        # Loosen the recorded bands: the divergence vanishes, so replay
        # reports a changed (passing) behaviour.
        doc["bands"] = {"compute": 10.0, "memory": 10.0, "aux": 10.0,
                       "abs_floor": 1e9}
        assert replay_promoted(doc) is None

    def test_promoted_cases_collected_by_pytest(self, promoted_dir):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", promoted_dir],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "passed" in proc.stdout


class TestSoakCli:
    def test_reports_byte_identical_across_shard_counts(self, tmp_path, capsys):
        paths = []
        for shards in ("1", "4"):
            report = tmp_path / f"triage-{shards}.txt"
            rc = main(
                ["soak", "--budget", "12", "--seed", "3",
                 "--shards", shards, "--jobs", "1",
                 "--rel-tol", "0", "--abs-floor", "0",
                 "--shrink-budget", "20",
                 "--corpus", str(tmp_path / f"corpus-{shards}"),
                 "--report", str(report)]
            )
            capsys.readouterr()
            assert rc == 1          # fresh corpus: failures are new
            paths.append(report)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_resume_exits_zero_on_known_failures(self, tmp_path, capsys):
        argv = [
            "soak", "--budget", "8", "--seed", "3", "--shards", "2",
            "--jobs", "1", "--rel-tol", "0", "--abs-floor", "0",
            "--shrink-budget", "20",
            "--state", str(tmp_path / "state"),
            "--corpus", str(tmp_path / "corpus"),
        ]
        assert main(argv) == 1
        capsys.readouterr()
        rc = main(argv + ["--resume"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resumed: shard(s) [0, 1]" in out
        assert "new failures: 0" in out

    def test_promote_then_validate_regression(self, tmp_path, capsys):
        dest = str(tmp_path / "regression")
        rc = main(
            ["soak", "--budget", "8", "--seed", "3", "--shards", "2",
             "--jobs", "1", "--rel-tol", "0", "--abs-floor", "0",
             "--shrink-budget", "20",
             "--corpus", str(tmp_path / "corpus"),
             "--promote", dest]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "promoted" in out
        rc = main(["validate", "--regression", dest])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reproduce their recorded failure key" in out

    def test_promote_dry_run_writes_nothing(self, tmp_path, capsys):
        dest = str(tmp_path / "regression")
        main(
            ["soak", "--budget", "8", "--seed", "3", "--shards", "2",
             "--jobs", "1", "--rel-tol", "0", "--abs-floor", "0",
             "--shrink-budget", "20", "--promote", dest, "--dry-run"]
        )
        out = capsys.readouterr().out
        assert "would promote" in out
        assert not os.path.exists(dest)

    def test_metrics_stream_brackets_campaign(self, tmp_path, capsys):
        metrics = tmp_path / "events.jsonl"
        main(
            ["soak", "--budget", "8", "--seed", "3", "--shards", "2",
             "--jobs", "1", "--rel-tol", "0", "--abs-floor", "0",
             "--shrink-budget", "20", "--metrics", str(metrics)]
        )
        capsys.readouterr()
        events = [
            json.loads(line)["event"]
            for line in metrics.read_text().strip().splitlines()
        ]
        assert events[0] == "soak_start"
        assert events[-1] == "soak_done"
        assert events.count("shard_done") == 2
        assert "soak_merged" in events
