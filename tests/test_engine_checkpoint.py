"""Checkpoint/resume: a killed DSE run resumes bit-identically."""

import dataclasses

import pytest

from repro.adg import adg_to_dict
from repro.dse import DseConfig, Explorer
from repro.engine import (
    CheckpointManager,
    DseEngine,
    config_fingerprint,
    job_key,
    load_checkpoint,
    save_checkpoint,
)
from repro.workloads import get_workload


FIR = [get_workload("fir")]
CFG = DseConfig(iterations=36, seed=2)


def assert_results_equal(a, b):
    """Bit-identical DseResults (everything the trajectory determines)."""
    assert a.choice.objective == b.choice.objective
    assert a.choice.params == b.choice.params
    assert a.stats == b.stats
    assert a.history == b.history
    assert a.modeled_seconds == b.modeled_seconds
    assert adg_to_dict(a.sysadg.adg) == adg_to_dict(b.sysadg.adg)


class TestExplorerResume:
    def test_resume_matches_uninterrupted(self):
        straight = Explorer(FIR, CFG, name="fir").run()

        snaps = []
        interrupted = Explorer(FIR, CFG, name="fir")
        interrupted.run(checkpoint_every=12, checkpoint_sink=snaps.append)
        assert len(snaps) == CFG.iterations // 12
        mid = snaps[1]  # the iteration-24 snapshot, as if killed there
        assert mid.iteration == 24

        resumed = Explorer(FIR, CFG, name="fir").run(resume=mid)
        assert_results_equal(resumed, straight)

    def test_resume_after_pickle_round_trip(self, tmp_path):
        """A snapshot that crossed a process boundary (via the checkpoint
        file) must restore just as faithfully as a live one."""
        straight = Explorer(FIR, CFG, name="fir").run()

        snaps = []
        Explorer(FIR, CFG, name="fir").run(
            checkpoint_every=12, checkpoint_sink=snaps.append
        )
        path = tmp_path / "seed-2.ckpt"
        save_checkpoint(path, snaps[-1])
        loaded = load_checkpoint(path)
        assert loaded is not None and loaded.iteration == snaps[-1].iteration

        resumed = Explorer(FIR, CFG, name="fir").run(resume=loaded)
        assert_results_equal(resumed, straight)

    def test_on_iteration_streams_progress(self):
        seen = []
        Explorer(FIR, CFG, name="fir").run(
            on_iteration=lambda i, obj: seen.append((i, obj))
        )
        # Fires once per evaluated candidate (abandoned proposals skip it).
        indices = [i for i, _ in seen]
        assert indices == sorted(set(indices))
        assert indices and 1 <= indices[0] and indices[-1] <= CFG.iterations
        assert all(obj > 0 for _, obj in seen)


class TestCheckpointFiles:
    def test_missing_file_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.ckpt") is None

    def test_corrupt_file_is_none(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"garbage")
        assert load_checkpoint(path) is None

    def test_wrong_type_is_none(self, tmp_path):
        import pickle

        path = tmp_path / "weird.ckpt"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        assert load_checkpoint(path) is None

    def test_stale_config_fingerprint_rejected(self, tmp_path):
        snaps = []
        Explorer(FIR, CFG, name="fir").run(
            checkpoint_every=12, checkpoint_sink=snaps.append
        )
        state = snaps[0]
        state.config_fingerprint = config_fingerprint(CFG)
        path = tmp_path / "seed-2.ckpt"
        save_checkpoint(path, state)
        assert load_checkpoint(path, config_fingerprint(CFG)) is not None
        other = config_fingerprint(dataclasses.replace(CFG, iterations=99))
        assert load_checkpoint(path, other) is None

    def test_manager_round_trip_and_discard(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        snaps = []
        Explorer(FIR, CFG, name="fir").run(
            checkpoint_every=18, checkpoint_sink=snaps.append
        )
        mgr.save("k" * 64, 2, snaps[0])
        assert mgr.load("k" * 64, 2) is not None
        assert mgr.load("k" * 64, 3) is None
        mgr.discard("k" * 64)
        assert mgr.load("k" * 64, 2) is None


class TestEngineResume:
    def test_kill_then_resume_reaches_uninterrupted_objective(self, tmp_path):
        """Simulate a mid-run kill: run the explorer until its checkpoint
        sink aborts the process, leave the last snapshot where the engine
        expects it, then ``explore(resume=True)`` — the finished job must
        equal a run that was never interrupted."""
        eng = DseEngine(cache_dir=str(tmp_path), checkpoint_every=12)
        key = job_key(FIR, CFG, [CFG.seed])
        cfg_key = config_fingerprint(CFG)

        class Killed(RuntimeError):
            pass

        def killing_sink(state):
            state.config_fingerprint = cfg_key
            eng.checkpoints.save(key, CFG.seed, state)
            if state.iteration >= 24:
                raise Killed("simulated kill -9")

        with pytest.raises(Killed):
            Explorer(FIR, CFG, name="fir").run(
                checkpoint_every=12, checkpoint_sink=killing_sink
            )
        assert eng.checkpoints.load(key, CFG.seed, cfg_key) is not None

        res = eng.explore(FIR, CFG, name="fir", resume=True)
        assert not res.from_cache
        assert res.metrics.resumed_seeds == [CFG.seed]
        assert res.outcomes[0].resumed

        straight = DseEngine().explore(FIR, CFG, name="fir")
        assert_results_equal(res.result, straight.result)

    def test_completed_job_discards_checkpoints(self, tmp_path):
        eng = DseEngine(cache_dir=str(tmp_path), checkpoint_every=12)
        res = eng.explore(FIR, CFG, name="fir")
        assert not res.from_cache
        # run_seed_job checkpointed along the way; success cleaned them up.
        assert eng.checkpoints.load(res.key, CFG.seed) is None
        assert not (eng.checkpoints.root / res.key).exists()

    def test_resume_flag_without_checkpoint_is_fresh_run(self, tmp_path):
        eng = DseEngine(cache_dir=str(tmp_path))
        res = eng.explore(FIR, CFG, name="fir", resume=True)
        assert not res.from_cache
        assert res.metrics.resumed_seeds == []
        straight = DseEngine().explore(FIR, CFG, name="fir")
        assert_results_equal(res.result, straight.result)
