"""Tests for the mapping advisor (Q5's re-DSE recommendation feature)."""

import pytest

from repro.adg import general_overlay, mesh_adg, caps_for_dtype
from repro.compiler import REDSE_GAIN_THRESHOLD, advise, generate_variants
from repro.ir import F64, I16, I64, Op
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def overlay():
    return general_overlay()


class TestAdvise:
    def test_wellserved_workload_not_flagged(self, overlay):
        # vecmax's best variants all map on the General overlay.
        advice = advise(get_workload("vecmax"), overlay.adg, overlay.params)
        assert advice.best_mapped is not None
        assert not advice.recommend_redse
        assert advice.potential_gain == 1.0

    def test_bandwidth_bound_workload_not_flagged(self, overlay):
        # stencil-2d's wide variants need 9 wide ports and only u1 maps —
        # but on this overlay even the wide variants would be L2-bound, so
        # honest advice is that re-specializing would not pay.
        advice = advise(get_workload("stencil-2d"), overlay.adg, overlay.params)
        assert advice.best_mapped is not None
        assert advice.best_mapped.variant == "u1"
        assert any(not v.mapped for v in advice.verdicts)
        assert not advice.recommend_redse

    def test_port_starved_workload_flagged(self):
        # A compute-capable but port-starved overlay: bgr2grey's wide
        # variants would be much faster but cannot find ports.
        from repro.adg import SystemParams, mesh_adg

        adg = mesh_adg(
            2,
            3,
            caps=caps_for_dtype(I16, (Op.ADD, Op.MUL, Op.SHR)),
            width_bits=512,
            in_port_widths=(2, 2, 2, 2),
            out_port_widths=(2, 2),
        )
        params = SystemParams(l2_banks=16, noc_bytes_per_cycle=64)
        advice = advise(get_workload("bgr2grey"), adg, params)
        assert advice.best_mapped is not None
        assert advice.potential_gain >= REDSE_GAIN_THRESHOLD
        assert advice.recommend_redse

    def test_unmappable_workload_flagged(self):
        # An integer-only fabric cannot host f64 mm at all.
        adg = mesh_adg(2, 2, caps=caps_for_dtype(I64, (Op.ADD,)))
        from repro.adg import SystemParams

        advice = advise(get_workload("mm"), adg, SystemParams())
        assert advice.best_mapped is None
        assert advice.recommend_redse
        assert advice.potential_gain == float("inf")

    def test_failure_reasons_are_strings(self, overlay):
        advice = advise(get_workload("stencil-2d"), overlay.adg, overlay.params)
        failed = [v for v in advice.verdicts if not v.mapped]
        assert failed
        for verdict in failed:
            assert verdict.failure_reason
            assert "port" in verdict.failure_reason or "PE" in (
                verdict.failure_reason
            ) or "route" in verdict.failure_reason

    def test_summary_readable(self, overlay):
        advice = advise(get_workload("stencil-2d"), overlay.adg, overlay.params)
        text = advice.summary()
        assert "stencil-2d" in text
        assert "FAIL" in text and "OK" in text

    def test_summary_flags_unmappable(self):
        from repro.adg import SystemParams

        adg = mesh_adg(2, 2, caps=caps_for_dtype(I64, (Op.ADD,)))
        advice = advise(get_workload("mm"), adg, SystemParams())
        assert "rerun the DSE" in advice.summary()

    def test_accepts_precompiled_variants(self, overlay):
        variants = generate_variants(get_workload("fir"))
        advice = advise(
            get_workload("fir"), overlay.adg, overlay.params, variants=variants
        )
        assert len(advice.verdicts) == len(variants.variants)
