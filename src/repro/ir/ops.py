"""Operation vocabulary of the compute fabric.

Each :class:`Op` names an arithmetic/logic operation a processing element may
implement.  A *functional-unit capability* is an (op, dtype-class) pair — see
:mod:`repro.adg.capability` — so the same ``MUL`` op yields distinct FUs for
``i16`` versus ``f64``.
"""

from __future__ import annotations

import enum


class Op(enum.Enum):
    """Primitive operations in the dataflow ISA."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    SQRT = "sqrt"
    MAX = "max"
    MIN = "min"
    ABS = "abs"
    SHL = "shl"
    SHR = "shr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    CMP = "cmp"
    SELECT = "select"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Ops taking a single value operand.
UNARY_OPS = frozenset({Op.SQRT, Op.ABS})

#: Ops taking two value operands.
BINARY_OPS = frozenset(
    {
        Op.ADD,
        Op.SUB,
        Op.MUL,
        Op.DIV,
        Op.MAX,
        Op.MIN,
        Op.SHL,
        Op.SHR,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.CMP,
    }
)

#: Ops taking three operands (predicate, then, else).
TERNARY_OPS = frozenset({Op.SELECT})

#: Ops that are associative+commutative, eligible for reduction trees.
REDUCIBLE_OPS = frozenset({Op.ADD, Op.MUL, Op.MAX, Op.MIN, Op.AND, Op.OR, Op.XOR})

#: Ops that only exist for integer datatypes.
INT_ONLY_OPS = frozenset({Op.SHL, Op.SHR, Op.AND, Op.OR, Op.XOR})

#: Ops that only exist for floating-point datatypes.
FLOAT_ONLY_OPS = frozenset({Op.SQRT})


def arity(op: Op) -> int:
    """Number of value operands ``op`` consumes."""
    if op in UNARY_OPS:
        return 1
    if op in BINARY_OPS:
        return 2
    if op in TERNARY_OPS:
        return 3
    raise ValueError(f"op {op} has no defined arity")


#: Pipeline latency (cycles) of each op on the fabric; used for delay-FIFO
#: balancing and the simulator.  Values follow typical FPGA IP latencies.
OP_LATENCY = {
    Op.ADD: 1,
    Op.SUB: 1,
    Op.MUL: 3,
    Op.DIV: 12,
    Op.SQRT: 16,
    Op.MAX: 1,
    Op.MIN: 1,
    Op.ABS: 1,
    Op.SHL: 1,
    Op.SHR: 1,
    Op.AND: 1,
    Op.OR: 1,
    Op.XOR: 1,
    Op.CMP: 1,
    Op.SELECT: 1,
}


def op_latency(op: Op, is_float: bool) -> int:
    """Latency in cycles of ``op``; float variants are deeper pipelines."""
    base = OP_LATENCY[op]
    if is_float and op in (Op.ADD, Op.SUB, Op.MAX, Op.MIN, Op.CMP):
        return base + 2  # FP add/compare pipelines are deeper than int
    if is_float and op is Op.MUL:
        return base + 2
    if is_float and op is Op.DIV:
        return base + 8
    return base
