"""Expression trees for the workload IR.

Two expression families exist:

* **Index expressions** (:class:`Affine`, :class:`IndirectIndex`) describe
  *where* in an array an access lands, as a function of loop variables.  The
  compiler's reuse analysis (Section IV-B of the paper) operates entirely on
  these.
* **Value expressions** (:class:`Load`, :class:`Const`, :class:`BinOp`,
  :class:`UnOp`, :class:`Select`, :class:`IterValue`) describe *what* is
  computed.  The compiler slices these into streams plus a compute dataflow
  graph.

Affine expressions support natural construction via operator overloading on
:class:`LoopVar`:  ``a[i * 32 + j + 1]`` builds ``Affine({i:32, j:1}, 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

from .ops import Op, arity


class IndexExpr:
    """Base class for array index expressions."""


@dataclass(frozen=True)
class Affine(IndexExpr):
    """A linear combination of loop variables plus a constant.

    Attributes:
        coeffs: mapping from loop-variable name to integer coefficient.
            Variables with coefficient 0 are dropped at construction.
        const: the constant offset.
    """

    coeffs: Tuple[Tuple[str, int], ...]
    const: int = 0

    @staticmethod
    def of(coeffs: Mapping[str, int], const: int = 0) -> "Affine":
        items = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return Affine(items, const)

    @property
    def coeff_map(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def variables(self) -> Tuple[str, ...]:
        return tuple(v for v, _ in self.coeffs)

    def involves(self, var: str) -> bool:
        return any(v == var for v, _ in self.coeffs)

    def coefficient(self, var: str) -> int:
        return self.coeff_map.get(var, 0)

    def shift(self, delta: int) -> "Affine":
        """Return this expression with ``delta`` added to the constant."""
        return Affine(self.coeffs, self.const + delta)

    def substitute(self, var: str, value: int) -> "Affine":
        """Fix ``var`` to a constant ``value`` and fold it into the offset."""
        coeffs = self.coeff_map
        c = coeffs.pop(var, 0)
        return Affine.of(coeffs, self.const + c * value)

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a full assignment of loop variables."""
        return self.const + sum(c * env[v] for v, c in self.coeffs)

    def __add__(self, other: Union["Affine", "LoopVar", int]) -> "Affine":
        if isinstance(other, int):
            return self.shift(other)
        if isinstance(other, LoopVar):
            other = as_affine(other)
        if isinstance(other, Affine):
            merged = self.coeff_map
            for v, c in other.coeffs:
                merged[v] = merged.get(v, 0) + c
            return Affine.of(merged, self.const + other.const)
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: Union["Affine", "LoopVar", int]) -> "Affine":
        if isinstance(other, int):
            return self.shift(-other)
        if isinstance(other, LoopVar):
            other = as_affine(other)
        if isinstance(other, Affine):
            return self + (other * -1)
        return NotImplemented

    def __mul__(self, factor: int) -> "Affine":
        if not isinstance(factor, int):
            return NotImplemented
        return Affine.of({v: c * factor for v, c in self.coeffs}, self.const * factor)

    __rmul__ = __mul__

    def __str__(self) -> str:
        parts = [f"{c}*{v}" if c != 1 else v for v, c in self.coeffs]
        if self.const or not parts:
            parts.append(str(self.const))
        return "+".join(parts)


@dataclass(frozen=True)
class IndirectIndex(IndexExpr):
    """An indirect index ``base_array[affine]`` used as ``a[b[i]]``.

    Per the paper's simplifying assumptions the index stream ``b`` is linear
    (analyzable with affine techniques) and the indirected accesses are
    treated as uniformly distributed over the target array.
    """

    index_array: str
    index: Affine

    def variables(self) -> Tuple[str, ...]:
        return self.index.variables()

    def involves(self, var: str) -> bool:
        return self.index.involves(var)

    def __str__(self) -> str:
        return f"{self.index_array}[{self.index}]"


def as_affine(value: Union["LoopVar", Affine, int]) -> Affine:
    """Coerce a loop variable or integer into an :class:`Affine`."""
    if isinstance(value, Affine):
        return value
    if isinstance(value, LoopVar):
        return Affine.of({value.name: 1})
    if isinstance(value, int):
        return Affine.of({}, value)
    raise TypeError(f"cannot treat {value!r} as an affine index expression")


class Expr:
    """Base class for value expressions; supports operator overloading."""

    def _binop(self, op: Op, other: "ExprLike", swap: bool = False) -> "BinOp":
        rhs = as_expr(other)
        return BinOp(op, rhs, self) if swap else BinOp(op, self, rhs)

    def __add__(self, other: "ExprLike") -> "BinOp":
        return self._binop(Op.ADD, other)

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return self._binop(Op.ADD, other, swap=True)

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return self._binop(Op.SUB, other)

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return self._binop(Op.SUB, other, swap=True)

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return self._binop(Op.MUL, other)

    def __rmul__(self, other: "ExprLike") -> "BinOp":
        return self._binop(Op.MUL, other, swap=True)

    def __truediv__(self, other: "ExprLike") -> "BinOp":
        return self._binop(Op.DIV, other)

    def __rtruediv__(self, other: "ExprLike") -> "BinOp":
        return self._binop(Op.DIV, other, swap=True)

    def __rshift__(self, other: "ExprLike") -> "BinOp":
        return self._binop(Op.SHR, other)

    def __lshift__(self, other: "ExprLike") -> "BinOp":
        return self._binop(Op.SHL, other)


ExprLike = Union[Expr, int, float]


def as_expr(value: ExprLike) -> Expr:
    """Coerce numbers to :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot treat {value!r} as a value expression")


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant operand."""

    value: float

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class IterValue(Expr):
    """A loop-variable used as a *value* (maps to the Generate engine)."""

    var: str

    def __str__(self) -> str:
        return f"iter({self.var})"


@dataclass(frozen=True)
class Load(Expr):
    """A read of ``array[index]``; becomes a read stream + input port."""

    array: str
    index: IndexExpr

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True)
class BinOp(Expr):
    op: Op
    lhs: Expr
    rhs: Expr

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class UnOp(Expr):
    op: Op
    operand: Expr

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class Select(Expr):
    """Predicated selection ``pred ? then : other`` (dataflow if-conversion)."""

    pred: Expr
    then: Expr
    other: Expr

    def __str__(self) -> str:
        return f"select({self.pred}, {self.then}, {self.other})"


def sqrt(value: ExprLike) -> UnOp:
    return UnOp(Op.SQRT, as_expr(value))


def vabs(value: ExprLike) -> UnOp:
    return UnOp(Op.ABS, as_expr(value))


def vmax(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp(Op.MAX, as_expr(a), as_expr(b))


def vmin(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp(Op.MIN, as_expr(a), as_expr(b))


def compare(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp(Op.CMP, as_expr(a), as_expr(b))


@dataclass(frozen=True)
class LoopVar:
    """A loop induction variable, usable to build affine index expressions."""

    name: str

    def __add__(self, other) -> Affine:
        return as_affine(self) + as_affine(other)

    __radd__ = __add__

    def __sub__(self, other) -> Affine:
        return as_affine(self) - as_affine(other)

    def __mul__(self, factor: int) -> Affine:
        return as_affine(self) * factor

    __rmul__ = __mul__

    def __str__(self) -> str:
        return self.name


def walk(expr: Expr):
    """Yield every node of a value expression tree, pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk(expr.lhs)
        yield from walk(expr.rhs)
    elif isinstance(expr, UnOp):
        yield from walk(expr.operand)
    elif isinstance(expr, Select):
        yield from walk(expr.pred)
        yield from walk(expr.then)
        yield from walk(expr.other)


def loads_in(expr: Expr) -> Tuple[Load, ...]:
    """All :class:`Load` leaves of ``expr`` in deterministic order."""
    return tuple(node for node in walk(expr) if isinstance(node, Load))


def count_ops(expr: Expr) -> Dict[Op, int]:
    """Histogram of operations used by ``expr``."""
    counts: Dict[Op, int] = {}
    for node in walk(expr):
        if isinstance(node, BinOp):
            counts[node.op] = counts.get(node.op, 0) + 1
        elif isinstance(node, UnOp):
            counts[node.op] = counts.get(node.op, 0) + 1
        elif isinstance(node, Select):
            counts[Op.SELECT] = counts.get(Op.SELECT, 0) + 1
    return counts
