"""Workload container: arrays, loop nests, statements, pragmas.

A :class:`Workload` is the IR-level equivalent of one ``#pragma dsa config``
region of C code in the paper: a perfect (or near-perfect) loop nest whose
innermost body reads and writes restrict-qualified arrays through affine (or
single-level indirect) index expressions.

Workloads are built through the fluent :class:`WorkloadBuilder` API::

    wb = WorkloadBuilder("fir", suite="dsp", dtype=F64)
    a = wb.array("a", 255)
    b = wb.array("b", 128)
    c = wb.array("c", 128)
    io = wb.loop("io", 4)
    j = wb.loop("j", 128)
    ii = wb.loop("ii", 32)
    wb.assign(c[io * 32 + ii], c[io * 32 + ii] + a[io * 32 + ii + j] * b[j])
    fir = wb.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .dtypes import DType
from .expr import (
    Affine,
    Expr,
    IndexExpr,
    IndirectIndex,
    Load,
    LoopVar,
    as_affine,
    as_expr,
    count_ops,
    loads_in,
    walk,
)
from .ops import Op


class WorkloadError(ValueError):
    """Raised when a workload fails validation."""


@dataclass(frozen=True)
class Loop:
    """One loop level of the nest (outermost first in the workload).

    Attributes:
        var: induction-variable name.
        trip: trip count.  For variable-trip loops this is the *maximum*
            trip count; ``variable_trip`` marks the loop as data-dependent,
            which matters for the HLS baseline (Table IV) but not for the
            decoupled-spatial ISA, which supports them natively.
        parallel: whether iterations are independent (safe to unroll /
            partition across tiles).
    """

    var: str
    trip: int
    variable_trip: bool = False
    parallel: bool = True

    @property
    def effective_trip(self) -> float:
        """Average trip count; variable-trip loops run about half their max
        (triangular iteration spaces, the common case in cholesky/solver)."""
        return self.trip / 2.0 if self.variable_trip else float(self.trip)


@dataclass(frozen=True)
class ArrayDecl:
    """A named array operand of the workload.

    Attributes:
        name: array identifier.
        size: number of elements.
        dtype: element type (defaults to the workload dtype).
    """

    name: str
    size: int
    dtype: Optional[DType] = None

    def __getitem__(self, index) -> Load:
        return Load(self.name, _coerce_index(index))


def _coerce_index(index) -> IndexExpr:
    if isinstance(index, IndexExpr):
        return index
    if isinstance(index, Load):
        # a[b[i]] — the inner Load's own index must be affine.
        if not isinstance(index.index, Affine):
            raise WorkloadError("only one level of indirection is supported")
        return IndirectIndex(index.array, index.index)
    return as_affine(index)


@dataclass(frozen=True)
class Statement:
    """One assignment in the innermost loop body.

    ``reduction`` marks ``target op= expr`` updates whose target does not vary
    with the innermost loop — these need an accumulator, reduction tree, or
    the recurrence stream engine when vectorized.
    """

    target_array: str
    target_index: IndexExpr
    expr: Expr
    reduction_op: Optional[Op] = None

    @property
    def is_reduction(self) -> bool:
        return self.reduction_op is not None


@dataclass(frozen=True)
class Pragmas:
    """The ``#pragma dsa`` annotations of the region (Section II-B)."""

    config: bool = True
    decouple: bool = True


@dataclass(frozen=True)
class Workload:
    """A validated decoupled-spatial compilation region."""

    name: str
    suite: str
    dtype: DType
    loops: Tuple[Loop, ...]
    statements: Tuple[Statement, ...]
    arrays: Tuple[ArrayDecl, ...]
    pragmas: Pragmas = Pragmas()
    size_desc: str = ""

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    @property
    def innermost(self) -> Loop:
        return self.loops[-1]

    @property
    def loop_vars(self) -> Tuple[str, ...]:
        return tuple(l.var for l in self.loops)

    def loop(self, var: str) -> Loop:
        for l in self.loops:
            if l.var == var:
                return l
        raise KeyError(f"no loop {var!r} in workload {self.name}")

    def loop_depth(self, var: str) -> int:
        """Nest depth of ``var`` (0 = outermost)."""
        return self.loop_vars.index(var)

    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"no array {name!r} in workload {self.name}")

    def array_dtype(self, name: str) -> DType:
        decl = self.array(name)
        return decl.dtype if decl.dtype is not None else self.dtype

    @property
    def trip_product(self) -> int:
        result = 1
        for l in self.loops:
            result *= l.trip
        return result

    @property
    def effective_trip_product(self) -> float:
        result = 1.0
        for l in self.loops:
            result *= l.effective_trip
        return result

    @property
    def has_variable_trip(self) -> bool:
        return any(l.variable_trip for l in self.loops)

    # ------------------------------------------------------------------
    # Op accounting (Table II's "#m,a,d" columns come from the best DFG,
    # i.e. after unrolling; these are the per-iteration scalar counts.)
    # ------------------------------------------------------------------
    def op_counts(self) -> Dict[Op, int]:
        counts: Dict[Op, int] = {}
        for stmt in self.statements:
            for op, n in count_ops(stmt.expr).items():
                counts[op] = counts.get(op, 0) + n
        return counts

    def compute_op_count(self) -> int:
        return sum(self.op_counts().values())

    def memory_op_count(self) -> int:
        """Loads + stores per innermost iteration."""
        loads = sum(len(loads_in(s.expr)) for s in self.statements)
        return loads + len(self.statements)

    # ------------------------------------------------------------------
    # Access helpers used by the reuse analyzer
    # ------------------------------------------------------------------
    def all_accesses(self) -> List[Tuple[str, IndexExpr, bool]]:
        """Every (array, index, is_write) access of the region."""
        out: List[Tuple[str, IndexExpr, bool]] = []
        for stmt in self.statements:
            for load in loads_in(stmt.expr):
                out.append((load.array, load.index, False))
                if isinstance(load.index, IndirectIndex):
                    out.append((load.index.index_array, load.index.index, False))
            out.append((stmt.target_array, stmt.target_index, True))
            if isinstance(stmt.target_index, IndirectIndex):
                out.append(
                    (stmt.target_index.index_array, stmt.target_index.index, False)
                )
        return out

    def footprint_bytes(self) -> int:
        """Total bytes of all declared arrays."""
        return sum(a.size * self.array_dtype(a.name).bytes for a in self.arrays)

    def validate(self) -> None:
        """Check internal consistency; raises :class:`WorkloadError`."""
        if not self.loops:
            raise WorkloadError(f"{self.name}: workload has no loops")
        if not self.statements:
            raise WorkloadError(f"{self.name}: workload has no statements")
        seen_vars = set()
        for l in self.loops:
            if l.trip <= 0:
                raise WorkloadError(f"{self.name}: loop {l.var} trip {l.trip} <= 0")
            if l.var in seen_vars:
                raise WorkloadError(f"{self.name}: duplicate loop var {l.var}")
            seen_vars.add(l.var)
        array_names = {a.name for a in self.arrays}
        if len(array_names) != len(self.arrays):
            raise WorkloadError(f"{self.name}: duplicate array declarations")
        for array, index, _ in self.all_accesses():
            if array not in array_names:
                raise WorkloadError(f"{self.name}: access to undeclared array {array}")
            affine = index.index if isinstance(index, IndirectIndex) else index
            if isinstance(affine, Affine):
                for var in affine.variables():
                    if var not in seen_vars:
                        raise WorkloadError(
                            f"{self.name}: index uses unknown loop var {var}"
                        )


class WorkloadBuilder:
    """Fluent builder producing validated :class:`Workload` objects."""

    def __init__(self, name: str, suite: str, dtype: DType, size_desc: str = ""):
        self._name = name
        self._suite = suite
        self._dtype = dtype
        self._size_desc = size_desc
        self._loops: List[Loop] = []
        self._arrays: List[ArrayDecl] = []
        self._statements: List[Statement] = []
        self._pragmas = Pragmas()

    def array(self, name: str, size: int, dtype: Optional[DType] = None) -> ArrayDecl:
        decl = ArrayDecl(name, size, dtype)
        self._arrays.append(decl)
        return decl

    def loop(
        self,
        var: str,
        trip: int,
        variable_trip: bool = False,
        parallel: bool = True,
    ) -> LoopVar:
        self._loops.append(Loop(var, trip, variable_trip, parallel))
        return LoopVar(var)

    def assign(self, target: Load, expr) -> "WorkloadBuilder":
        """Add ``target = expr``."""
        self._statements.append(
            Statement(target.array, target.index, as_expr(expr), None)
        )
        return self

    def accumulate(self, target: Load, expr, op: Op = Op.ADD) -> "WorkloadBuilder":
        """Add ``target op= expr`` (an explicit reduction update)."""
        reads_target = Load(target.array, target.index)
        reduction = op
        if op is Op.ADD:
            combined = reads_target + as_expr(expr)
        elif op is Op.SUB:
            # c -= x is still an additive reduction (accumulation of -x).
            combined = reads_target - as_expr(expr)
            reduction = Op.ADD
        elif op is Op.MUL:
            combined = reads_target * as_expr(expr)
        elif op in (Op.MAX, Op.MIN):
            from .expr import BinOp

            combined = BinOp(op, reads_target, as_expr(expr))
        else:
            raise WorkloadError(f"unsupported reduction op {op}")
        self._statements.append(
            Statement(target.array, target.index, combined, reduction)
        )
        return self

    def pragmas(self, config: bool = True, decouple: bool = True) -> "WorkloadBuilder":
        self._pragmas = Pragmas(config, decouple)
        return self

    def build(self) -> Workload:
        w = Workload(
            name=self._name,
            suite=self._suite,
            dtype=self._dtype,
            loops=tuple(self._loops),
            statements=tuple(self._statements),
            arrays=tuple(self._arrays),
            pragmas=self._pragmas,
            size_desc=self._size_desc,
        )
        w.validate()
        return w
