"""Datatypes supported by the decoupled-spatial ISA.

The paper's functional units cover 8- to 64-bit integers plus single and
double precision floats (Section III-B).  ``fft`` uses interleaved complex
single-precision values, which the paper denotes ``f32x2``; we model it as a
64-bit element whose arithmetic maps to paired f32 units.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DType:
    """An element datatype.

    Attributes:
        name: canonical short name, e.g. ``"i16"`` or ``"f64"``.
        bits: storage width of one element in bits.
        is_float: whether arithmetic uses floating-point functional units.
        lanes: sub-elements packed in one element (2 for ``f32x2``).
    """

    name: str
    bits: int
    is_float: bool
    lanes: int = 1

    @property
    def bytes(self) -> int:
        return self.bits // 8

    @property
    def scalar_bits(self) -> int:
        """Width of one scalar lane (e.g. 32 for ``f32x2``)."""
        return self.bits // self.lanes

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


I8 = DType("i8", 8, False)
I16 = DType("i16", 16, False)
I32 = DType("i32", 32, False)
I64 = DType("i64", 64, False)
F32 = DType("f32", 32, True)
F64 = DType("f64", 64, True)
F32X2 = DType("f32x2", 64, True, lanes=2)

_BY_NAME = {t.name: t for t in (I8, I16, I32, I64, F32, F64, F32X2)}


def dtype_from_name(name: str) -> DType:
    """Look up a datatype by its canonical name.

    Raises:
        KeyError: if ``name`` is not a supported datatype.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown dtype {name!r}; supported: {sorted(_BY_NAME)}"
        ) from None


ALL_DTYPES = tuple(_BY_NAME.values())
