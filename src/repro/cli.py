"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main flows:

* ``workloads``            — list the Table-II workloads
* ``generate``             — run the DSE for a suite/workload set, save the design
* ``dse``                  — like ``generate`` but through the parallel engine:
  multi-seed worker pool (``--workers``), persistent artifact cache
  (``--cache-dir``), checkpoint/resume (``--resume``), JSONL metrics;
  ``--strategy`` switches to the pluggable search runtime
  (anneal/bottleneck/evolutionary/tpe) with persistent multi-objective
  studies (``--pareto``, ``--html``, ``--list-strategies``)
* ``study``                — list/show/export/merge persistent search
  studies from the artifact store; ``import`` turns ``dse_point``
  metrics JSONL into a study
* ``inspect <design>``     — render a saved design (ASCII + resources)
* ``map <design> <name>``  — compile+schedule a workload onto a saved design
* ``simulate <design> <name>`` — cycle-level simulation of a mapped workload
* ``rtl <design>``         — emit structural Verilog
* ``floorplan <design>``   — SLR floorplan + clock estimate
* ``advise <design> <name>`` — explain fit + whether re-DSE would pay (Q5)
* ``report``               — regenerate EXPERIMENTS.md
* ``bench``                — fixed-seed DSE + simulation benchmarks with
  span tracing; writes ``BENCH_dse.json``/``BENCH_sim.json`` and supports
  ``--compare BASELINE.json`` regression checks; ``bench search`` runs
  the strategy shootout and writes ``BENCH_search.json``
* ``fuzz``                 — differential model-vs-simulator fuzzing:
  generate random cases, check invariants, shrink failures, record them
  in the divergence corpus; exits 1 when new failures (or invariant
  violations) are recorded
* ``soak``                 — sharded, resumable fuzz campaign: splits the
  seed range across worker processes, checkpoints finished shards,
  merges to a deterministic triage report, and can promote minimal
  repros to committed regression tests (``--promote``)
* ``validate``             — structural invariants over the built-in
  suite + replay of the divergence corpus and (``--regression``) of
  promoted regression cases
* ``serve``                — long-lived overlay-compilation service:
  JSON-lines requests over a unix socket or localhost TCP, bounded
  queue with admission control, single-flight coalescing, process
  worker pool, per-request deadlines, graceful drain
* ``submit``               — client for ``serve``: one-shot requests
  (map/estimate/simulate/simulate_batch/remap/ping/stats/topology/
  shutdown) or a concurrent load run, optionally topology-routed
  (``--cluster``) and split over generator processes (``--shards``)
* ``registry``             — versioned overlay registry on an artifact
  store: publish / list / show / pin / unpin / rollback named overlay
  versions that ``serve --registry`` resolves as ``name@vN`` specs
* ``cluster``              — multi-shard serve: spawn N shard processes
  plus the consistent-hash front-tier router as one unit

Parallelism flag convention (backed by :mod:`repro.jobs`): every command
spells the worker-process count ``-w/--workers`` — an execution detail
that never changes results — and work *splitting* ``--shards`` (also
result-invariant: any shard count merges to identical output).  The old
``-j/--jobs`` spelling survives as a deprecated alias for ``--workers``.

Expected user errors (unknown workload names, missing files) exit with a
clean one-line message and status 2; programming errors still traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .adg import load_sysadg, render_sysadg, save_sysadg
from .compiler import generate_variants
from .dse import DseConfig, explore
from .model.resource import XCVU9P, system_resources
from .rtl import emit_system, estimated_frequency, floorplan
from .scheduler import schedule_workload
from .sim import simulate_schedule
from .workloads import SUITE_NAMES, all_workloads, get_suite, get_workload


class CliError(Exception):
    """A user-facing error: printed cleanly, exit status 2."""


class _DeprecatedAlias(argparse.Action):
    """Accept an old flag spelling, warn on stderr, store to ``dest``.

    Declare the canonical flag *first* (its default wins; argparse only
    seeds a default for a dest the namespace doesn't already have).
    """

    def __init__(self, *args, canonical: str = "", **kwargs):
        self.canonical = canonical
        super().__init__(*args, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(
            f"warning: {option_string} is deprecated; use {self.canonical}",
            file=sys.stderr,
        )
        setattr(namespace, self.dest, values)


def _get_workload(name: str):
    try:
        return get_workload(name)
    except KeyError as exc:
        raise CliError(str(exc.args[0]) if exc.args else str(exc)) from exc


def _cmd_workloads(args: argparse.Namespace) -> int:
    for w in all_workloads():
        marks = []
        if w.has_variable_trip:
            marks.append("variable-trip")
        from .ir import IndirectIndex

        if any(isinstance(i, IndirectIndex) for _, i, _ in w.all_accesses()):
            marks.append("indirect")
        print(
            f"{w.name:12s} {w.suite:10s} {w.size_desc:10s} {w.dtype.name:6s} "
            f"{' '.join(marks)}"
        )
    return 0


def _resolve_workloads(spec: str):
    if spec in SUITE_NAMES:
        return get_suite(spec)
    if spec == "all":
        return all_workloads()
    return [_get_workload(name) for name in spec.split(",") if name]


def _cmd_generate(args: argparse.Namespace) -> int:
    workloads = _resolve_workloads(args.workloads)
    print(
        f"running DSE for {len(workloads)} workload(s): "
        f"{', '.join(w.name for w in workloads)}"
    )
    result = explore(
        workloads,
        DseConfig(iterations=args.iterations, seed=args.seed),
        name=args.name or args.workloads,
    )
    print(result.sysadg.summary())
    util = system_resources(result.sysadg).utilization(XCVU9P)
    print("utilization: " + "  ".join(f"{k}={v:.0%}" for k, v in util.items()))
    print(f"modeled DSE time: {result.modeled_hours:.1f} h")
    save_sysadg(result.sysadg, args.output)
    print(f"saved design to {args.output}")
    return 0


def _cache_dir_for(args: argparse.Namespace) -> Optional[str]:
    """The persistent store directory, honoring --no-cache/--cache-dir."""
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None) or os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-overgen"),
    )


def _cmd_dse(args: argparse.Namespace) -> int:
    from .engine import DseEngine, MetricsLogger

    if args.list_strategies:
        from .search import strategy_names

        for name in strategy_names():
            print(name)
        return 0
    if not args.workloads:
        raise CliError(
            "missing workloads argument (suite name, 'all', or "
            "comma-separated names); or use --list-strategies"
        )
    if args.strategy is not None:
        return _cmd_dse_search(args)

    workloads = _resolve_workloads(args.workloads)
    try:
        seeds = (
            [int(s) for s in args.seeds.split(",")]
            if args.seeds
            else [args.seed]
        )
    except ValueError as exc:
        raise CliError(
            f"malformed --seeds {args.seeds!r}: expected comma-separated "
            "integers"
        ) from exc
    cache_dir = _cache_dir_for(args)
    engine = DseEngine(
        cache_dir=cache_dir or None,
        workers=args.workers,
        metrics=MetricsLogger(args.metrics),
        checkpoint_every=args.checkpoint_every,
        seed_timeout=args.seed_timeout,
    )
    print(
        f"engine DSE for {len(workloads)} workload(s), seeds "
        f"{seeds}, {args.workers} worker(s), cache "
        f"{cache_dir or 'disabled'}"
    )
    res = engine.explore(
        workloads,
        DseConfig(iterations=args.iterations, seed=args.seed),
        name=args.name or args.workloads,
        seeds=seeds,
        resume=args.resume,
    )
    m = res.metrics
    if res.from_cache:
        print(f"cache hit ({m.cache_tier}): artifact {res.key[:16]} reused, "
              f"0 DSE iterations run")
    else:
        per_seed = ", ".join(
            f"seed {o.seed}: "
            + (f"{o.result.choice.objective:.2f}"
               + (" (resumed)" if o.resumed else "")
               if o.result is not None else f"CRASHED ({o.error})")
            for o in res.outcomes
        )
        print(f"seed outcomes: {per_seed}")
        print(
            f"ran {m.iterations} iterations in {m.wall_seconds:.1f}s "
            f"({m.iterations_per_second:.0f} it/s), acceptance "
            f"{m.acceptance_rate:.0%}, best seed {m.best_seed}"
        )
        if m.crashed_seeds:
            print(f"degraded to best-of-survivors (crashed: {m.crashed_seeds})")
    result = res.result
    print(result.sysadg.summary())
    util = system_resources(result.sysadg).utilization(XCVU9P)
    print("utilization: " + "  ".join(f"{k}={v:.0%}" for k, v in util.items()))
    print(f"objective {res.objective:.2f}, modeled DSE time "
          f"{result.modeled_hours:.1f} h (wall {m.wall_seconds:.1f} s)")
    save_sysadg(result.sysadg, args.output)
    print(f"saved design to {args.output}")
    if args.metrics:
        print(f"metrics stream appended to {args.metrics}")
    return 0


def _cmd_dse_search(args: argparse.Namespace) -> int:
    """The pluggable-strategy path of ``repro dse`` (``--strategy``)."""
    from .engine import MetricsLogger
    from .engine.store import ArtifactStore
    from .search import (
        SearchSettings,
        export_frontier,
        render_html,
        run_search,
        strategy_names,
    )

    if args.strategy not in strategy_names():
        raise CliError(
            f"unknown strategy {args.strategy!r}; available: "
            + ", ".join(strategy_names())
        )
    workloads = _resolve_workloads(args.workloads)
    cache_dir = _cache_dir_for(args)
    store = ArtifactStore(cache_dir) if cache_dir else None
    # The anneal strategy walks the legacy iteration schedule, so its
    # natural trial budget is --iterations; samplers default to 16.
    trials = args.trials
    if trials is None:
        trials = args.iterations if args.strategy == "anneal" else 16
    settings = SearchSettings(
        strategy=args.strategy,
        trials=trials,
        batch=args.batch,
        seed=args.seed,
        workers=args.workers,
    )
    print(
        f"search[{args.strategy}] for {len(workloads)} workload(s): "
        f"{', '.join(w.name for w in workloads)} — {trials} trial(s), "
        f"batch {args.batch}, {args.workers} worker(s), store "
        f"{cache_dir or 'disabled'}"
    )
    outcome = run_search(
        workloads,
        DseConfig(iterations=args.iterations, seed=args.seed),
        settings,
        store=store,
        metrics=MetricsLogger(args.metrics),
        rebuild_best=True,
        name=args.name or args.workloads,
    )
    study = outcome.study
    resumed = " (resumed from store)" if outcome.resumed else ""
    print(
        f"study {outcome.key[:16]}: {len(study.trials)} trial(s), "
        f"{len(study.feasible_trials())} feasible{resumed}"
    )
    best = outcome.best_trial
    if best is None:
        print("no feasible trials")
    else:
        print(
            f"best trial #{best.index}: objective {best.objective:.2f}, "
            f"lut {best.lut:.3f}, bram {best.bram:.3f}, dsp {best.dsp:.3f}"
        )
    if outcome.sysadg is not None:
        print(outcome.sysadg.summary())
        util = system_resources(outcome.sysadg).utilization(XCVU9P)
        print(
            "utilization: "
            + "  ".join(f"{k}={v:.0%}" for k, v in util.items())
        )
        save_sysadg(outcome.sysadg, args.output)
        print(f"saved design to {args.output}")
    if outcome.dse_result is not None:
        print(
            f"modeled DSE time: {outcome.dse_result.modeled_hours:.1f} h"
        )
    if args.pareto:
        with open(args.pareto, "w") as f:
            f.write(export_frontier(study))
        print(f"wrote Pareto frontier to {args.pareto}")
    if args.html:
        with open(args.html, "w") as f:
            f.write(render_html(study))
        print(f"wrote HTML report to {args.html}")
    if args.metrics:
        print(f"metrics stream appended to {args.metrics}")
    return 0


def _study_axes(spec: Optional[str]):
    from .search import DEFAULT_AXES, parse_axis

    if not spec:
        return DEFAULT_AXES
    try:
        return tuple(parse_axis(part) for part in spec.split(",") if part)
    except ValueError as exc:
        raise CliError(str(exc)) from exc


def _study_resolve(store, prefix: str) -> str:
    """Full study key for a (possibly abbreviated) key prefix."""
    from .search import list_studies

    keys = [row["key"] for row in list_studies(store)]
    matches = [k for k in keys if k.startswith(prefix)]
    if not matches:
        raise CliError(f"no study matching {prefix!r} in the store")
    if len(matches) > 1:
        raise CliError(
            f"ambiguous study prefix {prefix!r}: {len(matches)} matches"
        )
    return matches[0]


def _cmd_study(args: argparse.Namespace) -> int:
    import json

    from .engine.store import ArtifactStore
    from .search import (
        export_study,
        frontier_doc,
        list_studies,
        load_study,
        merge_studies,
        render_html,
        save_study,
        study_from_points,
    )

    store = ArtifactStore(args.study_dir or _cache_dir_for(args))
    axes = _study_axes(args.axes)

    def _load(prefix: str):
        study, _state = load_study(store, _study_resolve(store, prefix))
        if study is None:
            raise CliError(f"study {prefix!r} is unreadable")
        return study

    def _write(text: str, what: str) -> None:
        if args.output:
            with open(args.output, "w") as f:
                f.write(text)
            print(f"wrote {what} to {args.output}")
        else:
            sys.stdout.write(text)

    if args.action == "list":
        rows = list_studies(store)
        if not rows:
            print(f"no studies in {store.root}")
            return 0
        for row in rows:
            print(
                f"{row['key'][:16]} {row['strategy']:12s} "
                f"seed={row['seed']} batch={row['batch']} "
                f"trials={row['trials']} "
                f"workloads={','.join(row['workloads'])}"
            )
        return 0

    if not args.keys:
        raise CliError(f"study {args.action} needs at least one study key")

    if args.action == "show":
        study = _load(args.keys[0])
        front = frontier_doc(study, axes)
        print(f"study {study.key}")
        print(
            f"strategy {study.strategy}, seed {study.seed}, "
            f"batch {study.batch}, workloads "
            f"{', '.join(study.workloads)}"
        )
        print(
            f"{len(study.trials)} trial(s), "
            f"{len(study.feasible_trials())} feasible, "
            f"frontier {len(front['points'])} point(s), "
            f"hypervolume {front['hypervolume']:.6g}"
        )
        best = study.best_trial()
        if best is not None:
            print(
                f"best trial #{best.index}: objective "
                f"{best.objective:.2f}, lut {best.lut:.3f}, "
                f"bram {best.bram:.3f}, dsp {best.dsp:.3f}"
            )
        for point in front["points"]:
            cells = "  ".join(
                f"{axis.name}={point[axis.name]:.4g}" for axis in axes
            )
            print(f"  frontier trial #{point['trial']}: {cells}")
        return 0

    if args.action == "export":
        study = _load(args.keys[0])
        if args.html:
            with open(args.html, "w") as f:
                f.write(render_html(study, axes))
            print(f"wrote HTML report to {args.html}")
        _write(export_study(study, axes), f"study {study.key[:16]}")
        return 0

    if args.action == "merge":
        if len(args.keys) < 2:
            raise CliError("study merge needs at least two study keys")
        merged = merge_studies([_load(prefix) for prefix in args.keys])
        save_study(store, merged)
        print(
            f"merged {len(args.keys)} studies -> {merged.key[:16]} "
            f"({len(merged.trials)} trial(s) after dedup)"
        )
        return 0

    if args.action == "import":
        path = args.keys[0]
        points = []
        workloads = set()
        try:
            with open(path) as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    if record.get("event") == "dse_point":
                        points.append(record)
                    elif record.get("event") == "run_start":
                        names = record.get("workloads") or (
                            [record["name"]] if record.get("name") else []
                        )
                        workloads.update(names)
        except FileNotFoundError as exc:
            raise CliError(f"no such metrics file: {path}") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise CliError(f"cannot read metrics {path}: {exc}") from exc
        if not points:
            raise CliError(f"{path}: no dse_point events to import")
        study = study_from_points(
            points,
            workloads=sorted(workloads),
            strategy="import",
        )
        save_study(store, study)
        print(
            f"imported {len(points)} dse_point event(s) -> study "
            f"{study.key[:16]}"
        )
        return 0

    raise CliError(f"unknown study action {args.action!r}")


def _load_design(path: str):
    try:
        return load_sysadg(path)
    except FileNotFoundError as exc:
        raise CliError(f"no such design file: {path}") from exc
    except OSError as exc:
        raise CliError(f"cannot read design file {path}: {exc}") from exc


def _cmd_inspect(args: argparse.Namespace) -> int:
    sysadg = _load_design(args.design)
    print(render_sysadg(sysadg))
    util = system_resources(sysadg).utilization(XCVU9P)
    print("utilization: " + "  ".join(f"{k}={v:.0%}" for k, v in util.items()))
    return 0


def _map_workload(design_path: str, name: str):
    sysadg = _load_design(design_path)
    variants = generate_variants(_get_workload(name))
    schedule = schedule_workload(variants, sysadg.adg, sysadg.params)
    return sysadg, schedule


def _single_shot_json(op: str, design_path: str, workload: str) -> int:
    """The serve-comparable single-shot path: canonical JSON on stdout."""
    from .serve import canonical_dumps, single_shot

    sysadg = _load_design(design_path)
    doc = single_shot(op, sysadg, _get_workload(workload).name)
    if doc is None:
        print(f"{workload} does NOT map onto {sysadg.name}")
        return 1
    print(canonical_dumps(doc))
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    if args.json:
        return _single_shot_json("map", args.design, args.workload)
    sysadg, schedule = _map_workload(args.design, args.workload)
    if schedule is None:
        print(f"{args.workload} does NOT map onto {sysadg.name}")
        return 1
    print(schedule.summary())
    est = schedule.estimate
    print(f"projected IPC {est.ipc:.1f}, bottleneck {est.bottleneck}")
    print(f"configuration: {schedule.mdfg.config_words} words")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.json:
        if "," in args.workload:
            raise CliError("--json takes a single workload, not a list")
        return _single_shot_json("simulate", args.design, args.workload)
    if "," in args.workload:
        return _simulate_many(args.design, args.workload)
    sysadg, schedule = _map_workload(args.design, args.workload)
    if schedule is None:
        print(f"{args.workload} does NOT map onto {sysadg.name}")
        return 1
    result = simulate_schedule(schedule, sysadg)
    seconds = result.seconds(sysadg.params.frequency_mhz)
    print(
        f"{args.workload} on {sysadg.name}: {result.cycles:,.0f} cycles "
        f"({seconds * 1e6:,.1f} us), IPC {result.ipc:.1f}, "
        f"{result.tiles_used} tiles used"
    )
    return 0


def _simulate_many(design: str, workloads: str) -> int:
    """``repro simulate <design> w1,w2,...`` — one batched stepping pass."""
    from .serve import simulate_batch_op
    from .serve.errors import BadRequestError

    sysadg = _load_design(design)
    names = [n.strip() for n in workloads.split(",") if n.strip()]
    if not names:
        raise CliError("empty workload list")
    try:
        docs = simulate_batch_op(sysadg, names)
    except BadRequestError as exc:
        raise CliError(str(exc)) from exc
    unmapped = 0
    for name, doc in zip(names, docs):
        if doc is None:
            print(f"{name} does NOT map onto {sysadg.name}")
            unmapped += 1
            continue
        print(
            f"{name} on {sysadg.name}: {doc['cycles']:,.0f} cycles "
            f"({doc['seconds'] * 1e6:,.1f} us), IPC {doc['ipc']:.1f}, "
            f"{doc['tiles_used']} tiles used"
        )
    return 1 if unmapped else 0


def _cmd_rtl(args: argparse.Namespace) -> int:
    from .rtl import get_backend

    sysadg = _load_design(args.design)
    try:
        backend = get_backend(args.backend)
    except KeyError as exc:
        raise CliError(str(exc.args[0]) if exc.args else str(exc)) from exc
    rtl = backend.emit_system(sysadg)
    if args.output:
        with open(args.output, "w") as f:
            f.write(rtl)
        print(
            f"wrote {args.output} ({rtl.count(chr(10))} lines, "
            f"backend {backend.name})"
        )
    else:
        sys.stdout.write(rtl)
    return 0


def _cmd_floorplan(args: argparse.Namespace) -> int:
    sysadg = _load_design(args.design)
    plan = floorplan(sysadg)
    print(plan.ascii_art())
    print(f"estimated clock: {estimated_frequency(plan):.1f} MHz")
    if not plan.feasible:
        print(
            "error: overlay exceeds XCVU9P capacity (see SLR utilization)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .compiler import advise

    sysadg = _load_design(args.design)
    advice = advise(
        _get_workload(args.workload), sysadg.adg, sysadg.params
    )
    print(advice.summary())
    return 0 if advice.best_mapped is not None else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .harness.report import generate_report

    report = generate_report()
    with open(args.output, "w") as f:
        f.write(report)
    print(f"wrote {args.output}")
    return 0


def _bands(args: argparse.Namespace):
    from dataclasses import replace

    from .validate import ToleranceBands

    bands = ToleranceBands().scaled(args.rel_tol)
    if getattr(args, "abs_floor", None) is not None:
        bands = replace(bands, abs_floor=args.abs_floor)
    return bands


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .engine import MetricsLogger
    from .profile.bench import BUDGETS, compare_reports, run_bench

    budget = BUDGETS[args.budget]
    baseline = None
    if args.compare:
        try:
            with open(args.compare) as f:
                baseline = json.load(f)
        except FileNotFoundError as exc:
            raise CliError(f"no such baseline file: {args.compare}") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise CliError(
                f"cannot read baseline {args.compare}: {exc}"
            ) from exc
        if baseline.get("kind") not in ("dse", "sim", "search"):
            raise CliError(
                f"{args.compare}: not a BENCH report (missing/unknown 'kind')"
            )

    metrics = MetricsLogger(args.metrics) if args.metrics else None
    if args.what == "search":
        return _bench_search(args, baseline, metrics)
    if args.what == "sim":
        return _bench_sim(args, baseline, metrics)
    if baseline is not None and baseline.get("kind") == "search":
        raise CliError(
            f"{args.compare} is a search baseline; run `repro bench search`"
        )
    report = run_bench(
        budget,
        seed=args.seed,
        out_dir=args.out_dir,
        trace_path=args.trace,
        metrics=metrics,
    )
    d, s, o = report.dse, report.sim, report.overhead
    print(
        f"dse[{budget.name}]: {d['iterations']} candidates in "
        f"{d['wall_seconds']:.2f}s ({d['candidates_per_second']:.0f}/s), "
        f"preserved-hit rate {d['preserved_hit_rate']:.0%}"
    )
    print(
        f"  fast path {d['fast_path_mean_s'] * 1e3:.3f} ms vs repair "
        f"{d['repair_path_mean_s'] * 1e3:.3f} ms "
        f"({d['fast_path_speedup']:.1f}x), warm-memo rerun "
        f"{d['memo_speedup']:.1f}x faster"
    )
    print(
        f"sim[{budget.name}]: {s['stepped_cycles']:,} cycles in "
        f"{s['wall_seconds']:.2f}s ({s['cycles_per_second']:,.0f} cycles/s), "
        f"memo hit {s['memo_speedup']:.0f}x faster than miss"
    )
    print(
        f"tracer overhead: disabled/no-tracer ratio {o['ratio']:.3f} "
        f"({o['calls']} span calls, min of {o['repeats']})"
    )
    print(f"wrote {report.dse_path} and {report.sim_path}")
    if args.trace:
        print(f"wrote Chrome trace to {args.trace}")

    rc = 0
    if args.max_overhead is not None and o["ratio"] > args.max_overhead:
        print(
            f"FAIL: tracer overhead ratio {o['ratio']:.3f} exceeds "
            f"--max-overhead {args.max_overhead}"
        )
        rc = 1
    if baseline is not None:
        tolerance = _compare_tolerance(args)
        current_doc = report.dse if baseline["kind"] == "dse" else report.sim
        cmp = compare_reports(current_doc, baseline, tolerance=tolerance)
        rc = max(rc, _print_compare(cmp, args.compare, tolerance))
    return rc


def _compare_tolerance(args: argparse.Namespace) -> float:
    """--max-regression (the explicit CI gate) overrides --tolerance."""
    if getattr(args, "max_regression", None) is not None:
        return args.max_regression
    return args.tolerance


def _print_compare(cmp, compare_path: str, tolerance: float) -> int:
    """Render one compare_reports result; 1 when it regressed."""
    for row in cmp["rows"]:
        ratio = (
            f"{row['ratio']:.2f}x" if row["ratio"] is not None else "n/a"
        )
        print(
            f"  {row['status']:12s} {row['metric']}: "
            f"{row['current']} vs baseline {row['baseline']} ({ratio})"
        )
    if cmp["ok"]:
        print(f"compare vs {compare_path}: OK (tolerance {tolerance})")
        return 0
    print(
        f"FAIL: regression vs {compare_path} in "
        f"{', '.join(cmp['regressions'])}"
    )
    return 1


def _bench_search(args: argparse.Namespace, baseline, metrics) -> int:
    """The ``repro bench search`` strategy shootout."""
    from .profile.bench import BUDGETS, compare_reports, run_search_bench

    if baseline is not None and baseline.get("kind") != "search":
        raise CliError(
            f"{args.compare}: kind {baseline.get('kind')!r} baseline does "
            "not apply to `bench search`"
        )
    budget = BUDGETS[args.budget]
    doc, path = run_search_bench(
        budget,
        seed=args.seed,
        out_dir=args.out_dir,
        trace_path=args.trace,
        metrics=metrics,
    )
    for strat in sorted(doc["strategies"]):
        row = doc["strategies"][strat]
        print(
            f"search[{budget.name}] {strat:12s}: best objective "
            f"{row['best_objective']:.2f}, hypervolume "
            f"{row['hypervolume']:.4g}, {row['feasible']}/{row['trials']} "
            f"feasible, {row['wall_seconds']:.2f}s"
        )
    print(f"best strategy: {doc['best_strategy']}")
    print(f"wrote {path}")
    if args.trace:
        print(f"wrote Chrome trace to {args.trace}")
    rc = 0
    if baseline is not None:
        tolerance = _compare_tolerance(args)
        cmp = compare_reports(doc, baseline, tolerance=tolerance)
        rc = _print_compare(cmp, args.compare, tolerance)
    return rc


def _bench_sim(args: argparse.Namespace, baseline, metrics) -> int:
    """The ``repro bench sim`` sim-only benchmark + perf gate."""
    from .profile.bench import BUDGETS, compare_reports, run_bench_sim

    if baseline is not None and baseline.get("kind") != "sim":
        raise CliError(
            f"{args.compare}: kind {baseline.get('kind')!r} baseline does "
            "not apply to `bench sim`"
        )
    budget = BUDGETS[args.budget]
    doc, path = run_bench_sim(
        budget, seed=args.seed, out_dir=args.out_dir, metrics=metrics
    )
    batch = doc["batch"]
    print(
        f"sim[{budget.name}] core={doc['core']}: {doc['stepped_cycles']:,} "
        f"cycles in {doc['wall_seconds']:.2f}s "
        f"({doc['cycles_per_second']:,.0f} cycles/s)"
    )
    print(
        f"  batch: {batch['pairs']} regions, "
        f"{doc['batch_cycles_per_second']:,.0f} cycles/s, "
        f"identical to serial: {batch['identical_to_serial']}"
    )
    print(f"wrote {path}")
    rc = 0
    if not batch["identical_to_serial"]:
        print("FAIL: batched results diverged from serial simulation")
        rc = 1
    if baseline is not None:
        tolerance = _compare_tolerance(args)
        cmp = compare_reports(doc, baseline, tolerance=tolerance)
        rc = max(rc, _print_compare(cmp, args.compare, tolerance))
    return rc


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .engine import MetricsLogger
    from .validate import fuzz_run

    stats = fuzz_run(
        budget=args.budget,
        seed=args.seed,
        corpus_dir=args.corpus,
        bands=_bands(args),
        metrics=MetricsLogger(args.metrics),
        max_mutations=args.max_mutations,
    )
    print(stats.render())
    # A failure is "new" when this run added it to the corpus; without a
    # corpus there is no memory, so every failure counts as new.
    new_failures = (
        sum(1 for f in stats.failures if f.was_new)
        if args.corpus
        else len(stats.failures)
    )
    if new_failures:
        print(f"new failures: {new_failures}")
    return 1 if (stats.invariant_violations or new_failures) else 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from .engine import MetricsLogger
    from .validate.soak import CampaignConfig, SoakError, soak_run

    config = CampaignConfig(
        budget=args.budget,
        seed=args.seed,
        shards=args.shards,
        max_mutations=args.max_mutations,
        shrink_budget=args.shrink_budget,
        bands=_bands(args),
    )
    try:
        report = soak_run(
            config,
            state_dir=args.state,
            corpus_dir=args.corpus,
            workers=args.workers,
            resume=args.resume,
            metrics=MetricsLogger(args.metrics),
            promote_dir=args.promote,
            promote_dry_run=args.dry_run,
        )
    except SoakError as exc:
        print(f"soak failed: {exc}", file=sys.stderr)
        return 1
    text = report.render()
    print(text)
    if args.report:
        with open(args.report, "w") as f:
            f.write(text + "\n")
        print(f"wrote triage report to {args.report}")
    # Execution detail (how the split went) stays out of the triage
    # report so it is shard-count independent; surface it here instead.
    if report.cached_shards:
        print(
            f"resumed: shard(s) {report.cached_shards} answered from "
            f"checkpoints"
        )
    if report.crashed_shards:
        print(f"DEGRADED: shard(s) {report.crashed_shards} crashed")
    if report.corpus_migrated:
        print(
            f"corpus migration dropped {report.corpus_migrated} "
            f"redundant entr{'y' if report.corpus_migrated == 1 else 'ies'}"
        )
    if report.promoted:
        verb = "would promote" if report.promote_dry_run else "promoted"
        print(
            f"{verb} {len(report.promoted)} regression case(s): "
            + ", ".join(report.promoted)
        )
    print(f"new failures: {report.new_failures}")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .engine import MetricsLogger
    from .serve import OverlayServer, ServeConfig, serve_until_shutdown

    if not args.designs and not args.registry:
        raise CliError(
            "serve needs at least one design file or --registry DIR"
        )
    config = ServeConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        workers=args.workers,
        default_timeout_s=args.default_timeout,
        drain_timeout_s=args.drain_timeout,
        cache_dir=args.cache_dir,
        registry_dir=args.registry,
    )
    server = OverlayServer(config, metrics=MetricsLogger(args.metrics))

    async def _run() -> None:
        for path in args.designs:
            try:
                name = server.load_design(path)
            except FileNotFoundError as exc:
                raise CliError(f"no such design file: {path}") from exc
            print(
                f"loaded overlay {name!r} from {path} "
                f"(fingerprint {server.overlays[name].fingerprint[:16]})"
            )
        if args.registry:
            print(f"registry attached: {args.registry}")
        started = asyncio.get_running_loop().create_task(
            serve_until_shutdown(server)
        )
        while server.endpoint is None and not started.done():
            await asyncio.sleep(0.01)
        if server.endpoint is not None:
            kind, where = server.endpoint
            print(f"serving on {kind} {where}", flush=True)
        await started

    asyncio.run(_run())
    c = server.counters
    print(
        f"drained: {c['requests']} requests "
        f"({c['responses_ok']} ok, {c['responses_error']} errors, "
        f"{c['computes']} compiles, {c['coalesced']} coalesced)"
    )
    return 0


def _client_factory(args: argparse.Namespace):
    from .serve import ServeClient

    if not args.socket and args.port == 0:
        raise CliError("submit needs --socket PATH or --host/--port")
    return lambda: ServeClient(
        socket_path=args.socket, host=args.host, port=args.port
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .serve import (
        COMPUTE_OPS,
        ServeConnectionError,
        ServeError,
        canonical_dumps,
        run_load,
        run_load_sharded,
    )

    factory = _client_factory(args)

    if args.op == "load":
        ops = tuple(o for o in args.ops.split(",") if o)
        bad = [o for o in ops if o not in COMPUTE_OPS]
        if bad or not ops:
            raise CliError(
                f"--ops must be a comma list from "
                f"{', '.join(COMPUTE_OPS)}; got {args.ops!r}"
            )
        workloads = tuple(w for w in args.load_workloads.split(",") if w)
        if not workloads:
            raise CliError("--workloads must name at least one workload")
        overlays = None
        if args.overlays:
            overlays = tuple(o for o in args.overlays.split(",") if o)
        elif args.overlay:
            overlays = (args.overlay,)
        if args.shards < 1:
            raise CliError("--shards must be >= 1")

        async def _load():
            return await run_load(
                factory,
                ops=ops,
                workloads=workloads,
                requests=args.requests,
                concurrency=args.concurrency,
                overlays=overlays,
                timeout_s=args.timeout,
                expect_errors=args.expect_errors,
                cluster=args.cluster,
            )

        try:
            if args.shards > 1:
                report = run_load_sharded(
                    {
                        "socket": args.socket,
                        "host": args.host,
                        "port": args.port,
                    },
                    ops=ops,
                    workloads=workloads,
                    requests=args.requests,
                    concurrency=args.concurrency,
                    load_shards=args.shards,
                    overlays=overlays,
                    timeout_s=args.timeout,
                    expect_errors=args.expect_errors,
                    cluster=args.cluster,
                )

                async def _stats():
                    async with factory() as client:
                        return await client.stats()

                report.server_stats = asyncio.run(_stats())
            else:
                report = asyncio.run(_load())
        except ServeConnectionError as exc:
            raise CliError(str(exc)) from exc
        except ServeError as exc:
            print(f"load failed: {exc}", file=sys.stderr)
            return 1
        print(report.render())
        if args.json:
            print(json.dumps(report.as_dict(), sort_keys=True))
        if report.mismatches:
            print("FAIL: duplicate requests returned divergent results")
            return 1
        computes = report.computes
        if (
            args.assert_coalescing
            and computes is not None
            and computes >= report.requests
        ):
            print(
                f"FAIL: no coalescing/caching observed "
                f"({computes} compiles for {report.requests} requests)"
            )
            return 1
        return 0

    if args.op in COMPUTE_OPS and not args.workload:
        raise CliError(f"op {args.op!r} requires a workload name")

    async def _one():
        async with factory() as client:
            return await client.request(
                args.op,
                workload=args.workload,
                overlay=args.overlay,
                timeout_s=args.timeout,
            )

    try:
        result = asyncio.run(_one())
    except ServeConnectionError as exc:
        raise CliError(str(exc)) from exc
    except ServeError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 1
    if args.json or args.op in ("stats", "ping", "shutdown", "topology"):
        print(canonical_dumps(result))
    else:
        for key, value in sorted(result.items()):
            print(f"{key}: {value}")
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .cluster import OverlayRegistry, RegistryError, split_spec
    from .serve import canonical_dumps

    registry = OverlayRegistry(args.root)
    try:
        if args.registry_op == "publish":
            design_doc = json.loads(Path(args.design).read_text())
            entry = registry.publish(args.name, design_doc, note=args.note)
            print(
                f"published {entry.spec} "
                f"(fingerprint {entry.fingerprint[:16]})"
            )
            return 0
        if args.registry_op == "list":
            rows = registry.list_doc()
            if args.json:
                print(canonical_dumps(rows))
                return 0
            if not rows:
                print("registry is empty")
                return 0
            for row in rows:
                pin_note = (
                    f" (pinned v{row['pinned']})" if row["pinned"] else ""
                )
                print(
                    f"{row['name']}: {row['versions']} versions, "
                    f"latest v{row['latest']}{pin_note}"
                )
            return 0
        if args.registry_op == "show":
            name, _selector = split_spec(args.spec)
            pinned = registry.pinned(name)
            versions = registry.versions(name)
            if not versions:
                raise CliError(f"unknown overlay name {name!r}")
            for entry in versions:
                marker = " *" if pinned == entry.version else ""
                print(
                    f"{entry.spec}{marker}  {entry.fingerprint[:16]}  "
                    f"{entry.note or '-'}"
                )
            return 0
        if args.registry_op == "pin":
            name, selector = split_spec(args.spec)
            if selector is None:
                raise CliError("pin needs an explicit name@vN spec")
            entry = registry.pin(name, registry.lookup(args.spec).version)
            print(f"pinned {name} -> {entry.spec}")
            return 0
        if args.registry_op == "unpin":
            registry.unpin(args.name)
            print(f"unpinned {args.name} (bare name resolves to latest)")
            return 0
        if args.registry_op == "rollback":
            entry = registry.rollback(args.name, args.to_version)
            print(f"rolled back {args.name} -> {entry.spec}")
            return 0
    except (RegistryError, FileNotFoundError, ValueError) as exc:
        raise CliError(str(exc)) from exc
    raise CliError(f"unknown registry op {args.registry_op!r}")


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from .cluster import ClusterLauncher, LauncherConfig

    if args.cluster_op != "serve":
        raise CliError(f"unknown cluster op {args.cluster_op!r}")
    config = LauncherConfig(
        run_dir=args.run_dir,
        shards=args.shards,
        designs=[str(Path(p).resolve()) for p in args.designs],
        registry_dir=(
            str(Path(args.registry).resolve()) if args.registry else None
        ),
        cache_dir=(
            str(Path(args.cache_dir).resolve()) if args.cache_dir else None
        ),
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_timeout_s=args.default_timeout,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        health_interval_s=args.health_interval,
        failover_retries=args.failover_retries,
        metrics_path=args.metrics,
    )
    try:
        launcher = ClusterLauncher(config)
    except ValueError as exc:
        raise CliError(str(exc)) from exc

    async def _run() -> None:
        backends = await asyncio.get_running_loop().run_in_executor(
            None, launcher.spawn_shards
        )
        for spec in backends:
            print(f"shard {spec.index} up on {spec.describe()}")
        await launcher.run()

    try:
        asyncio.run(_run())
    except RuntimeError as exc:
        launcher.terminate()
        raise CliError(str(exc)) from exc
    router = launcher.router
    if router is not None:
        c = router.counters
        print(
            f"cluster drained: {c['requests']} requests routed "
            f"({c['retries']} retries, {c['failovers']} failovers)"
        )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .validate import validate_run

    report = validate_run(corpus_dir=args.corpus, bands=_bands(args))
    print(report.render())
    rc = 0 if report.ok else 1
    if args.regression:
        from .validate import replay_promoted_dir

        rows = replay_promoted_dir(args.regression)
        changed = [(n, e, a) for n, e, a in rows if a != e]
        print(
            f"promoted regression cases: {len(rows) - len(changed)}/"
            f"{len(rows)} reproduce their recorded failure key"
        )
        for name, expected, actual in changed:
            print(f"  CHANGED {name}: expected {expected!r}, got {actual!r}")
        if changed:
            rc = 1
    return rc


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="OverGen reproduction: domain-specific overlay generation",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the Table-II workloads").set_defaults(
        func=_cmd_workloads
    )

    gen = sub.add_parser("generate", help="run the overlay DSE and save it")
    gen.add_argument(
        "workloads",
        help="suite name (dsp/machsuite/vision), 'all', or comma-separated names",
    )
    gen.add_argument("-o", "--output", default="overlay.json")
    gen.add_argument("-n", "--iterations", type=int, default=150)
    gen.add_argument("-s", "--seed", type=int, default=2)
    gen.add_argument("--name", default=None)
    gen.set_defaults(func=_cmd_generate)

    dse = sub.add_parser(
        "dse",
        help="engine DSE: parallel multi-seed, cached, checkpoint/resume",
    )
    dse.add_argument(
        "workloads", nargs="?", default=None,
        help="suite name (dsp/machsuite/vision), 'all', or comma-separated names",
    )
    dse.add_argument("-o", "--output", default="overlay.json")
    dse.add_argument("-n", "--iterations", type=int, default=150)
    dse.add_argument("-s", "--seed", type=int, default=2)
    dse.add_argument(
        "--strategy", default=None,
        help="run the pluggable search runtime with this strategy "
             "(anneal | bottleneck | evolutionary | tpe) instead of the "
             "multi-seed engine",
    )
    dse.add_argument(
        "--list-strategies", action="store_true",
        help="list the registered search strategies and exit",
    )
    dse.add_argument(
        "--trials", type=int, default=None,
        help="search trial budget (default: --iterations for anneal, "
             "16 for the samplers)",
    )
    dse.add_argument(
        "--batch", type=int, default=1,
        help="proposals per ask/tell round (search path only; results "
             "are identical for any --workers)",
    )
    dse.add_argument(
        "--pareto", nargs="?", const="pareto.json", default=None,
        metavar="PATH",
        help="write the study's Pareto-frontier JSON (default PATH: "
             "pareto.json)",
    )
    dse.add_argument(
        "--html", default=None, metavar="PATH",
        help="write the self-contained HTML study report",
    )
    dse.add_argument(
        "--seeds",
        default=None,
        help="comma-separated annealing seeds (best-of-N); default: --seed",
    )
    dse.add_argument(
        "-w", "--workers", type=int, default=1, dest="workers",
        help="worker processes for multi-seed runs",
    )
    dse.add_argument(
        "-j", "--jobs", type=int, dest="workers", action=_DeprecatedAlias,
        canonical="-w/--workers",
        help="deprecated alias for -w/--workers",
    )
    dse.add_argument(
        "--cache-dir", default=None,
        help="persistent artifact store (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-overgen)",
    )
    dse.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent artifact store",
    )
    dse.add_argument(
        "--resume", action="store_true",
        help="resume interrupted seeds from their last checkpoint",
    )
    dse.add_argument(
        "--checkpoint-every", type=int, default=25,
        help="annealer iterations between checkpoints (0 disables)",
    )
    dse.add_argument(
        "--seed-timeout", type=float, default=None,
        help="per-seed wall-clock budget in seconds (pool path only); a "
             "timed-out seed is recorded as a failure and the job "
             "degrades to best-of-survivors",
    )
    dse.add_argument(
        "--metrics", default=None,
        help="append engine events to this JSONL file",
    )
    dse.add_argument("--name", default=None)
    dse.set_defaults(func=_cmd_dse)

    ins = sub.add_parser("inspect", help="render a saved design")
    ins.add_argument("design")
    ins.set_defaults(func=_cmd_inspect)

    mp = sub.add_parser("map", help="schedule a workload onto a saved design")
    mp.add_argument("design")
    mp.add_argument("workload")
    mp.add_argument(
        "--json", action="store_true",
        help="print the canonical result document (the byte-identity "
             "reference for served results)",
    )
    mp.set_defaults(func=_cmd_map)

    sim = sub.add_parser("simulate", help="simulate a workload on a design")
    sim.add_argument("design")
    sim.add_argument(
        "workload",
        help="workload name, or a comma-separated list for one batched "
             "stepping pass (list form is plain output only, not --json)",
    )
    sim.add_argument(
        "--json", action="store_true",
        help="print the canonical result document (the byte-identity "
             "reference for served results)",
    )
    sim.set_defaults(func=_cmd_simulate)

    rtl = sub.add_parser("rtl", help="emit structural RTL")
    rtl.add_argument("design")
    rtl.add_argument("-o", "--output", default=None)
    rtl.add_argument(
        "--backend", default="verilog",
        help="RTL backend name: 'verilog' (golden-stable structural "
             "Verilog) or 'migen' (LiteX-flavoured structural Python)",
    )
    rtl.set_defaults(func=_cmd_rtl)

    fp = sub.add_parser("floorplan", help="SLR floorplan + clock estimate")
    fp.add_argument("design")
    fp.set_defaults(func=_cmd_floorplan)

    adv = sub.add_parser(
        "advise", help="explain how well a workload fits a saved design"
    )
    adv.add_argument("design")
    adv.add_argument("workload")
    adv.set_defaults(func=_cmd_advise)

    rep = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    rep.add_argument("-o", "--output", default="EXPERIMENTS.md")
    rep.set_defaults(func=_cmd_report)

    study = sub.add_parser(
        "study",
        help="inspect, export, merge, and import persistent search studies",
    )
    study.add_argument(
        "action",
        choices=("list", "show", "export", "merge", "import"),
        help="list studies; show/export one; merge several into a new "
             "study; import dse_point metrics JSONL as a study",
    )
    study.add_argument(
        "keys", nargs="*",
        help="study key prefixes (or, for import, a metrics JSONL path)",
    )
    study.add_argument(
        "--study-dir", default=None,
        help="store directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-overgen)",
    )
    study.add_argument(
        "-o", "--output", default=None,
        help="write export output here instead of stdout",
    )
    study.add_argument(
        "--axes", default=None,
        help="comma-separated objective axes as name:sense (default: "
             "objective:max,lut:min,dsp:min,bram:min)",
    )
    study.add_argument(
        "--html", default=None, metavar="PATH",
        help="with export: also write the HTML report here",
    )
    study.set_defaults(func=_cmd_study, cache_dir=None, no_cache=False)

    bench = sub.add_parser(
        "bench",
        help="fixed-seed DSE + simulation benchmarks with span tracing",
    )
    bench.add_argument(
        "what", nargs="?", choices=("core", "search", "sim"), default="core",
        help="core: DSE+simulation benchmarks (default); search: the "
             "strategy shootout (writes BENCH_search.json); sim: the "
             "simulation benchmark only (writes BENCH_sim.json)",
    )
    bench.add_argument(
        "--budget", choices=("smoke", "small", "full"), default="small",
        help="benchmark size (default: small)",
    )
    bench.add_argument("-s", "--seed", type=int, default=2)
    bench.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_dse.json / BENCH_sim.json",
    )
    bench.add_argument(
        "--trace", default=None,
        help="also write a Chrome trace-event file here (chrome://tracing)",
    )
    bench.add_argument(
        "--metrics", default=None,
        help="append bench + trace_summary events to this JSONL file",
    )
    bench.add_argument(
        "--compare", default=None,
        help="regression-check against a stored BENCH_*.json baseline",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative drop before --compare fails (default 0.25)",
    )
    bench.add_argument(
        "--max-overhead", type=float, default=None,
        help="fail if disabled-tracer/no-tracer span ratio exceeds this",
    )
    bench.add_argument(
        "--max-regression", type=float, default=None,
        help="override --tolerance for the --compare check (CI perf "
             "gates: a named, explicit regression budget)",
    )
    bench.set_defaults(func=_cmd_bench)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential model-vs-simulator fuzzing (generate, check, "
             "shrink, record)",
    )
    fuzz.add_argument(
        "--budget", type=int, default=100, help="number of cases to draw"
    )
    fuzz.add_argument("-s", "--seed", type=int, default=0)
    fuzz.add_argument(
        "--corpus", default=None,
        help="divergence-corpus directory (minimal repros persist here)",
    )
    fuzz.add_argument(
        "--rel-tol", type=float, default=None,
        help="override every per-class relative tolerance (0 flags any "
             "model/sim gap beyond the absolute floor)",
    )
    fuzz.add_argument(
        "--abs-floor", type=float, default=None,
        help="absolute cycle gap always forgiven (default 64; 0 disables)",
    )
    fuzz.add_argument(
        "--max-mutations", type=int, default=6,
        help="max random ADG mutations per case",
    )
    fuzz.add_argument(
        "--metrics", default=None,
        help="append fuzz events to this JSONL file",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    soak = sub.add_parser(
        "soak",
        help="sharded resumable fuzz campaign: checkpointed shards, "
             "deterministic merged triage report, regression promotion",
    )
    soak.add_argument(
        "--budget", type=int, default=200,
        help="total cases across all shards (default 200)",
    )
    soak.add_argument("-s", "--seed", type=int, default=0)
    soak.add_argument(
        "--shards", type=int, default=4,
        help="independent seed-range slices (default 4); the merged "
             "report is identical for any shard count",
    )
    soak.add_argument(
        "-w", "--workers", type=int, default=None, dest="workers",
        help="worker processes (default: min(shards, cpu count))",
    )
    soak.add_argument(
        "-j", "--jobs", type=int, dest="workers", action=_DeprecatedAlias,
        canonical="-w/--workers",
        help="deprecated alias for -w/--workers",
    )
    soak.add_argument(
        "--state", default=None,
        help="campaign state directory; finished shards checkpoint here "
             "(required for --resume)",
    )
    soak.add_argument(
        "--resume", action="store_true",
        help="answer already-finished shards from --state checkpoints",
    )
    soak.add_argument(
        "--corpus", default=None,
        help="divergence-corpus directory (minimal repros persist here)",
    )
    soak.add_argument(
        "--promote", default=None, metavar="DIR",
        help="freeze each deduped minimal repro as a committed regression "
             "case (JSON + generated pytest module) under DIR",
    )
    soak.add_argument(
        "--dry-run", action="store_true",
        help="with --promote: name the cases without writing files",
    )
    soak.add_argument(
        "--report", default=None, metavar="FILE",
        help="also write the triage report to FILE (byte-identical for "
             "identical campaigns)",
    )
    soak.add_argument(
        "--rel-tol", type=float, default=None,
        help="override every per-class relative tolerance",
    )
    soak.add_argument(
        "--abs-floor", type=float, default=None,
        help="absolute cycle gap always forgiven (default 64; 0 disables)",
    )
    soak.add_argument(
        "--max-mutations", type=int, default=6,
        help="max random ADG mutations per case",
    )
    soak.add_argument(
        "--shrink-budget", type=int, default=120,
        help="max oracle evaluations per shrink (default 120)",
    )
    soak.add_argument(
        "--metrics", default=None,
        help="append campaign events to this JSONL file",
    )
    soak.set_defaults(func=_cmd_soak)

    srv = sub.add_parser(
        "serve",
        help="serve map/estimate/simulate requests over loaded overlays "
             "(JSON-lines, coalescing, admission control, graceful drain)",
    )
    srv.add_argument(
        "designs", nargs="*",
        help="design JSON file(s) to serve (may be empty with --registry)",
    )
    srv.add_argument(
        "--socket", default=None,
        help="unix socket path to listen on (overrides --host/--port)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks a free one, printed at startup)",
    )
    srv.add_argument(
        "--queue-limit", type=int, default=64,
        help="max requests in service before admission control sheds "
             "load with 'overloaded' (default 64)",
    )
    srv.add_argument(
        "--workers", type=int, default=2,
        help="compile worker processes (0 = in-process threads)",
    )
    srv.add_argument(
        "--default-timeout", type=float, default=30.0,
        help="deadline for requests that carry no timeout_s (seconds)",
    )
    srv.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="max seconds graceful drain waits for in-flight requests",
    )
    srv.add_argument(
        "--cache-dir", default=None,
        help="persist served results in this artifact store directory",
    )
    srv.add_argument(
        "--metrics", default=None,
        help="append serve events to this JSONL file",
    )
    srv.add_argument(
        "--registry", default=None, metavar="DIR",
        help="overlay registry root; serve resolves name@version specs "
             "from it on demand",
    )
    srv.set_defaults(func=_cmd_serve)

    sb = sub.add_parser(
        "submit",
        help="submit requests to a running 'repro serve' (one-shot or load)",
    )
    sb.add_argument(
        "op",
        choices=("map", "estimate", "simulate", "simulate_batch", "remap",
                 "ping", "stats", "topology", "shutdown", "load"),
    )
    sb.add_argument("workload", nargs="?", default=None)
    sb.add_argument("--socket", default=None, help="server unix socket path")
    sb.add_argument("--host", default="127.0.0.1")
    sb.add_argument("--port", type=int, default=0)
    sb.add_argument(
        "--overlay", default=None,
        help="overlay name (optional when the server holds exactly one)",
    )
    sb.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds",
    )
    sb.add_argument(
        "--json", action="store_true",
        help="print the canonical result document",
    )
    sb.add_argument(
        "--requests", type=int, default=64,
        help="[load] total requests to fire (default 64)",
    )
    sb.add_argument(
        "--concurrency", type=int, default=16,
        help="[load] concurrent connections (default 16)",
    )
    sb.add_argument(
        "--ops", default="map,estimate,simulate",
        help="[load] comma list of compute ops to mix",
    )
    sb.add_argument(
        "--workloads", dest="load_workloads", default="vecmax",
        help="[load] comma list of workload names to mix",
    )
    sb.add_argument(
        "--expect-errors", action="store_true",
        help="[load] do not fail the run when requests error "
             "(for admission-control experiments)",
    )
    sb.add_argument(
        "--assert-coalescing", action="store_true",
        help="[load] fail unless compiles < requests in server stats",
    )
    sb.add_argument(
        "--overlays", default=None,
        help="[load] comma list of overlay specs to mix (overrides "
             "--overlay; registry name@vN specs work here)",
    )
    sb.add_argument(
        "--cluster", action="store_true",
        help="[load] fetch the cluster topology and route each request "
             "directly to its owning shard (per-shard latency + balance)",
    )
    sb.add_argument(
        "--shards", type=int, default=1,
        help="[load] load-generator processes; the deterministic request "
             "plan is split across them and reports merge (default 1)",
    )
    sb.set_defaults(func=_cmd_submit)

    reg = sub.add_parser(
        "registry",
        help="versioned overlay registry: publish/pin/rollback named "
             "overlay versions on an artifact store",
    )
    reg.add_argument(
        "--root", required=True,
        help="registry/store root directory (shards share it)",
    )
    regsub = reg.add_subparsers(dest="registry_op", required=True)
    rpub = regsub.add_parser(
        "publish", help="register a design JSON as the next version"
    )
    rpub.add_argument("name", help="overlay family name")
    rpub.add_argument("design", help="design JSON file")
    rpub.add_argument("--note", default=None)
    rlist = regsub.add_parser("list", help="list registered names")
    rlist.add_argument("--json", action="store_true")
    rshow = regsub.add_parser("show", help="list every version of a name")
    rshow.add_argument("spec", help="overlay name (or name@vN)")
    rpin = regsub.add_parser("pin", help="pin a name to one version")
    rpin.add_argument("spec", help="name@vN")
    runpin = regsub.add_parser("unpin", help="remove a name's pin")
    runpin.add_argument("name")
    rroll = regsub.add_parser(
        "rollback", help="move the pin to an earlier version"
    )
    rroll.add_argument("name")
    rroll.add_argument(
        "--to-version", type=int, default=None,
        help="explicit version (default: one before the active one)",
    )
    reg.set_defaults(func=_cmd_registry)

    clu = sub.add_parser(
        "cluster",
        help="multi-shard serve: spawn N serve shards + the consistent-"
             "hash front-tier router as one unit",
    )
    clusub = clu.add_subparsers(dest="cluster_op", required=True)
    cserve = clusub.add_parser(
        "serve", help="spawn shards and route until shutdown"
    )
    cserve.add_argument(
        "designs", nargs="*",
        help="design JSON file(s) every shard preloads "
             "(may be empty with --registry)",
    )
    cserve.add_argument(
        "--run-dir", required=True,
        help="directory for shard sockets, logs, and metrics",
    )
    cserve.add_argument(
        "--shards", type=int, default=2,
        help="backend serve shard processes (default 2)",
    )
    cserve.add_argument(
        "--socket", default=None,
        help="router unix socket path (overrides --host/--port)",
    )
    cserve.add_argument("--host", default="127.0.0.1")
    cserve.add_argument(
        "--port", type=int, default=0,
        help="router TCP port (0 picks a free one)",
    )
    cserve.add_argument(
        "--registry", default=None, metavar="DIR",
        help="shared overlay registry root for every shard + the router",
    )
    cserve.add_argument(
        "--cache-dir", default=None,
        help="shared artifact store for served results",
    )
    cserve.add_argument(
        "--workers", type=int, default=2,
        help="compile worker processes per shard (default 2)",
    )
    cserve.add_argument(
        "--queue-limit", type=int, default=64,
        help="per-shard admission limit (default 64)",
    )
    cserve.add_argument(
        "--default-timeout", type=float, default=30.0,
        help="per-shard default request deadline (seconds)",
    )
    cserve.add_argument(
        "--health-interval", type=float, default=2.0,
        help="seconds between router health sweeps (default 2)",
    )
    cserve.add_argument(
        "--failover-retries", type=int, default=2,
        help="bounded retries on overloaded/unreachable shards",
    )
    cserve.add_argument(
        "--metrics", default=None,
        help="router metrics JSONL (shards get per-shard files in "
             "--run-dir)",
    )
    cserve.set_defaults(func=_cmd_cluster)

    val = sub.add_parser(
        "validate",
        help="structural invariants on the built-in suite + corpus replay",
    )
    val.add_argument(
        "--corpus", default=None,
        help="divergence-corpus directory to replay",
    )
    val.add_argument(
        "--rel-tol", type=float, default=None,
        help="tolerance override used when replaying corpus entries",
    )
    val.add_argument(
        "--abs-floor", type=float, default=None,
        help="absolute cycle gap always forgiven during replay",
    )
    val.add_argument(
        "--regression", default=None, metavar="DIR",
        help="also replay promoted regression cases under DIR (from "
             "'repro soak --promote'); exits 1 on behaviour changes",
    )
    val.set_defaults(func=_cmd_validate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
