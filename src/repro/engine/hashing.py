"""Stable content fingerprints for DSE jobs.

The persistent artifact store keys every overlay by *what produced it*: the
exact workload bodies, the full :class:`~repro.dse.DseConfig`, the seed
list, and a code-schema version.  Any change to any of those yields a new
key, so stale artifacts can never be returned — they are simply never
looked up again.

Fingerprints are SHA-256 over a canonical JSON form.  Canonicalization
recurses through dataclasses (field order is definition order, which is
part of the schema), maps enums to ``(type, name)`` pairs, and sorts sets
and dict keys, so the digest is independent of hash randomization, process,
and platform.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Iterable, Sequence

from ..dse import DseConfig
from ..ir import Workload

#: Bump whenever the meaning of a stored artifact changes — new DseResult
#: layout, new serialize format, new objective definition — so every old
#: on-disk artifact silently misses instead of deserializing stale science.
#: v2: the schedule-preserving fast path skips repair and charges
#: ``TimeModel.revalidate``, so modeled seconds / stats in old artifacts
#: are stale.
#: v3: ``DseResult``/``ExplorerState`` grew ``points`` — the full
#: LUT/FF/BRAM/DSP resource vector for every accepted DSE point — so
#: pre-v3 artifacts would deserialize without the trajectory the
#: ``repro.search`` study importer and ``dse_point`` metrics rely on.
CODE_SCHEMA_VERSION = 3


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serializable data with deterministic order."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        doc = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            doc[f.name] = canonicalize(getattr(obj, f.name))
        return doc
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.name]
    if isinstance(obj, dict):
        return {
            json.dumps(canonicalize(k), sort_keys=True): canonicalize(v)
            for k, v in sorted(
                obj.items(),
                key=lambda kv: json.dumps(canonicalize(kv[0]), sort_keys=True),
            )
        }
    if isinstance(obj, (set, frozenset)):
        items = [canonicalize(x) for x in obj]
        return sorted(items, key=lambda x: json.dumps(x, sort_keys=True))
    if isinstance(obj, (list, tuple)):
        return [canonicalize(x) for x in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__}")


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``obj``."""
    blob = json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def adg_fingerprint(adg: Any) -> str:
    """Digest of an ADG's full serialized structure (nodes, links, params).

    Keys the :mod:`repro.profile.memo` schedule/simulation caches: two
    ADGs with the same fingerprint are guaranteed to schedule and
    simulate identically.
    """
    from ..adg import adg_to_dict

    return fingerprint(adg_to_dict(adg))


def workload_fingerprint(workload: Workload) -> str:
    """Digest of one workload's full body (loops, arrays, statements)."""
    return fingerprint(workload)


def config_fingerprint(config: DseConfig) -> str:
    """Digest of a DSE configuration (including its time model)."""
    return fingerprint(config)


def job_key(
    workloads: Sequence[Workload],
    config: DseConfig,
    seeds: Iterable[int],
) -> str:
    """Content address of one engine job: workload set + config + seeds.

    The display name is deliberately excluded — two runs over identical
    inputs share an artifact regardless of what they were called.
    """
    return fingerprint(
        {
            "schema": CODE_SCHEMA_VERSION,
            "workloads": [canonicalize(w) for w in workloads],
            "config": canonicalize(config),
            "seeds": sorted(int(s) for s in seeds),
        }
    )
