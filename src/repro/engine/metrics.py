"""Structured event/metrics stream for engine runs.

Every engine job emits typed events — ``run_start``, ``seed_done``,
``seed_crashed``, ``cache_hit``, ``run_end`` — through a
:class:`MetricsLogger`.  Events are kept in memory for programmatic
inspection and, when a path is given, appended as JSON Lines so external
tooling can tail a long DSE.

:class:`EngineStats` aggregates across jobs (cache hits/misses, DSE
iterations actually executed, worker crashes, wall vs modeled time); the
``repro dse`` CLI and the benchmark session summary print it, and
EXPERIMENTS.md's "Engine" section renders it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class MetricsLogger:
    """Collects engine events; optionally mirrors them to a JSONL file."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        record = {"event": event, "time": time.time(), **fields}
        self.events.append(record)
        if self.path:
            with open(self.path, "a") as f:
                f.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def of_type(self, event: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["event"] == event]


@dataclass
class RunMetrics:
    """Summary of one engine job (one workload set, N seeds)."""

    key: str
    name: str
    seeds: List[int]
    jobs: int
    cache_hit: bool
    cache_tier: str            # "memory" | "disk" | "miss"
    wall_seconds: float = 0.0
    modeled_seconds: float = 0.0
    iterations: int = 0        # DSE iterations actually executed
    accepted: int = 0
    objective: float = 0.0
    best_seed: Optional[int] = None
    crashed_seeds: List[int] = field(default_factory=list)
    timed_out_seeds: List[int] = field(default_factory=list)
    resumed_seeds: List[int] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.iterations if self.iterations else 0.0

    @property
    def iterations_per_second(self) -> float:
        return self.iterations / self.wall_seconds if self.wall_seconds else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "name": self.name,
            "seeds": self.seeds,
            "jobs": self.jobs,
            "cache_hit": self.cache_hit,
            "cache_tier": self.cache_tier,
            "wall_seconds": self.wall_seconds,
            "modeled_seconds": self.modeled_seconds,
            "iterations": self.iterations,
            "accepted": self.accepted,
            "acceptance_rate": self.acceptance_rate,
            "iterations_per_second": self.iterations_per_second,
            "objective": self.objective,
            "best_seed": self.best_seed,
            "crashed_seeds": self.crashed_seeds,
            "timed_out_seeds": self.timed_out_seeds,
            "resumed_seeds": self.resumed_seeds,
        }


@dataclass
class EngineStats:
    """Aggregate counters across every job one engine instance ran."""

    jobs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    iterations_run: int = 0    # zero on a fully warm cache
    seeds_run: int = 0
    worker_crashes: int = 0
    resumes: int = 0
    wall_seconds: float = 0.0
    modeled_seconds: float = 0.0

    def absorb(self, metrics: RunMetrics) -> None:
        self.jobs += 1
        if metrics.cache_hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        self.iterations_run += metrics.iterations
        if not metrics.cache_hit:
            self.seeds_run += len(metrics.seeds) - len(metrics.crashed_seeds)
        self.worker_crashes += len(metrics.crashed_seeds)
        self.resumes += len(metrics.resumed_seeds)
        self.wall_seconds += metrics.wall_seconds
        self.modeled_seconds += metrics.modeled_seconds

    def summary(self) -> str:
        rate = (
            self.iterations_run / self.wall_seconds
            if self.wall_seconds
            else 0.0
        )
        return (
            f"engine: {self.jobs} jobs, {self.cache_hits} cache hits / "
            f"{self.cache_misses} misses, {self.iterations_run} DSE "
            f"iterations in {self.wall_seconds:.1f}s wall "
            f"({rate:.0f} it/s), {self.modeled_seconds / 3600.0:.1f}h "
            f"modeled, {self.worker_crashes} worker crashes, "
            f"{self.resumes} resumes"
        )
