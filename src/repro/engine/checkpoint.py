"""Checkpoint persistence for interrupted DSE runs.

The explorer snapshots its accepted state (:class:`repro.dse.ExplorerState`
— the accepted ADG as its serialize-format document, schedules, RNG state,
stats) every N iterations.  This module persists those snapshots so a
killed or crashed run resumes from the last one instead of starting over.

Checkpoints live under ``<dir>/<job_key>/seed-<seed>.ckpt``: the job key
already encodes workloads + config + seeds, so a checkpoint can never be
resumed against changed inputs — the changed inputs look for a different
directory.  Writes are atomic; loads verify the embedded config
fingerprint and treat any unreadable file as "no checkpoint".
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Callable, Optional

from ..dse import ExplorerState


def save_checkpoint(path: os.PathLike, state: ExplorerState) -> None:
    """Atomically write one explorer snapshot."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            pickle.dump(state, f, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_checkpoint(
    path: os.PathLike, expect_fingerprint: str = ""
) -> Optional[ExplorerState]:
    """Load a snapshot, or None if absent/corrupt/for-other-inputs."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        with open(path, "rb") as f:
            state = pickle.load(f)
    except Exception:
        return None
    if not isinstance(state, ExplorerState):
        return None
    if expect_fingerprint and state.config_fingerprint != expect_fingerprint:
        return None
    return state


class CheckpointManager:
    """Maps (job key, seed) to checkpoint files in one directory."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, job_key: str, seed: int) -> Path:
        return self.root / job_key / f"seed-{seed}.ckpt"

    def save(self, job_key: str, seed: int, state: ExplorerState) -> None:
        save_checkpoint(self.path_for(job_key, seed), state)

    def load(
        self, job_key: str, seed: int, expect_fingerprint: str = ""
    ) -> Optional[ExplorerState]:
        return load_checkpoint(self.path_for(job_key, seed), expect_fingerprint)

    def sink_for(self, job_key: str, seed: int) -> Callable[[ExplorerState], None]:
        path = self.path_for(job_key, seed)
        return lambda state: save_checkpoint(path, state)

    def discard(self, job_key: str) -> None:
        """Drop every per-seed checkpoint of a completed job."""
        shutil.rmtree(self.root / job_key, ignore_errors=True)
