"""The DSE engine: parallel multi-seed orchestration over the explorer.

One engine *job* is "the best overlay for this workload set under this
config, annealed from each of these seeds".  The engine:

* answers from its in-memory cache, then the persistent artifact store
  (key = content hash of workloads + config + seeds + schema version);
* on a miss, runs one annealer per seed through the shared
  :mod:`repro.jobs` runtime — a worker-process pool when ``workers > 1``
  (the :class:`~repro.jobs.ProcessPoolJobExecutor` serial-fallback rule
  applies), serially otherwise — and keeps the best objective (ties
  broken toward the lowest seed, so the winner is independent of
  completion order);
* isolates faults per seed via the runtime's
  :class:`~repro.jobs.FaultPolicy`: a crashed worker is recorded and
  the job degrades to the best of the survivors (it only fails when
  *every* seed fails);
* checkpoints each seed's annealer every ``checkpoint_every`` iterations
  and, with ``resume=True``, restarts interrupted seeds from their last
  snapshot — bit-identical to a run that never stopped;
* emits structured events/metrics (iterations/sec, acceptance rate,
  cache tier, wall vs modeled time) through :class:`MetricsLogger`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from time import perf_counter, sleep
from typing import Dict, List, Optional, Sequence, Tuple

from ..dse import DseConfig, DseResult, Explorer
from ..jobs import FaultPolicy, JobOutcome, JobRunner, ProcessPoolJobExecutor
from ..harness.cache import MemoryCache
from ..ir import Workload
from .checkpoint import CheckpointManager, load_checkpoint, save_checkpoint
from .hashing import CODE_SCHEMA_VERSION, config_fingerprint, job_key
from .metrics import EngineStats, MetricsLogger, RunMetrics

#: Default checkpoint cadence (annealer iterations between snapshots).
DEFAULT_CHECKPOINT_EVERY = 25


class EngineError(RuntimeError):
    """Every seed of a job failed; there is no survivor to return."""


@dataclass
class SeedJob:
    """Self-contained unit of work shipped to a worker process."""

    workloads: Tuple[Workload, ...]
    config: DseConfig
    name: str
    seed: int
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 0
    resume: bool = False
    config_key: str = ""
    inject_crash: bool = False   # fault-injection hook for tests
    inject_hang_s: float = 0.0   # hang-injection hook for timeout tests


@dataclass
class SeedOutcome:
    seed: int
    result: Optional[DseResult]
    error: Optional[str] = None
    resumed: bool = False
    timed_out: bool = False


def run_seed_job(job: SeedJob) -> SeedOutcome:
    """Run one seed's annealer (module-level so it pickles to workers)."""
    if job.inject_hang_s:
        sleep(job.inject_hang_s)
    if job.inject_crash:
        raise RuntimeError(f"injected crash (seed {job.seed})")
    config = replace(job.config, seed=job.seed)
    explorer = Explorer(list(job.workloads), config, name=job.name)
    resume_state = None
    sink = None
    if job.checkpoint_path:
        if job.resume:
            resume_state = load_checkpoint(job.checkpoint_path, job.config_key)
        if job.checkpoint_every:
            path = job.checkpoint_path
            key = job.config_key

            def sink(state, _path=path, _key=key):
                state.config_fingerprint = _key
                save_checkpoint(_path, state)

    result = explorer.run(
        resume=resume_state,
        checkpoint_every=job.checkpoint_every,
        checkpoint_sink=sink,
    )
    return SeedOutcome(
        seed=job.seed, result=result, resumed=resume_state is not None
    )


@dataclass
class EngineResult:
    """Best-of-seeds outcome of one engine job."""

    result: DseResult
    key: str
    from_cache: bool
    metrics: RunMetrics
    outcomes: List[SeedOutcome] = field(default_factory=list)

    @property
    def objective(self) -> float:
        return self.result.choice.objective


class DseEngine:
    """Parallel DSE orchestrator with persistent artifact caching."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        jobs: int = 1,
        memory_cache: Optional[MemoryCache] = None,
        metrics: Optional[MetricsLogger] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        seed_timeout: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.cache_dir = cache_dir
        # ``workers`` is the canonical name (CLI convention); ``jobs``
        # survives as the legacy keyword.
        self.jobs = max(1, int(workers if workers is not None else jobs))
        #: Per-seed wall-clock budget (seconds), enforced through future
        #: deadlines on the worker-pool path: a seed that exceeds it is
        #: recorded as a failure and the job degrades to the best of the
        #: survivors.  ``None`` disables; the serial in-process path
        #: cannot preempt a running annealer and ignores it.
        self.seed_timeout = seed_timeout
        self.memory = memory_cache if memory_cache is not None else MemoryCache()
        self.metrics = metrics if metrics is not None else MetricsLogger()
        self.checkpoint_every = checkpoint_every
        self.stats = EngineStats()
        if cache_dir:
            from .store import ArtifactStore

            self.store: Optional["ArtifactStore"] = ArtifactStore(cache_dir)
            self.checkpoints: Optional[CheckpointManager] = CheckpointManager(
                os.path.join(cache_dir, "checkpoints")
            )
        else:
            self.store = None
            self.checkpoints = None

    # ------------------------------------------------------------------
    def explore(
        self,
        workloads: Sequence[Workload],
        config: Optional[DseConfig] = None,
        name: str = "overlay",
        seeds: Optional[Sequence[int]] = None,
        resume: bool = False,
        inject_crash_seeds: Sequence[int] = (),
        inject_hang: Optional[Dict[int, float]] = None,
    ) -> EngineResult:
        """Best-of-seeds DSE for ``workloads``, cached and fault-isolated."""
        config = config or DseConfig()
        seed_list = sorted(set(seeds)) if seeds else [config.seed]
        key = job_key(workloads, config, seed_list)
        cached, tier = self._lookup(key)
        metrics = RunMetrics(
            key=key,
            name=name,
            seeds=list(seed_list),
            jobs=self.jobs,
            cache_hit=cached is not None,
            cache_tier=tier,
        )
        if cached is not None:
            metrics.objective = cached.choice.objective
            metrics.modeled_seconds = cached.modeled_seconds
            self.metrics.emit(
                "cache_hit", key=key, name=name, tier=tier,
                objective=cached.choice.objective,
            )
            self.stats.absorb(metrics)
            return EngineResult(
                result=cached, key=key, from_cache=True, metrics=metrics
            )

        self.metrics.emit(
            "run_start", key=key, name=name, seeds=list(seed_list),
            jobs=self.jobs, iterations=config.iterations,
            schema=CODE_SCHEMA_VERSION,
        )
        started = perf_counter()
        outcomes = self._run_seeds(
            workloads, config, name, seed_list, key, resume,
            set(inject_crash_seeds), inject_hang or {},
        )
        wall = perf_counter() - started

        survivors = [o for o in outcomes if o.result is not None]
        if not survivors:
            errors = "; ".join(f"seed {o.seed}: {o.error}" for o in outcomes)
            self.metrics.emit("run_failed", key=key, name=name, errors=errors)
            raise EngineError(f"all {len(outcomes)} seed workers failed: {errors}")
        best = max(survivors, key=lambda o: (o.result.choice.objective, -o.seed))

        metrics.wall_seconds = wall
        metrics.iterations = sum(
            o.result.stats.iterations for o in survivors
        )
        metrics.accepted = sum(o.result.stats.accepted for o in survivors)
        metrics.modeled_seconds = best.result.modeled_seconds
        metrics.objective = best.result.choice.objective
        metrics.best_seed = best.seed
        metrics.crashed_seeds = [o.seed for o in outcomes if o.result is None]
        metrics.timed_out_seeds = [o.seed for o in outcomes if o.timed_out]
        metrics.resumed_seeds = [o.seed for o in survivors if o.resumed]
        self.stats.absorb(metrics)
        self.metrics.emit("run_end", **metrics.as_dict())

        self.memory.put(("engine", key), best.result)
        if self.store is not None:
            self.store.put(
                key,
                best.result,
                meta={
                    "name": name,
                    "workloads": [w.name for w in workloads],
                    "seeds": list(seed_list),
                    "best_seed": best.seed,
                    "objective": best.result.choice.objective,
                    "iterations": config.iterations,
                    "schema": CODE_SCHEMA_VERSION,
                },
            )
        if self.checkpoints is not None:
            self.checkpoints.discard(key)
        return EngineResult(
            result=best.result,
            key=key,
            from_cache=False,
            metrics=metrics,
            outcomes=outcomes,
        )

    # ------------------------------------------------------------------
    def _lookup(self, key: str) -> Tuple[Optional[DseResult], str]:
        hit = self.memory.get(("engine", key))
        if hit is not None:
            return hit, "memory"
        if self.store is not None:
            hit = self.store.get(key)
            if hit is not None:
                self.memory.put(("engine", key), hit)
                return hit, "disk"
        return None, "miss"

    def _make_jobs(
        self,
        workloads: Sequence[Workload],
        config: DseConfig,
        name: str,
        seeds: Sequence[int],
        key: str,
        resume: bool,
        crash_seeds: set,
        hang_seeds: Optional[Dict[int, float]] = None,
    ) -> List[SeedJob]:
        cfg_key = config_fingerprint(config)
        hang_seeds = hang_seeds or {}
        jobs = []
        for seed in seeds:
            ckpt = (
                str(self.checkpoints.path_for(key, seed))
                if self.checkpoints is not None
                else None
            )
            jobs.append(
                SeedJob(
                    workloads=tuple(workloads),
                    config=config,
                    name=name,
                    seed=seed,
                    checkpoint_path=ckpt,
                    checkpoint_every=self.checkpoint_every if ckpt else 0,
                    resume=resume,
                    config_key=cfg_key,
                    inject_crash=seed in crash_seeds,
                    inject_hang_s=hang_seeds.get(seed, 0.0),
                )
            )
        return jobs

    def _run_seeds(
        self,
        workloads: Sequence[Workload],
        config: DseConfig,
        name: str,
        seeds: Sequence[int],
        key: str,
        resume: bool,
        crash_seeds: set,
        hang_seeds: Optional[Dict[int, float]] = None,
    ) -> List[SeedOutcome]:
        jobs = self._make_jobs(
            workloads, config, name, seeds, key, resume, crash_seeds,
            hang_seeds,
        )
        executor = ProcessPoolJobExecutor(self.jobs)
        runner = JobRunner(
            executor=executor,
            # all_failed_raises=False: explore() owns the all-failed
            # EngineError so its message stays bit-identical.
            policy=FaultPolicy(
                timeout_s=self.seed_timeout, all_failed_raises=False
            ),
            metrics=self.metrics,
            name="engine.seeds",
        )
        results = runner.run(
            run_seed_job,
            jobs,
            label_fn=lambda job: job.seed,
            on_outcome=self._emit_seed_event,
        )
        if executor.last_mode == "serial-fallback":
            self.metrics.emit("pool_unavailable", key=key)
        return [self._to_seed_outcome(out) for out in results]

    def _emit_seed_event(self, out: JobOutcome) -> None:
        """Legacy per-seed event stream, rebuilt from runtime outcomes."""
        if out.timed_out:
            self.metrics.emit(
                "seed_timeout",
                seed=out.payload.seed,
                seed_timeout=self.seed_timeout,
            )
        elif out.error is not None:
            self.metrics.emit(
                "seed_crashed", seed=out.payload.seed, error=out.error
            )
        else:
            outcome = out.result
            self.metrics.emit(
                "seed_done",
                seed=outcome.seed,
                objective=outcome.result.choice.objective,
                resumed=outcome.resumed,
            )
            # Full resource vector for every accepted point, not just the
            # final best — the search-study importer and bench attribution
            # both read these back out of the JSONL stream.
            for it, modeled_h, objective, lut, ff, bram, dsp in (
                outcome.result.points
            ):
                self.metrics.emit(
                    "dse_point",
                    seed=outcome.seed,
                    iteration=it,
                    modeled_hours=modeled_h,
                    objective=objective,
                    lut=lut,
                    ff=ff,
                    bram=bram,
                    dsp=dsp,
                )

    def _to_seed_outcome(self, out: JobOutcome) -> SeedOutcome:
        if out.timed_out:
            return SeedOutcome(
                seed=out.payload.seed,
                result=None,
                error=f"timed out after {self.seed_timeout}s (seed_timeout)",
                timed_out=True,
            )
        if out.error is not None:
            return SeedOutcome(
                seed=out.payload.seed, result=None, error=out.error
            )
        return out.result
