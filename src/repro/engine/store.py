"""Persistent content-addressed artifact store.

Artifacts (``DseResult`` objects and anything picklable) live on disk under
``<root>/<key[:2]>/<key>.pkl`` with a small JSON sidecar describing what
produced them.  Keys come from :mod:`repro.engine.hashing`, so a key *is*
its inputs: a changed workload body, config field, or code-schema version
produces a different key and the old artifact is never consulted again.

Writes are atomic (temp file + rename) so a killed process never leaves a
half-written artifact behind; unreadable or corrupt entries are treated as
misses and dropped.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional


@dataclass
class StoreStats:
    """Hit/miss accounting for one store instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
        }


class ArtifactStore:
    """On-disk pickle store addressed by content hash."""

    _MISSING = object()

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _meta_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str, default: Any = None) -> Any:
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except FileNotFoundError:
            # Absent — or discarded by a concurrent process between our
            # lookup and open: a plain miss either way, never "corrupt".
            self.stats.misses += 1
            return default
        except Exception:
            # Truncated write, schema drift inside the pickle, bad disk —
            # all equivalent to "not cached"; drop the entry.
            self.stats.corrupt += 1
            self.stats.misses += 1
            self.discard(key)
            return default
        self.stats.hits += 1
        return value

    @staticmethod
    def _write_atomic(path: Path, writer) -> None:
        """Write via a temp file + ``os.replace`` so readers never see a
        torn file — only the old content or the complete new content."""
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, mode="wb") as f:
                writer(f)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def put(self, key: str, value: Any, meta: Optional[Dict[str, Any]] = None) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_atomic(
            path,
            lambda f: pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL),
        )
        if meta is not None:
            blob = json.dumps(meta, indent=2, sort_keys=True).encode("utf-8")
            self._write_atomic(self._meta_path(key), lambda f: f.write(blob))
        self.stats.puts += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def meta(self, key: str) -> Optional[Dict[str, Any]]:
        """The JSON sidecar, or ``None`` when absent or unreadable.

        A torn/unparseable sidecar (pre-atomic writers, bad disk) is
        treated exactly like a missing one: no ``hits``/``corrupt``
        accounting, no discard of the (independently valid) artifact.
        """
        path = self._meta_path(key)
        try:
            with open(path) as f:
                return json.load(f)
        except FileNotFoundError:
            return None
        except Exception:
            return None

    def discard(self, key: str) -> None:
        for path in (self._path(key), self._meta_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*/*.pkl")):
            yield path.stem

    def size(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> None:
        for key in list(self.keys()):
            self.discard(key)
