"""Parallel DSE orchestration with persistent caching and checkpointing.

The headline results all funnel through the simulated-annealing explorer;
this package turns those explorations into *jobs*: run in parallel across
seeds with per-worker fault isolation, answered from a content-addressed
on-disk artifact store when the inputs are unchanged, checkpointed so an
interrupted run resumes where it stopped, and instrumented with a
structured metrics stream.
"""

from .checkpoint import CheckpointManager, load_checkpoint, save_checkpoint
from .hashing import (
    CODE_SCHEMA_VERSION,
    canonicalize,
    config_fingerprint,
    fingerprint,
    job_key,
    workload_fingerprint,
)
from .metrics import EngineStats, MetricsLogger, RunMetrics
from .orchestrator import (
    DEFAULT_CHECKPOINT_EVERY,
    DseEngine,
    EngineError,
    EngineResult,
    SeedJob,
    SeedOutcome,
    run_seed_job,
)
from .store import ArtifactStore, StoreStats

__all__ = [
    "ArtifactStore",
    "CODE_SCHEMA_VERSION",
    "CheckpointManager",
    "DEFAULT_CHECKPOINT_EVERY",
    "DseEngine",
    "EngineError",
    "EngineResult",
    "EngineStats",
    "MetricsLogger",
    "RunMetrics",
    "SeedJob",
    "SeedOutcome",
    "StoreStats",
    "canonicalize",
    "config_fingerprint",
    "fingerprint",
    "job_key",
    "load_checkpoint",
    "run_seed_job",
    "save_checkpoint",
    "workload_fingerprint",
]
