"""Time-multiplexed DSP-block kernels (beyond the paper's Table II).

The DSP-block overlay line of work (PAPERS.md) time-multiplexes a small
number of hard multiply-accumulate blocks across a much deeper arithmetic
graph.  These kernels have long mul-add chains per output element — far
more compute nodes than a tile has FUs — so the scheduler must fold many
operations onto each PE and the dispatcher must keep the shared FUs fed
every cycle.  They are the arithmetic-density counterpart to the
control-density :mod:`repro.workloads.fsm` suite.
"""

from __future__ import annotations

from ..ir import F64, I16, Op, Workload, WorkloadBuilder


def horner() -> Workload:
    """Degree-8 polynomial evaluation by Horner's rule.

    ``y = ((((c8*x + c7)*x + c6)*x + ...)*x + c0`` — eight chained
    multiply-adds per sample, the canonical shape a time-multiplexed MAC
    block evaluates one stage per cycle.
    """
    wb = WorkloadBuilder("horner", suite="tdm", dtype=F64, size_desc="8192x8")
    n = 8192
    degree = 8
    x = wb.array("x", n)
    c = wb.array("c", degree + 1)
    y = wb.array("y", n)
    i = wb.loop("i", n)
    acc = c[degree]
    for k in reversed(range(degree)):
        acc = acc * x[i] + c[k]
    wb.assign(y[i], acc)
    return wb.build()


def biquad_cascade() -> Workload:
    """Two cascaded biquad filter sections (direct form I, flattened).

    Each section is five taps (two feed-forward delays, two feedback
    delays); the cascade multiplies ten coefficient streams into one
    sample — a classic DSP48 time-sharing benchmark.  Two sections is
    the densest cascade that still maps onto the general overlay's port
    budget (three no longer schedules).
    """
    wb = WorkloadBuilder(
        "biquad-cascade", suite="tdm", dtype=I16, size_desc="16384x2x2"
    )
    n = 16384
    sections = 2
    x = wb.array("x", n + 2)
    fb = wb.array("fb", n + 2)
    coef = wb.array("coef", sections * 5)
    y = wb.array("y", n)
    i = wb.loop("i", n)
    acc = None
    for s in range(sections):
        base = s * 5
        stage = (
            coef[base] * x[i + 2]
            + coef[base + 1] * x[i + 1]
            + coef[base + 2] * x[i]
            - coef[base + 3] * fb[i + 1]
            - coef[base + 4] * fb[i]
        )
        acc = stage if acc is None else acc + stage
    wb.assign(y[i], acc)
    return wb.build()


def mac_bank() -> Workload:
    """32-tap multiply-accumulate bank over a sample window.

    One output per sample, 32 mul-adds each — the per-output op count is
    deliberately far above a tile's multiplier count, so throughput is
    set by how well the shared MACs are time-multiplexed (contrast with
    the dsp suite's 16-tap ``fir``, which fits a tile).
    """
    wb = WorkloadBuilder("mac-bank", suite="tdm", dtype=I16, size_desc="8192x32")
    n = 8192
    taps = 32
    x = wb.array("x", n + taps)
    w = wb.array("w", taps)
    y = wb.array("y", n)
    i = wb.loop("i", n)
    j = wb.loop("j", taps, parallel=False)
    wb.accumulate(y[i], w[j] * x[i + j], op=Op.ADD)
    return wb.build()


TDM_WORKLOADS = (horner, biquad_cascade, mac_bank)
