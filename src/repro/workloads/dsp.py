"""DSP-suite workloads (from REVEL, per Table II of the paper).

Sizes and datatypes follow Table II: cholesky/solver 48x48 f64, fft 2^12
f32x2, fir 2^10 taps x 199 outputs f64, mm 32^3 f64.  Loop structures mirror
the reference C kernels; triangular loops are modeled as variable-trip loops
(the decoupled-spatial ISA supports variable trip counts natively, while the
HLS baseline suffers II inflation on them — Table IV).
"""

from __future__ import annotations

from ..ir import F32X2, F64, Op, Workload, WorkloadBuilder


def cholesky() -> Workload:
    """In-place Cholesky factorization, 48x48 doubles.

    The dominant region is the trailing-submatrix update
    ``A[i][j] -= (A[i][k] * A[j][k]) / A[k][k]`` under a triangular
    (variable-trip) i/j nest, preceded by the column scale which contributes
    the second divide of Table II's op mix.
    """
    wb = WorkloadBuilder("cholesky", suite="dsp", dtype=F64, size_desc="48^2")
    n = 48
    a = wb.array("a", n * n)
    d = wb.array("d", n)
    # Row-oriented (right-looking) update: the innermost loop walks a row of
    # the trailing submatrix with unit stride, as the REVEL kernel does.
    k = wb.loop("k", n)
    i = wb.loop("i", n, variable_trip=True)
    j = wb.loop("j", n, variable_trip=True, parallel=False)
    # Column scale: a[i*n+k] / d[k] (one divide, stationary over j), then
    # the rank-1 update against the pivot row.
    scaled = a[i * n + k] / d[k]
    update = (scaled * a[k * n + j]) / d[j]
    wb.accumulate(a[i * n + j], update, op=Op.SUB)
    return wb.build()


def fft() -> Workload:
    """Radix-2 FFT butterfly stage over 2^12 complex f32 points.

    One region covers a single stage: each butterfly performs a complex
    multiply by a twiddle (4 mul + 2 add on scalar lanes) and a complex
    add/sub pair (4 adds).  The stage/index bookkeeping is stream-generated.
    """
    wb = WorkloadBuilder("fft", suite="dsp", dtype=F32X2, size_desc="2^12")
    n = 4096
    stages = 12
    x = wb.array("x", n)
    y = wb.array("y", n)
    w = wb.array("w", n // 2)
    s = wb.loop("s", stages, parallel=False)
    jj = wb.loop("j", n // 2)
    # Complex butterfly expressed on packed f32x2 elements: the MUL carries
    # the 4mul+2add complex product; the explicit ADD/SUB carry 2 adds each.
    t = w[jj] * x[jj * 2 + 1]
    wb.assign(y[jj], x[jj * 2] + t)
    wb.assign(y[jj + n // 2], x[jj * 2] - t)
    return wb.build()


def fir() -> Workload:
    """Tiled FIR filter: 2^10-tap filter over 199 output tiles (Fig. 5).

    The canonical spatial-memory example: ``a`` has general reuse (footprint
    255 vs traffic 16K per tile), ``b[j]`` has stationary reuse across the
    innermost loop, and ``c`` has recurrent read/write reuse over ``j``.
    """
    wb = WorkloadBuilder("fir", suite="dsp", dtype=F64, size_desc="2^10 x199")
    taps = 1024
    tile = 32
    tiles = 199 * 32 // tile  # 199 outputs per the paper's sizing
    a = wb.array("a", taps + tiles * tile - 1)
    b = wb.array("b", taps)
    c = wb.array("c", tiles * tile)
    io = wb.loop("io", tiles)
    j = wb.loop("j", taps, parallel=False)
    ii = wb.loop("ii", tile)
    wb.accumulate(c[io * tile + ii], a[io * tile + ii + j] * b[j], op=Op.ADD)
    return wb.build()


def solver() -> Workload:
    """Forward triangular solve, 48x48 doubles.

    ``b[i] -= A[i][j] * (b[j] / A[j][j])`` with a variable-trip inner loop;
    the divide reloads the freshly produced pivot each ``j`` iteration.
    """
    wb = WorkloadBuilder("solver", suite="dsp", dtype=F64, size_desc="48^2")
    n = 48
    a = wb.array("a", n * n)
    b = wb.array("b", n)
    d = wb.array("d", n)
    # Row-oriented substitution: each row's dot product walks A with unit
    # stride; the running b[i] is a (variable-trip) inner reduction.
    i = wb.loop("i", n, parallel=False)
    j = wb.loop("j", n, variable_trip=True, parallel=False)
    pivot = b[j] / d[j]
    wb.accumulate(b[i], a[i * n + j] * pivot, op=Op.SUB)
    return wb.build()


def mm() -> Workload:
    """Untiled 32^3 double matrix multiply (contrast with MachSuite gemm)."""
    wb = WorkloadBuilder("mm", suite="dsp", dtype=F64, size_desc="32^3")
    n = 32
    a = wb.array("a", n * n)
    b = wb.array("b", n * n)
    c = wb.array("c", n * n)
    i = wb.loop("i", n)
    j = wb.loop("j", n)
    k = wb.loop("k", n, parallel=False)
    wb.accumulate(c[i * n + j], a[i * n + k] * b[k * n + j], op=Op.ADD)
    return wb.build()


DSP_WORKLOADS = (cholesky, fft, fir, solver, mm)
