"""MachSuite workloads (per Table II of the paper).

stencil-3d 34^3 i64, crs/ellpack 494-row x4 sparse f64, gemm 64^2 i64
(blocked), stencil-2d 66^2 i64 with a 3x3 kernel.  ``crs`` and ``ellpack``
exercise indirect streams (``x[col[j]]``); ``crs`` additionally has a
variable-trip inner loop from the CSR row pointers.
"""

from __future__ import annotations

from ..ir import F64, I64, Op, Workload, WorkloadBuilder


def stencil_3d() -> Workload:
    """7-point 3D stencil on a 34^3 i64 grid (32^3 interior points).

    ``out = C0*in[center] + C1*(6 neighbor sum)`` — two multiplies and six
    adds per point before vectorization.
    """
    wb = WorkloadBuilder("stencil-3d", suite="machsuite", dtype=I64, size_desc="34^3x8")
    n = 34
    inner = n - 2
    plane = n * n
    src = wb.array("orig", n * n * n)
    dst = wb.array("sol", n * n * n)
    coef = wb.array("coef", 2)
    i = wb.loop("i", inner)
    j = wb.loop("j", inner)
    k = wb.loop("k", inner)
    center = (i + 1) * plane + (j + 1) * n + (k + 1)
    neighbors = (
        src[center - plane]
        + src[center + plane]
        + src[center - n]
        + src[center + n]
        + src[center - 1]
        + src[center + 1]
    )
    wb.assign(dst[center], coef[0] * src[center] + coef[1] * neighbors)
    return wb.build()


def crs() -> Workload:
    """CSR sparse matrix-vector multiply, 494 rows, ~4 nnz per row.

    The inner loop trip is row-dependent (variable), and the ``x`` gather is
    indirect through the column-index stream — both patterns the paper calls
    out as HLS-hostile but natively supported by the spatial ISA.
    """
    wb = WorkloadBuilder("crs", suite="machsuite", dtype=F64, size_desc="494x4")
    rows = 494
    nnz_per_row = 4
    nnz = rows * nnz_per_row
    val = wb.array("val", nnz)
    col = wb.array("col", nnz, dtype=I64)
    x = wb.array("x", rows)
    y = wb.array("y", rows)
    i = wb.loop("i", rows)
    j = wb.loop("j", nnz_per_row, variable_trip=True, parallel=False)
    wb.accumulate(y[i], val[i * nnz_per_row + j] * x[col[i * nnz_per_row + j]], op=Op.ADD)
    return wb.build()


def gemm() -> Workload:
    """Blocked 64x64 i64 matrix multiply (MachSuite ``gemm-blocked``).

    Tiled so each 8x8 block of ``c`` stays resident; contrast with the DSP
    suite's untiled ``mm``.  The blocking gives ``a``/``b`` tile-local
    general reuse that the scratchpad can capture.
    """
    wb = WorkloadBuilder("gemm", suite="machsuite", dtype=I64, size_desc="64^2")
    n = 64
    blk = 8
    nblk = n // blk
    a = wb.array("a", n * n)
    b = wb.array("b", n * n)
    c = wb.array("c", n * n)
    jb = wb.loop("jb", nblk)
    kb = wb.loop("kb", nblk, parallel=False)
    i = wb.loop("i", n)
    k = wb.loop("k", blk, parallel=False)
    j = wb.loop("j", blk)
    wb.accumulate(
        c[i * n + jb * blk + j],
        a[i * n + kb * blk + k] * b[(kb * blk + k) * n + jb * blk + j],
        op=Op.ADD,
    )
    return wb.build()


def stencil_2d() -> Workload:
    """3x3 convolution stencil over a 66x66 i64 grid (64x64 interior).

    All nine filter taps multiply a shifted window of the input; the window
    overlap between consecutive iterations is the reuse opportunity the
    paper's Q2 discusses (line-buffer specialization on HLS, manual unroll
    on OverGen).
    """
    wb = WorkloadBuilder("stencil-2d", suite="machsuite", dtype=I64, size_desc="66^2x3^2")
    n = 66
    inner = n - 2
    src = wb.array("orig", n * n)
    dst = wb.array("sol", n * n)
    filt = wb.array("filt", 9)
    r = wb.loop("r", inner)
    c = wb.loop("c", inner)
    acc = None
    for k1 in range(3):
        for k2 in range(3):
            term = filt[k1 * 3 + k2] * src[(r + k1) * n + (c + k2)]
            acc = term if acc is None else acc + term
    wb.assign(dst[(r + 1) * n + (c + 1)], acc)
    return wb.build()


def ellpack() -> Workload:
    """ELLPACK sparse matrix-vector multiply, 494 rows x 4-wide.

    Fixed-width rows (no variable trip) but still an indirect ``x`` gather.
    The dense ``x`` vector must be replicated into every tile's scratchpad —
    the broadcast-bandwidth limitation discussed under Q1.
    """
    wb = WorkloadBuilder("ellpack", suite="machsuite", dtype=F64, size_desc="494x4")
    rows = 494
    width = 4
    nzval = wb.array("nzval", rows * width)
    cols = wb.array("cols", rows * width, dtype=I64)
    x = wb.array("x", rows)
    y = wb.array("y", rows)
    i = wb.loop("i", rows)
    j = wb.loop("j", width, parallel=False)
    wb.accumulate(y[i], nzval[i * width + j] * x[cols[i * width + j]], op=Op.ADD)
    return wb.build()


MACHSUITE_WORKLOADS = (stencil_3d, crs, gemm, stencil_2d, ellpack)
