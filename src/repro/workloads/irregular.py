"""Irregular / data-dependent trip-count kernels (beyond Table II).

The paper's Q2 argument is that variable trip counts and indirect
streams are natively supported by the stream-dataflow ISA while HLS
needs manual rewrites; Table II only exercises that through ``crs``.
These kernels make irregularity the whole point: every inner loop has a
data-dependent trip count, and two of the three also gather through an
index stream.  They stress the stream dispatcher's ability to keep
utilization up when the compute per outer iteration is unpredictable.
"""

from __future__ import annotations

from ..ir import F64, I64, Op, Workload, WorkloadBuilder


def ragged_rows() -> Workload:
    """Row-sum over a ragged matrix (CSR-style row-pointer trip counts).

    ``y[i] = sum_j val[i*w + j]`` where the per-row ``j`` trip comes from
    row pointers at runtime — pure variable-trip streaming with no
    indirection, isolating the trip-count effect from the gather effect.
    """
    wb = WorkloadBuilder(
        "ragged-rows", suite="irregular", dtype=F64, size_desc="2048x8"
    )
    rows = 2048
    width = 8
    val = wb.array("val", rows * width)
    y = wb.array("y", rows)
    i = wb.loop("i", rows)
    j = wb.loop("j", width, variable_trip=True, parallel=False)
    wb.accumulate(y[i], val[i * width + j], op=Op.ADD)
    return wb.build()


def hash_probe() -> Workload:
    """Open-addressing probe: walk a bucket chain of data-dependent length.

    Each key probes up to eight slots (``variable_trip``: the expected
    chain is half that) and gathers the stored values through the slot
    index stream — a hash-join build/probe inner loop.
    """
    wb = WorkloadBuilder(
        "hash-probe", suite="irregular", dtype=I64, size_desc="4096x8"
    )
    keys = 4096
    probes = 8
    table = wb.array("table", keys)
    slot = wb.array("slot", keys * probes, dtype=I64)
    hits = wb.array("hits", keys)
    i = wb.loop("i", keys)
    j = wb.loop("j", probes, variable_trip=True, parallel=False)
    wb.accumulate(hits[i], table[slot[i * probes + j]], op=Op.ADD)
    return wb.build()


def frontier_gather() -> Workload:
    """Graph frontier expansion: gather weighted neighbor contributions.

    ``out[v] += w[e] * x[nbr[e]]`` over a variable-degree adjacency list
    — the sparse push step of BFS/PageRank-style traversals, combining a
    data-dependent degree loop with an indirect vertex gather.
    """
    wb = WorkloadBuilder(
        "frontier-gather", suite="irregular", dtype=F64, size_desc="1024x16"
    )
    verts = 1024
    degree = 16
    nbr = wb.array("nbr", verts * degree, dtype=I64)
    w = wb.array("w", verts * degree)
    x = wb.array("x", verts)
    out = wb.array("out", verts)
    v = wb.loop("v", verts)
    e = wb.loop("e", degree, variable_trip=True, parallel=False)
    wb.accumulate(
        out[v], w[v * degree + e] * x[nbr[v * degree + e]], op=Op.ADD
    )
    return wb.build()


IRREGULAR_WORKLOADS = (ragged_rows, hash_probe, frontier_gather)
