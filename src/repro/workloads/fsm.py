"""FSM / control-dominated kernels (beyond the paper's Table II).

Wilson & Stitt's scalable FSM overlay (PAPERS.md) targets kernels whose
cost is branching, not arithmetic; OverGen's answer is the PE predication
lookup table (Section VI-E), which if-converts control into ``CMP`` +
``SELECT`` dataflow.  These workloads are select-chain heavy with almost
no multiplies, so they stress the dispatcher and the predication path
rather than the FU array — the opposite corner from the DSP suites.
"""

from __future__ import annotations

from ..ir import I16, I64, Op, Select, Workload, WorkloadBuilder, as_expr, compare


def threshold_fsm() -> Workload:
    """Three-state threshold grader: out = x>hi ? 2 : (x>lo ? 1 : 0).

    A 1D quantizer state machine, fully if-converted into a nested
    select chain — two compares and two selects per element, zero
    multiplies.
    """
    wb = WorkloadBuilder(
        "threshold-fsm", suite="fsm", dtype=I64, size_desc="16384x8"
    )
    n = 16384
    x = wb.array("x", n)
    lohi = wb.array("lohi", 2)
    out = wb.array("out", n)
    i = wb.loop("i", n)
    v = x[i]
    upper = Select(compare(v, lohi[1]), as_expr(2), as_expr(1))
    wb.assign(out[i], Select(compare(v, lohi[0]), upper, as_expr(0)))
    return wb.build()


def debounce() -> Workload:
    """Two-sample debouncer: accept a new level only when it persists.

    ``out = (raw == prev) ? raw : held`` — the classic switch-debounce
    FSM, if-converted: the equality test becomes two ``CMP``s feeding a
    select tree (``a==b`` as ``!(a>b) && !(b>a)``).
    """
    wb = WorkloadBuilder(
        "debounce", suite="fsm", dtype=I16, size_desc="32768x2"
    )
    n = 32768
    raw = wb.array("raw", n)
    prev = wb.array("prev", n)
    held = wb.array("held", n)
    out = wb.array("out", n)
    i = wb.loop("i", n)
    changed = Select(
        compare(raw[i], prev[i]),
        as_expr(1),
        Select(compare(prev[i], raw[i]), as_expr(1), as_expr(0)),
    )
    wb.assign(out[i], Select(changed, held[i], raw[i]))
    return wb.build()


def edge_count() -> Workload:
    """Signal-transition counter: edges += (x[i] != x[i+1]).

    A control-dominated reduction — every element contributes a compare
    and a select, and the only arithmetic is the final popcount-style
    accumulate.  This is the FSM-overlay paper's bread-and-butter shape:
    a state observer over a long sample stream.
    """
    wb = WorkloadBuilder(
        "edge-count", suite="fsm", dtype=I64, size_desc="16384x8"
    )
    n = 16384
    x = wb.array("x", n + 1)
    edges = wb.array("edges", 1)
    i = wb.loop("i", n)
    a, b = x[i], x[i + 1]
    rose = Select(compare(a, b), as_expr(1), as_expr(0))
    fell = Select(compare(b, a), as_expr(1), as_expr(0))
    wb.accumulate(edges[0], rose + fell, op=Op.ADD)
    return wb.build()


FSM_WORKLOADS = (threshold_fsm, debounce, edge_count)
