"""The 19 evaluation workloads of Table II, grouped into three suites.

Every workload is a factory function returning a fresh :class:`~repro.ir.Workload`;
use :func:`get_workload` / :func:`get_suite` / :func:`all_workloads` for
registry-style access.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..ir import Workload
from .dsp import DSP_WORKLOADS, cholesky, fft, fir, mm, solver
from .machsuite import (
    MACHSUITE_WORKLOADS,
    crs,
    ellpack,
    gemm,
    stencil_2d,
    stencil_3d,
)
from .vision import (
    VISION_WORKLOADS,
    accumulate,
    accumulate_squared,
    accumulate_weighted,
    bgr2grey,
    blur,
    channel_extract,
    convert_bit,
    derivative,
    vecmax,
)

#: Suite name -> ordered factory tuple (order matches the paper's figures).
SUITES: Dict[str, Tuple[Callable[[], Workload], ...]] = {
    "dsp": DSP_WORKLOADS,
    "machsuite": MACHSUITE_WORKLOADS,
    "vision": VISION_WORKLOADS,
}

SUITE_NAMES = tuple(SUITES)


def get_suite(name: str) -> List[Workload]:
    """Instantiate every workload of a suite, in figure order."""
    try:
        factories = SUITES[name]
    except KeyError:
        raise KeyError(f"unknown suite {name!r}; one of {SUITE_NAMES}") from None
    return [f() for f in factories]


def all_workloads() -> List[Workload]:
    """All 19 workloads, suites in paper order (dsp, machsuite, vision)."""
    out: List[Workload] = []
    for name in SUITE_NAMES:
        out.extend(get_suite(name))
    return out


def get_workload(name: str) -> Workload:
    """Instantiate one workload by its Table II name."""
    for suite in SUITES.values():
        for factory in suite:
            w = factory()
            if w.name == name:
                return w
    known = [f().name for s in SUITES.values() for f in s]
    raise KeyError(f"unknown workload {name!r}; known: {known}")


__all__ = [
    "SUITES",
    "SUITE_NAMES",
    "all_workloads",
    "get_suite",
    "get_workload",
    "cholesky",
    "fft",
    "fir",
    "solver",
    "mm",
    "stencil_3d",
    "crs",
    "gemm",
    "stencil_2d",
    "ellpack",
    "channel_extract",
    "bgr2grey",
    "blur",
    "accumulate",
    "accumulate_squared",
    "vecmax",
    "accumulate_weighted",
    "convert_bit",
    "derivative",
]
