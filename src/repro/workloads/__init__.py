"""Evaluation workloads: the 19 of Table II plus post-paper families.

The ``dsp`` / ``machsuite`` / ``vision`` suites reproduce the paper's
Table II exactly (:data:`PAPER_SUITE_NAMES` — the harness pins its
tables and figures to these); the ``fsm`` / ``tdm`` / ``irregular``
suites add the scenario families the related work names —
control-dominated kernels, time-multiplexed DSP-block designs, and
data-dependent trip counts.

Every workload is a factory function returning a fresh :class:`~repro.ir.Workload`;
use :func:`get_workload` / :func:`get_suite` / :func:`all_workloads` for
registry-style access.  Lookup by name goes through a lazily-built index
that raises on duplicate workload names, so a new family cannot silently
shadow an existing kernel.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..ir import Workload
from .dsp import DSP_WORKLOADS, cholesky, fft, fir, mm, solver
from .fsm import FSM_WORKLOADS, debounce, edge_count, threshold_fsm
from .irregular import (
    IRREGULAR_WORKLOADS,
    frontier_gather,
    hash_probe,
    ragged_rows,
)
from .machsuite import (
    MACHSUITE_WORKLOADS,
    crs,
    ellpack,
    gemm,
    stencil_2d,
    stencil_3d,
)
from .tdm import TDM_WORKLOADS, biquad_cascade, horner, mac_bank
from .vision import (
    VISION_WORKLOADS,
    accumulate,
    accumulate_squared,
    accumulate_weighted,
    bgr2grey,
    blur,
    channel_extract,
    convert_bit,
    derivative,
    vecmax,
)

#: Suite name -> ordered factory tuple (order matches the paper's figures,
#: then the post-paper families in introduction order).
SUITES: Dict[str, Tuple[Callable[[], Workload], ...]] = {
    "dsp": DSP_WORKLOADS,
    "machsuite": MACHSUITE_WORKLOADS,
    "vision": VISION_WORKLOADS,
    "fsm": FSM_WORKLOADS,
    "tdm": TDM_WORKLOADS,
    "irregular": IRREGULAR_WORKLOADS,
}

SUITE_NAMES = tuple(SUITES)

#: The three suites of the paper's Table II; the experiment harness pins
#: its paper-vs-measured tables to these so new families never shift the
#: reproduced numbers.
PAPER_SUITE_NAMES = ("dsp", "machsuite", "vision")

#: Lazily-built name -> factory index (see :func:`_index`).
_WORKLOAD_INDEX: Dict[str, Callable[[], Workload]] = {}


def _index() -> Dict[str, Callable[[], Workload]]:
    """Build (once) the name index, guarding against duplicate names.

    A duplicate would make :func:`get_workload` silently return
    whichever factory registered first — with six suites that is a real
    hazard, so registration fails loudly instead.
    """
    if not _WORKLOAD_INDEX:
        for suite_name, factories in SUITES.items():
            for factory in factories:
                workload = factory()
                clash = _WORKLOAD_INDEX.get(workload.name)
                if clash is not None and clash is not factory:
                    _WORKLOAD_INDEX.clear()
                    raise ValueError(
                        f"duplicate workload name {workload.name!r} "
                        f"(suite {suite_name!r} collides with an earlier "
                        f"registration)"
                    )
                _WORKLOAD_INDEX[workload.name] = factory
    return _WORKLOAD_INDEX


def get_suite(name: str) -> List[Workload]:
    """Instantiate every workload of a suite, in figure order."""
    try:
        factories = SUITES[name]
    except KeyError:
        raise KeyError(f"unknown suite {name!r}; one of {SUITE_NAMES}") from None
    return [f() for f in factories]


def all_workloads() -> List[Workload]:
    """All workloads, suites in registry order (paper suites first)."""
    out: List[Workload] = []
    for name in SUITE_NAMES:
        out.extend(get_suite(name))
    return out


def get_workload(name: str) -> Workload:
    """Instantiate one workload by name (Table II or a new family).

    Only the requested factory runs; the name index is built once and
    cached, instead of instantiating every workload per lookup.
    """
    index = _index()
    try:
        factory = index[name]
    except KeyError:
        known = sorted(index)
        raise KeyError(
            f"unknown workload {name!r}; known: {known}"
        ) from None
    return factory()


__all__ = [
    "PAPER_SUITE_NAMES",
    "SUITES",
    "SUITE_NAMES",
    "all_workloads",
    "get_suite",
    "get_workload",
    "cholesky",
    "fft",
    "fir",
    "solver",
    "mm",
    "stencil_3d",
    "crs",
    "gemm",
    "stencil_2d",
    "ellpack",
    "channel_extract",
    "bgr2grey",
    "blur",
    "accumulate",
    "accumulate_squared",
    "vecmax",
    "accumulate_weighted",
    "convert_bit",
    "derivative",
    "threshold_fsm",
    "debounce",
    "edge_count",
    "horner",
    "biquad_cascade",
    "mac_bank",
    "ragged_rows",
    "hash_probe",
    "frontier_gather",
]
