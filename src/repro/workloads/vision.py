"""Vitis Vision workloads (per Table II of the paper).

All nine kernels process 128x128 16-bit frames in batches of 4 (130x130 for
``derivative``, which needs a halo).  Fixed-point weights use multiply +
shift; several kernels are pure data movement or accumulate-only, which is
why their Table II op mixes have zero multiplies.
"""

from __future__ import annotations

from ..ir import I16, I32, Op, Workload, WorkloadBuilder, vmax

FRAME = 128 * 128
BATCH = 4


def channel_extract() -> Workload:
    """Extract one channel from interleaved 4-channel pixels.

    Pure strided data movement: zero compute ops (Table II row: 0,0,0).
    The small-stride access is exactly the pattern Q2 identifies as
    HLS-hostile without strength reduction.
    """
    wb = WorkloadBuilder("channel-ext", suite="vision", dtype=I16, size_desc="128^2x4")
    src = wb.array("src", FRAME * BATCH * 4)
    dst = wb.array("dst", FRAME * BATCH)
    f = wb.loop("f", BATCH)
    p = wb.loop("p", FRAME)
    wb.assign(dst[f * FRAME + p], src[(f * FRAME + p) * 4])
    return wb.build()


def bgr2grey() -> Workload:
    """Weighted RGB-to-grey conversion: 3 multiplies, 2 adds, 1 shift."""
    wb = WorkloadBuilder("bgr2grey", suite="vision", dtype=I16, size_desc="128^2x4")
    src = wb.array("src", FRAME * BATCH * 3)
    dst = wb.array("dst", FRAME * BATCH)
    wgt = wb.array("wgt", 3)
    f = wb.loop("f", BATCH)
    p = wb.loop("p", FRAME)
    base = (f * FRAME + p) * 3
    grey = wgt[0] * src[base] + wgt[1] * src[base + 1] + wgt[2] * src[base + 2]
    wb.assign(dst[f * FRAME + p], grey >> 8)
    return wb.build()


def blur() -> Workload:
    """3x3 box blur: neighbor sum + normalizing shift, no multiplies."""
    wb = WorkloadBuilder("blur", suite="vision", dtype=I16, size_desc="128^2x4")
    n = 128
    inner = n - 2
    src = wb.array("src", n * n * BATCH)
    dst = wb.array("dst", n * n * BATCH)
    f = wb.loop("f", BATCH)
    r = wb.loop("r", inner)
    c = wb.loop("c", inner)
    acc = None
    for k1 in range(3):
        for k2 in range(3):
            term = src[f * n * n + (r + k1) * n + (c + k2)]
            acc = term if acc is None else acc + term
    wb.assign(dst[f * n * n + (r + 1) * n + (c + 1)], acc >> 3)
    return wb.build()


def accumulate() -> Workload:
    """Frame accumulation: ``acc[p] += in[p]`` (adds only)."""
    wb = WorkloadBuilder("accumulate", suite="vision", dtype=I16, size_desc="128^2x4")
    src = wb.array("src", FRAME * BATCH)
    acc = wb.array("acc", FRAME)
    f = wb.loop("f", BATCH, parallel=False)
    p = wb.loop("p", FRAME)
    wb.accumulate(acc[p], src[f * FRAME + p], op=Op.ADD)
    return wb.build()


def accumulate_squared() -> Workload:
    """Squared accumulation: ``acc[p] += in[p]^2`` (one mul, one add)."""
    wb = WorkloadBuilder("acc-sqr", suite="vision", dtype=I16, size_desc="128^2x4")
    src = wb.array("src", FRAME * BATCH)
    acc = wb.array("acc", FRAME)
    f = wb.loop("f", BATCH, parallel=False)
    p = wb.loop("p", FRAME)
    wb.accumulate(acc[p], src[f * FRAME + p] * src[f * FRAME + p], op=Op.ADD)
    return wb.build()


def vecmax() -> Workload:
    """Elementwise max of two frames into a third (max counts as add-class)."""
    wb = WorkloadBuilder("vecmax", suite="vision", dtype=I16, size_desc="128^2x4")
    a = wb.array("a", FRAME * BATCH)
    b = wb.array("b", FRAME * BATCH)
    out = wb.array("out", FRAME * BATCH)
    f = wb.loop("f", BATCH)
    p = wb.loop("p", FRAME)
    wb.assign(out[f * FRAME + p], vmax(a[f * FRAME + p], b[f * FRAME + p]))
    return wb.build()


def accumulate_weighted() -> Workload:
    """Exponential moving average: ``acc = (w*in + (s-w)*acc) >> shift``."""
    wb = WorkloadBuilder("acc-weight", suite="vision", dtype=I16, size_desc="128^2x4")
    src = wb.array("src", FRAME * BATCH)
    acc = wb.array("acc", FRAME)
    wgt = wb.array("wgt", 2)
    f = wb.loop("f", BATCH, parallel=False)
    p = wb.loop("p", FRAME)
    blended = (wgt[0] * src[f * FRAME + p] + wgt[1] * acc[p]) >> 8
    wb.assign(acc[p], blended)
    return wb.build()


def convert_bit() -> Workload:
    """Bit-depth conversion with rounding: one add, one shift per pixel."""
    wb = WorkloadBuilder("convert-bit", suite="vision", dtype=I16, size_desc="128^2x4")
    src = wb.array("src", FRAME * BATCH)
    dst = wb.array("dst", FRAME * BATCH)
    rnd = wb.array("rnd", 1)
    f = wb.loop("f", BATCH)
    p = wb.loop("p", FRAME)
    wb.assign(dst[f * FRAME + p], (src[f * FRAME + p] + rnd[0]) >> 4)
    return wb.build()


def derivative() -> Workload:
    """Horizontal Scharr-style derivative on 130x130 frames (halo included).

    3x1 weighted difference: two multiplies, adds, and a normalizing shift —
    like stencil-2d it benefits from sliding-window reuse (Q1 outlier).
    """
    wb = WorkloadBuilder("derivative", suite="vision", dtype=I16, size_desc="130^2x4")
    n = 130
    inner = n - 2
    src = wb.array("src", n * n * BATCH)
    dst = wb.array("dst", n * n * BATCH)
    wgt = wb.array("wgt", 2)
    f = wb.loop("f", BATCH)
    r = wb.loop("r", inner)
    c = wb.loop("c", inner)
    base = f * n * n + (r + 1) * n + (c + 1)
    diff_h = wgt[0] * (src[base + 1] - src[base - 1])
    diff_d = wgt[1] * (src[base + n + 1] - src[base - n - 1])
    wb.assign(dst[base], (diff_h + diff_d) >> 5)
    return wb.build()


VISION_WORKLOADS = (
    channel_extract,
    bgr2grey,
    blur,
    accumulate,
    accumulate_squared,
    vecmax,
    accumulate_weighted,
    convert_bit,
    derivative,
)
