"""Plain-text rendering of experiment tables and figure series."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, points: Sequence, width: int = 48, title: str = ""
) -> str:
    """Render a numeric series as a labeled ASCII bar strip."""
    values = [float(v) for _, v in points]
    top = max(values) if values else 1.0
    lines = [title] if title else []
    lines.append(name)
    for label, value in points:
        bar = "#" * max(1, int(width * float(value) / top)) if top > 0 else ""
        lines.append(f"  {str(label):>12s} | {bar} {value:.3g}")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3g}"
    return str(cell)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 if empty)."""
    import math

    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
