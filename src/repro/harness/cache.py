"""In-process memoization for expensive experiment artifacts.

Many benchmarks share the same DSE runs (the suite overlays feed Figs. 13,
15, 16, 17, 18 and Table III).  Artifacts are cached in-process keyed by a
stable signature, so one pytest/benchmark session runs each DSE once.

The cache is an ordinary object (:class:`MemoryCache`) rather than module
globals, so the :mod:`repro.engine` orchestrator can layer its persistent
on-disk artifact store around the same instance.  The historical
module-level API (``memoized`` / ``clear_cache`` / ``cache_size``) remains
as thin shims over a process-wide default instance.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple


class MemoryCache:
    """Dictionary-backed artifact cache with hit/miss accounting."""

    def __init__(self) -> None:
        self._data: Dict[Tuple, Any] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def memoized(self, key: Tuple, builder: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``key``, building it on first use."""
        if key in self._data:
            self.hits += 1
            return self._data[key]
        self.misses += 1
        self._data[key] = builder()
        return self._data[key]

    def get(self, key: Tuple, default: Any = None) -> Any:
        if key in self._data:
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return default

    def put(self, key: Tuple, value: Any) -> None:
        self._data[key] = value

    def __contains__(self, key: Tuple) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()

    def size(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._data), "hits": self.hits, "misses": self.misses}


#: Process-wide default instance behind the legacy module-level API.
_DEFAULT = MemoryCache()


def default_cache() -> MemoryCache:
    """The process-wide cache shared by the harness and the engine."""
    return _DEFAULT


def memoized(key: Tuple, builder: Callable[[], Any]) -> Any:
    """Return the cached artifact for ``key``, building it on first use."""
    return _DEFAULT.memoized(key, builder)


def clear_cache() -> None:
    _DEFAULT.clear()


def cache_size() -> int:
    return _DEFAULT.size()
