"""Process-level memoization for expensive experiment artifacts.

Many benchmarks share the same DSE runs (the suite overlays feed Figs. 13,
15, 16, 17, 18 and Table III).  Artifacts are cached in-process keyed by a
stable signature, so one pytest/benchmark session runs each DSE once.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

_CACHE: Dict[Tuple, Any] = {}


def memoized(key: Tuple, builder: Callable[[], Any]) -> Any:
    """Return the cached artifact for ``key``, building it on first use."""
    if key not in _CACHE:
        _CACHE[key] = builder()
    return _CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)
