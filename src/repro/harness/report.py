"""EXPERIMENTS.md generation: paper-vs-measured for every table/figure.

Run ``python -m repro.harness.report [output-path]`` to regenerate the
report (several minutes: it runs every DSE and simulation in the suite).
"""

from __future__ import annotations

import sys
from typing import List

from ..model.resource import MlEstimator, TABLE1_COUNTS
from ..rtl import estimated_frequency, floorplan
from ..workloads import PAPER_SUITE_NAMES
from . import experiments as ex
from .tables import geomean, render_table


def _fig13_section() -> str:
    rows = ex.fig13_overall()
    means = ex.fig13_geomeans(rows)
    paper = {
        "dsp": (1.21, 0.71),
        "machsuite": (1.13, 0.37),
        "vision": (1.25, 0.65),
    }
    lines = ["## Fig. 13 — Overall performance vs AutoDSE", ""]
    lines.append(
        render_table(
            ["suite", "suite-OG vs untuned AD (paper)", "(measured)",
             "suite-OG vs tuned AD (paper)", "(measured)"],
            [
                (
                    s, f"{paper[s][0]:.2f}x",
                    f"{means[s]['suite_og']:.2f}x",
                    f"{paper[s][1]:.2f}x",
                    f"{means[s]['suite_og'] / means[s]['tuned_ad']:.2f}x",
                )
                for s in PAPER_SUITE_NAMES
            ],
        )
    )
    lines.append("")
    lines.append(
        render_table(
            ["workload", "suite", "tuned-AD", "general-OG", "suite-OG",
             "w/l-OG"],
            [
                (r.workload, r.suite, f"{r.tuned_ad:.2f}",
                 f"{r.general_og:.2f}" if r.general_og else "n/a",
                 f"{r.suite_og:.2f}", f"{r.workload_og:.2f}")
                for r in rows
            ],
            title="Per-workload speedup over untuned AutoDSE:",
        )
    )
    return "\n".join(lines)


def _fig14_section() -> str:
    rows = ex.fig14_tuning()
    lines = ["## Fig. 14 — Effect of kernel tuning", ""]
    lines.append(
        "Paper: HLS gains far more from manual tuning than OverGen "
        "(OverGen's ISA handles variable trips / strided access natively). "
        f"Measured tuned-AD geomean gain: "
        f"{geomean([r.ad_tuned for r in rows]):.2f}x."
    )
    lines.append("")
    lines.append(
        render_table(
            ["workload", "AD tuned gain", "w/l-OG vs untuned AD"],
            [(r.workload, f"{r.ad_tuned:.2f}x", f"{r.wl_og:.2f}x") for r in rows],
        )
    )
    lines.append("")
    lines.append(
        "*Substitution*: the paper also hand-tunes 4 OverGen kernels "
        "(fft/gemm/stencil-2d/blur); our compiler applies its "
        "transformations automatically, so only the AutoDSE tuning axis "
        "is swept."
    )
    return "\n".join(lines)


def _fig15_section() -> str:
    summary = ex.fig15_summary()
    paper_totals = {"dsp": 52.6, "machsuite": 69.2, "vision": 92.8}
    lines = ["## Fig. 15 — DSE & synthesis time", ""]
    lines.append(
        render_table(
            ["suite", "AutoDSE total (paper)", "AutoDSE (ours, modeled)",
             "OverGen suite DSE (ours, modeled)"],
            [
                (s, f"{paper_totals[s]:.1f}h",
                 f"{summary[f'{s}_autodse_h']:.1f}h",
                 f"{summary[f'{s}_overgen_h']:.1f}h")
                for s in PAPER_SUITE_NAMES
            ],
        )
    )
    lines.append("")
    lines.append(
        f"OverGen/AutoDSE time fraction: paper 47%, measured "
        f"{summary['fraction']:.0%} (toolchain costs are modeled constants; "
        "see `TimeModel`)."
    )
    return "\n".join(lines)


def _fig16_section() -> str:
    overlays = ex.fig16_overlays()
    ad = ex.fig16_autodse()
    lines = ["## Fig. 16 — FPGA resource breakdown", ""]
    lut_values = [r.lut for r in overlays]
    lines.append(
        f"Overlay LUT occupation: paper 81-97%; measured "
        f"{min(lut_values):.0%}-{max(lut_values):.0%} "
        "(LUTs are the limiting resource in every design). AutoDSE designs "
        f"use {min(r.lut for r in ad):.0%}-{max(r.lut for r in ad):.0%}."
    )
    return "\n".join(lines)


def _fig17_section() -> str:
    rows = ex.fig17_leave_one_out()
    mapped = [r for r in rows if r.mapped]
    lines = ["## Fig. 17 — Leave-one-out flexibility (MachSuite)", ""]
    lines.append(
        render_table(
            ["left-out", "maps?", "rel perf", "compile speedup",
             "reconfig speedup"],
            [
                (r.workload, "yes" if r.mapped else "NO",
                 f"{r.relative_performance:.0%}" if r.mapped else "-",
                 f"{r.compile_speedup:,.0f}x" if r.mapped else "-",
                 f"{r.reconfig_speedup:,.0f}x" if r.mapped else "-")
                for r in rows
            ],
        )
    )
    lines.append("")
    lines.append(
        f"Paper: all map, mean ~50% degradation, 10^4x compile, 5.4x10^4x "
        f"reconfig. Measured: {len(mapped)}/5 map (our lane-SIMD "
        "vectorization keeps fewer, wider PEs, so the 17-instruction "
        "stencil-2d graph cannot fit an overlay that never saw it)."
    )
    return "\n".join(lines)


def _fig18_section() -> str:
    rows = ex.fig18_incremental()
    lines = ["## Fig. 18 — Incremental design optimization", ""]
    lines.append(
        render_table(
            ["added", "tiles", "LUT/tile", "datapath LUT/tile"],
            [
                (r.added, r.tiles, f"{r.lut_per_tile_fraction:.1%}",
                 f"{r.datapath_fraction:.1%}")
                for r in rows
            ],
        )
    )
    lines.append("")
    lines.append(
        "Paper: tiles fall 15 -> 10 while the per-tile datapath grows; "
        f"measured: {rows[0].tiles} -> {rows[-1].tiles} with per-tile LUT "
        f"{rows[0].lut_per_tile_fraction:.1%} -> "
        f"{rows[-1].lut_per_tile_fraction:.1%}."
    )
    return "\n".join(lines)


def _fig19_section() -> str:
    rows = ex.fig19_dram_channels()
    og4 = geomean([r.og_speedup[4] for r in rows])
    ad4 = geomean([r.ad_speedup[4] for r in rows])
    lines = ["## Fig. 19 — DRAM channel scaling", ""]
    lines.append(
        f"Geomean 4-channel speedup across all 19 kernels: OverGen "
        f"{og4:.2f}x, AutoDSE {ad4:.2f}x (paper: benefits concentrate in "
        "memory-intensive kernels, mean ~19-25% on the benefiting sets)."
    )
    gainers = [r.workload for r in rows if r.og_speedup[4] > 1.1]
    lines.append(f"OverGen kernels gaining >10%: {', '.join(gainers)}.")
    return "\n".join(lines)


def _fig20_section() -> str:
    results = [ex.fig20_schedule_preserving(s) for s in PAPER_SUITE_NAMES]
    lines = ["## Fig. 20 — Schedule-preserving transformations", ""]
    lines.append(
        render_table(
            ["suite", "est IPC ratio (preserved/non)", "DSE-time delta"],
            [
                (r.suite, f"{r.ipc_improvement:.2f}x",
                 f"{r.time_reduction:+.0%}")
                for r in results
            ],
        )
    )
    mean_ratio = geomean([r.ipc_improvement for r in results])
    lines.append("")
    lines.append(
        f"Paper: 1.09x estimated IPC, ~15% DSE-time reduction; measured "
        f"geomean IPC ratio {mean_ratio:.2f}x."
    )
    bench = _bench_dse_doc()
    if bench is not None:
        lines.append("")
        lines.append(
            f"Measured wall-clock (`repro bench --budget {bench['budget']}`"
            f", seed {bench['seed']}): preserved-hit rate "
            f"{bench['preserved_hit_rate']:.0%} over "
            f"{bench['preserved_hits'] + bench['repairs']} inner-loop "
            f"schedules; the schedule-preserving fast path averaged "
            f"{bench['fast_path_mean_s'] * 1e3:.3f} ms vs "
            f"{bench['repair_path_mean_s'] * 1e3:.3f} ms for repair "
            f"({bench['fast_path_speedup']:.1f}x faster), "
            f"{bench['candidates_per_second']:.0f} candidates/s overall."
        )
    sim = _bench_sim_doc()
    if sim is not None:
        lines.append("")
        line = (
            f"Simulator throughput (`repro bench sim --budget "
            f"{sim['budget']}`, seed {sim['seed']}, "
            f"{sim.get('core', 'object')} core): "
            f"{sim['stepped_cycles']:,} stepped cycles over "
            f"{len(sim.get('workloads', []))} regions at "
            f"{sim['cycles_per_second']:,.0f} cycles/s"
        )
        batch = sim.get("batch")
        if batch:
            line += (
                f"; one `simulate_batch` pass covers the same regions at "
                f"{sim['batch_cycles_per_second']:,.0f} cycles/s with "
                f"results byte-identical to the serial loop"
            )
        lines.append(line + ".")
    return "\n".join(lines)


def _pareto_section(trials: int = 24, seed: int = 3) -> str:
    """Multi-objective search study: the Fig. 14-16 axes, jointly.

    Figs. 14-16 tell the paper's resource story one axis at a time —
    performance (Fig. 14), DSE time (Fig. 15), and FPGA occupation
    (Fig. 16).  The study service reports the joint trade-off: every
    evaluated overlay is an (objective, LUT) point, and the frontier
    below is the set of designs no other evaluated overlay beats on
    both axes at once.
    """
    from ..dse import DseConfig
    from ..search import Axis, SearchSettings, frontier_doc, run_search
    from ..workloads import get_workload

    names = ["fir", "vecmax", "bgr2grey"]
    outcome = run_search(
        [get_workload(n) for n in names],
        DseConfig(iterations=trials, seed=seed),
        SearchSettings(strategy="tpe", trials=trials, batch=4, seed=seed),
        name="pareto-report",
    )
    study = outcome.study
    axes = (Axis("objective", "max"), Axis("lut", "min"))
    doc = frontier_doc(study, axes=axes)
    lines = ["## Pareto study — performance vs LUT (Figs. 14-16 jointly)", ""]
    lines.append(
        f"`repro dse {','.join(names)} --strategy tpe --trials {trials} "
        f"--batch 4 -s {seed} --pareto`: one TPE study over a "
        f"three-kernel mix, {len(study.trials)} trials "
        f"({len(study.feasible_trials())} feasible), axes "
        f"{' / '.join(doc['axes'])}, hypervolume "
        f"{doc['hypervolume']:,.0f}."
    )
    lines.append("")
    lines.append(
        render_table(
            ["frontier trial", "objective", "LUT"],
            [
                (p["trial"], f"{p['objective']:.2f}", f"{p['lut']:,.0f}")
                for p in doc["points"]
            ],
        )
    )
    lines.append("")
    lines.append(
        "Figs. 14-16 show performance, DSE time, and resource occupation "
        "as separate per-suite bars; the frontier collapses them into one "
        "answer per LUT budget (\"the best overlay that fits\").  The "
        "study is persistent and content-addressed: rerunning the same "
        "command resumes from the engine store, and the exported frontier "
        "JSON is byte-identical for any `--workers` value."
    )
    return "\n".join(lines)


def _bench_dse_doc():
    """BENCH_dse.json from a `repro bench` run at the repo root, if any."""
    import json
    import os

    path = os.path.join(os.getcwd(), "BENCH_dse.json")
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        return None
    if doc.get("kind") != "dse" or doc.get("schema") != 1:
        return None
    return doc


def _bench_sim_doc():
    """BENCH_sim.json from a `repro bench` run at the repo root, if any."""
    import json
    import os

    path = os.path.join(os.getcwd(), "BENCH_sim.json")
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        return None
    if doc.get("kind") != "sim" or doc.get("schema") != 1:
        return None
    return doc


def _fig11_12_section() -> str:
    from ..sim import EngineSim, PortFifo, StreamState

    def rate(onehot: bool) -> float:
        port = PortFifo("p", capacity=1e9)
        engine = EngineSim("e", 8, onehot_bypass=onehot)
        engine.add_stream(
            StreamState("s", 1e9, 1.0, port, True, 8)
        )
        return sum(engine.step(t) for t in range(200)) / 200

    plan = floorplan(ex.general_sysadg())
    freq = estimated_frequency(plan)
    lines = ["## Fig. 11 — Stream-table one-hot bypass", ""]
    lines.append(
        f"Single-stream issue rate: {rate(False):.2f}/cycle without the "
        f"bypass, {rate(True):.2f}/cycle with it (paper: 0.5 -> 1.0)."
    )
    lines.append("")
    lines.append("## Fig. 12 — Quad-tile floorplan")
    lines.append("")
    lines.append("```")
    lines.append(plan.ascii_art())
    lines.append("```")
    lines.append(
        f"Estimated clock {freq:.1f} MHz (paper: 92.87 MHz, critical path "
        "in L2 MSHR logic)."
    )
    return "\n".join(lines)


def _tables_section() -> str:
    lines = ["## Table I — ML resource-model dataset", ""]
    est = MlEstimator(dataset_scale=0.05)
    lines.append(
        render_table(
            ["family", "paper #synth", "LUT err", "FF err"],
            [
                (fam, TABLE1_COUNTS[fam],
                 f"{est.training_error[fam]['lut']:.1%}",
                 f"{est.training_error[fam]['ff']:.1%}")
                for fam in TABLE1_COUNTS
            ],
        )
    )
    lines.append("")
    lines.append("## Table II — Workload specifications")
    lines.append("")
    rows = ex.table2_workload_specs()
    lines.append(
        render_table(
            ["workload", "size", "type", "#ivp", "#ovp", "#arr", "#m,a,d"],
            [
                (r["workload"], r["size"], r["type"], r["ivp"], r["ovp"],
                 r["arr"], f"{r['mul']},{r['add']},{r['div']}")
                for r in rows
            ],
        )
    )
    lines.append("")
    lines.append("## Table III — Suite overlay specifications")
    lines.append("")
    t3 = ex.table3_suite_overlays()
    lines.append(
        render_table(
            ["overlay", "tiles", "L2 banks", "NoC B", "PEs", "SWs",
             "int +/x/div", "flt +/x/div/sqrt", "spad KiB", "in B", "out B"],
            [
                (r["overlay"], r["tiles"], r["l2_banks"], r["noc_bytes"],
                 r["pes"], r["switches"], r["int_fus"], r["flt_fus"],
                 r["spad_kib"], r["in_port_bytes"], r["out_port_bytes"])
                for r in t3
            ],
        )
    )
    lines.append("")
    lines.append("## Table IV — HLS initiation intervals")
    lines.append("")
    t4 = ex.table4_hls_ii()
    lines.append(
        render_table(
            ["workload", "cause", "untuned II", "tuned II"],
            [
                (r["workload"], r["cause"], r["untuned_ii"], r["tuned_ii"])
                for r in t4
            ],
        )
    )
    lines.append("")
    lines.append("(Table IV values are the paper's measured IIs, encoded as "
                 "model inputs — reproduced exactly by construction.)")
    return "\n".join(lines)


def _engine_section() -> str:
    """DSE-engine accounting for the run that produced this report."""
    engine = ex.peek_engine()
    lines = ["## DSE engine — cache & run metrics", ""]
    if engine is None:
        lines.append(
            "No engine runs this session (every overlay answered from the "
            "in-process cache before the engine was built)."
        )
        return "\n".join(lines)
    s = engine.stats
    lines.append(
        render_table(
            ["jobs", "cache hits", "misses", "iterations run", "seeds run",
             "crashes", "resumes", "wall", "modeled"],
            [(
                s.jobs, s.cache_hits, s.cache_misses, s.iterations_run,
                s.seeds_run, s.worker_crashes, s.resumes,
                f"{s.wall_seconds:.1f}s", f"{s.modeled_seconds / 3600:.1f}h",
            )],
        )
    )
    runs = engine.metrics.of_type("run_end")
    if runs:
        lines.append("")
        lines.append(
            render_table(
                ["job", "seeds", "iters", "it/s", "accept", "best seed",
                 "objective"],
                [
                    (r["name"], len(r["seeds"]), r["iterations"],
                     f"{r['iterations_per_second']:.0f}",
                     f"{r['acceptance_rate']:.0%}", r["best_seed"],
                     f"{r['objective']:.2f}")
                    for r in runs
                ],
                title="Per-job annealing runs (cache misses only):",
            )
        )
    lines.append("")
    where = engine.cache_dir or "in-memory only"
    lines.append(
        f"Artifact store: {where}.  A warm-cache rerun of this report "
        "answers every overlay from the store with zero DSE iterations "
        "(`python -m repro dse` shares the same store and keys)."
    )
    return "\n".join(lines)


HEADER = """# EXPERIMENTS — paper vs measured

Generated by `python -m repro.harness.report`.  Every number below is
recomputed from scratch by this repository (DSE runs, cycle-level
simulation, analytical baselines); nothing is hard-coded except the paper's
reference values and the HLS initiation intervals of Table IV (measured
toolchain behavior that our baseline *model* takes as input).

Absolute times are modeled (our substrate is a simulator, not a VCU118);
the comparisons preserve the paper's *shapes*: who wins, by roughly what
factor, and where the crossovers fall.
"""


def _model_fidelity_section(budget: int = 60, seed: int = 0) -> str:
    """Differential model-vs-simulator fidelity from one seeded fuzz run.

    The fuzzer draws random affine programs on randomly mutated ADGs and
    compares :func:`repro.model.perf.estimate_cycles` against the
    cycle-level simulator; the table reports agreement per bottleneck
    class (Section VI of the paper validates the bottleneck model the
    same way, workload by workload).
    """
    from ..validate import fuzz_run

    stats = fuzz_run(budget=budget, seed=seed)
    lines = ["## Model fidelity — differential fuzzing", ""]
    lines.append(
        f"`repro fuzz --budget {budget} --seed {seed}`: "
        + ", ".join(f"{v} {k}" for k, v in sorted(stats.outcomes.items()))
        + f"; {stats.invariant_violations} invariant violations."
    )
    lines.append("")
    lines.append(
        render_table(
            ["bottleneck class", "cases", "pass rate", "max rel err",
             "mean rel err"],
            [
                (name, s.cases, f"{s.pass_rate:.0%}",
                 f"{s.max_rel_error:.3f}", f"{s.mean_rel_error:.3f}")
                for name, s in sorted(stats.by_class.items())
            ],
            title="Model-vs-simulator agreement by bottleneck class:",
        )
    )
    lines.append("")
    lines.append(
        "Compute-bound mappings are where the bottleneck model is exact "
        "by construction; memory-bound mappings cross bandwidth "
        "contention the model only approximates, so they carry a wider "
        "tolerance band. Divergences outside the band shrink to minimal "
        "repros in the corpus (`repro validate --corpus DIR` replays "
        "them)."
    )
    return "\n".join(lines)


def _soak_section(budget: int = 48, seed: int = 3, shards: int = 4) -> str:
    """A small fixed-seed soak campaign with zero-tolerance bands.

    Zero tolerance flags every model/sim disagreement, so the campaign
    deliberately "finds" the model's known approximations; the point
    here is the campaign machinery — sharded execution, cross-shard
    dedup to one minimal repro per failure signature, and a triage
    report whose bytes do not depend on the shard split.
    """
    from ..validate import ToleranceBands
    from ..validate.soak import CampaignConfig, soak_run

    config = CampaignConfig(
        budget=budget,
        seed=seed,
        shards=shards,
        bands=ToleranceBands(
            compute=0.0, memory=0.0, aux=0.0, abs_floor=0.0
        ),
        shrink_budget=40,
    )
    report = soak_run(config, jobs=1)
    lines = ["## Soak campaign — sharded differential fuzzing", ""]
    lines.append(
        f"`repro soak --budget {budget} --seed {seed} --shards {shards} "
        f"--rel-tol 0 --abs-floor 0`: every model/sim gap is flagged, so "
        f"the campaign reduces {report.raw_failures} raw failures to "
        f"{len(report.failures)} unique minimal repros (one per failure "
        f"signature).  The triage report below is byte-identical for any "
        f"`--shards` value, and `--promote` freezes each repro as a "
        f"pytest-collected regression case (see `tests/regression/`)."
    )
    lines.append("")
    lines.append("```")
    lines.append(report.render())
    lines.append("```")
    return "\n".join(lines)


def _serve_section(requests: int = 128, concurrency: int = 32) -> str:
    """Overlay-compilation service under a duplicate-heavy load.

    Serves the dsp suite overlay (already built for Table III) through
    the real ``repro serve`` stack — unix socket, process worker pool,
    admission control, single-flight coalescing — and drives it with
    the bundled load generator twice: a cold pass that must compile
    every unique (op, workload) key, and a warm pass answered from the
    in-memory result cache and in-flight coalescing.
    """
    import asyncio
    import tempfile

    from ..engine import MetricsLogger
    from ..serve import OverlayServer, ServeClient, ServeConfig, run_load
    from ..workloads import get_suite

    suite = "dsp"
    sysadg = ex.suite_overlay(suite).sysadg
    workloads = tuple(w.name for w in get_suite(suite))[:3]
    ops = ("map", "estimate", "simulate")

    async def drive():
        with tempfile.TemporaryDirectory() as tmp:
            server = OverlayServer(
                ServeConfig(
                    socket_path=f"{tmp}/serve.sock",
                    workers=2,
                    queue_limit=4 * concurrency,
                ),
                metrics=MetricsLogger(),
            )
            server.add_overlay(sysadg, name=suite)
            await server.start()
            try:
                factory = lambda: ServeClient(
                    socket_path=server.config.socket_path
                )
                passes = []
                for _ in ("cold", "warm"):
                    passes.append(
                        await run_load(
                            factory,
                            ops=ops,
                            workloads=list(workloads),
                            requests=requests,
                            concurrency=concurrency,
                            overlay=suite,
                            timeout_s=120.0,
                        )
                    )
                return passes
            finally:
                await server.shutdown()

    cold, warm = asyncio.run(drive())

    def counters(report):
        return report.server_stats["counters"]

    def row(label, report, base):
        lat = report.latency.as_dict()
        c = counters(report)
        return (
            label, report.requests, report.errors,
            f"{report.throughput:.0f} req/s",
            f"{lat['p50_s'] * 1e3:.1f} ms",
            f"{lat['p95_s'] * 1e3:.1f} ms",
            f"{lat['p99_s'] * 1e3:.1f} ms",
            c["computes"] - base.get("computes", 0),
            c["coalesced"] - base.get("coalesced", 0),
            c["cache_memory"] - base.get("cache_memory", 0),
        )

    lines = ["## Overlay-compilation service — load test", ""]
    lines.append(
        f"`repro serve` + `repro submit load`: {requests} mixed requests "
        f"per pass over {concurrency} concurrent connections "
        f"(ops {'/'.join(ops)} × workloads {'/'.join(workloads)}) against "
        f"the {suite} suite overlay, served by a 2-process worker pool."
    )
    lines.append("")
    lines.append(
        render_table(
            ["pass", "requests", "errors", "throughput", "p50", "p95",
             "p99", "compiles", "coalesced", "memory hits"],
            [row("cold", cold, {}), row("warm", warm, counters(cold))],
        )
    )
    lines.append("")
    unique = len(ops) * len(workloads)
    lines.append(
        f"The request mix has only {unique} unique (op, workload) keys, so "
        "single-flight coalescing plus the in-memory result cache collapse "
        "every duplicate: the cold pass compiles each key once and the "
        "warm pass compiles nothing.  Every response is byte-identical to "
        "the single-shot `repro map --json` / `repro simulate --json` "
        "path (the load generator cross-checks and the run above reported "
        f"{len(cold.mismatches) + len(warm.mismatches)} mismatches)."
    )
    return "\n".join(lines)


def _families_section() -> str:
    rows = ex.families_end_to_end()
    lines = [
        "## Scenario families — fsm / tdm / irregular",
        "",
        "Beyond Table II, three workload families exercise overlay shapes "
        "the paper's suites do not: control-dominated predicated kernels "
        "(`fsm`), time-multiplexed DSP chains (`tdm`), and data-dependent "
        "trip counts with gathers (`irregular`).  Each workload runs the "
        "full pipeline on the General overlay (schedule -> simulate); each "
        "family's seed overlay is emitted through both RTL backends and "
        "floorplanned on the XCVU9P.",
        "",
    ]
    lines.append(
        render_table(
            ["workload", "family", "schedules", "IPC (general)",
             "verilog lines", "migen lines", "floorplan", "est. MHz"],
            [
                (
                    r["workload"], r["family"],
                    "yes" if r["schedules"] else "NO",
                    f"{r['ipc']:.1f}",
                    r["verilog_lines"], r["migen_lines"],
                    "feasible" if r["feasible"] else "INFEASIBLE",
                    f"{r['mhz']:.1f}",
                )
                for r in rows
            ],
        )
    )
    scheduled = sum(1 for r in rows if r["schedules"])
    lines.append("")
    lines.append(
        f"{scheduled}/{len(rows)} family workloads schedule and simulate "
        "on the General overlay; both backends emit every family seed "
        "overlay and all floorplans fit the device."
    )
    return "\n".join(lines)


def generate_report() -> str:
    sections = [
        HEADER,
        _tables_section(),
        _fig11_12_section(),
        _fig13_section(),
        _fig14_section(),
        _fig15_section(),
        _fig16_section(),
        _fig17_section(),
        _fig18_section(),
        _fig19_section(),
        _fig20_section(),
        _families_section(),
        _pareto_section(),
        _model_fidelity_section(),
        _soak_section(),
        _engine_section(),
        _serve_section(),
    ]
    return "\n\n".join(sections) + "\n"


def main(argv: List[str]) -> None:
    path = argv[1] if len(argv) > 1 else "EXPERIMENTS.md"
    report = generate_report()
    with open(path, "w") as f:
        f.write(report)
    print(f"wrote {path} ({report.count(chr(10))} lines)")


if __name__ == "__main__":
    main(sys.argv)
