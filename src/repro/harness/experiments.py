"""Experiment drivers regenerating every table and figure of the paper.

Each ``figXX_*`` / ``tableX_*`` function returns plain data (lists of rows)
plus helpers to render them; the benchmark suite under ``benchmarks/``
wraps these, and ``repro.harness.report`` assembles EXPERIMENTS.md.

DSE runs go through the :mod:`repro.engine` orchestrator, which layers a
persistent on-disk artifact store (``REPRO_CACHE_DIR``) over the in-process
:mod:`repro.harness.cache`, so suite overlays are reused across pytest/CLI
sessions and recomputed only when workloads, config, or seeds change.
Cheaper artifacts (simulations, variant sets) stay memoized in process.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..adg import SysADG, general_overlay
from ..compiler import generate_variants
from ..dse import DseConfig, DseResult
from ..hls import (
    AutoDseResult,
    KERNEL_INFO,
    kernel_info,
    run_autodse,
)
from ..ir import Workload
from ..model.resource import (
    CATEGORIES,
    AnalyticEstimator,
    XCVU9P,
    system_breakdown,
    system_resources,
)
from ..scheduler import Schedule, schedule_workload
from ..sim import SimResult, simulate_schedule
from ..workloads import PAPER_SUITE_NAMES, get_suite, get_workload
from .cache import default_cache, memoized
from .tables import geomean


def paper_workloads():
    """The 19 workloads of Table II (paper suites only).

    The experiment harness reproduces the paper's tables and figures, so
    it iterates these rather than :func:`repro.workloads.all_workloads`
    — new scenario families never shift the reproduced numbers.
    """
    out = []
    for suite in PAPER_SUITE_NAMES:
        out.extend(get_suite(suite))
    return out


#: Default DSE effort (keeps a full experiment sweep under a few minutes).
SUITE_DSE_ITERATIONS = 150
WORKLOAD_DSE_ITERATIONS = 80
DSE_SEED = 2

#: Compiling a new application *to an existing overlay* (Fig. 17): LLVM
#: compile plus spatial scheduling, modeled in seconds.
OVERLAY_COMPILE_BASE_S = 2.0
OVERLAY_COMPILE_PER_VARIANT_S = 0.5

#: Full-FPGA bitstream reflash time (paper: over a second on the VCU118).
FPGA_REFLASH_S = 1.3


# ----------------------------------------------------------------------
# Shared cached artifacts
# ----------------------------------------------------------------------
#: Annealing restarts: the DSE is stochastic, so (like any annealer) it
#: runs from a few seeds and keeps the best objective.
DSE_RESTART_SEEDS = (DSE_SEED, DSE_SEED + 1)

_ENGINE = None


def get_engine():
    """The shared DSE engine behind every overlay driver.

    Configured from the environment: ``REPRO_CACHE_DIR`` points the
    persistent artifact store somewhere else (set it empty to disable
    persistence entirely), ``REPRO_DSE_JOBS`` sets the worker-pool width.
    The engine shares :func:`repro.harness.cache.default_cache`, so
    ``clear_cache()`` still empties the in-process tier.
    """
    global _ENGINE
    if _ENGINE is None:
        from ..engine import DseEngine

        cache_dir = os.environ.get(
            "REPRO_CACHE_DIR",
            os.path.join(os.path.expanduser("~"), ".cache", "repro-overgen"),
        )
        _ENGINE = DseEngine(
            cache_dir=cache_dir or None,
            jobs=int(os.environ.get("REPRO_DSE_JOBS", "1")),
            memory_cache=default_cache(),
        )
    return _ENGINE


def peek_engine():
    """The shared engine if one was built, without building one."""
    return _ENGINE


def set_engine(engine):
    """Swap the shared engine (tests); returns the previous one."""
    global _ENGINE
    previous = _ENGINE
    _ENGINE = engine
    return previous


def _best_of_seeds(workloads, iterations: int, name: str) -> DseResult:
    return get_engine().explore(
        workloads,
        DseConfig(iterations=iterations, seed=DSE_SEED),
        name=name,
        seeds=DSE_RESTART_SEEDS,
    ).result


def _engine_explore(workloads, name: str, **config_kwargs) -> DseResult:
    config = DseConfig(iterations=SUITE_DSE_ITERATIONS, seed=DSE_SEED)
    if config_kwargs:
        from dataclasses import replace as _replace

        config = _replace(config, **config_kwargs)
    return get_engine().explore(workloads, config, name=name).result


def suite_overlay(suite: str, iterations: int = SUITE_DSE_ITERATIONS) -> DseResult:
    """The suite-specialized overlay (Table III column)."""
    return _best_of_seeds(get_suite(suite), iterations, f"{suite}-OG")


def workload_overlay(
    name: str, iterations: int = WORKLOAD_DSE_ITERATIONS
) -> DseResult:
    """A single-workload-specialized overlay."""
    return _best_of_seeds([get_workload(name)], iterations, f"{name}-OG")


def autodse(name: str, tuned: bool, dram_channels: int = 1) -> AutoDseResult:
    return memoized(
        ("autodse", name, tuned, dram_channels),
        lambda: run_autodse(
            get_workload(name), tuned=tuned, dram_channels=dram_channels
        ),
    )


def general_sysadg() -> SysADG:
    return memoized(("general-og",), general_overlay)


def _simulate(key_prefix: str, schedule: Schedule, sysadg: SysADG) -> SimResult:
    return memoized(
        (
            "sim",
            key_prefix,
            schedule.mdfg.workload,
            schedule.mdfg.variant,
            sysadg.params,
        ),
        lambda: simulate_schedule(schedule, sysadg),
    )


def og_seconds_suite(suite: str, name: str) -> float:
    res = suite_overlay(suite)
    sim = _simulate(f"suite:{suite}", res.schedules[name], res.sysadg)
    return sim.seconds(res.sysadg.params.frequency_mhz)


def og_seconds_workload(name: str) -> float:
    res = workload_overlay(name)
    sim = _simulate(f"wl:{name}", res.schedules[name], res.sysadg)
    return sim.seconds(res.sysadg.params.frequency_mhz)


def og_seconds_general(name: str) -> Optional[float]:
    """Seconds on the hand-designed General overlay (None if unmappable)."""

    def build():
        sysadg = general_sysadg()
        variants = memoized(
            ("variants", name), lambda: generate_variants(get_workload(name))
        )
        schedule = schedule_workload(variants, sysadg.adg, sysadg.params)
        if schedule is None:
            return None
        sim = simulate_schedule(schedule, sysadg)
        return sim.seconds(sysadg.params.frequency_mhz)

    return memoized(("general-sec", name), build)


# ----------------------------------------------------------------------
# Figure 13: overall performance
# ----------------------------------------------------------------------
@dataclass
class Fig13Row:
    workload: str
    suite: str
    tuned_ad: float      # speedup of tuned AutoDSE over untuned AutoDSE
    general_og: float    # speedup of General overlay over untuned AutoDSE
    suite_og: float
    workload_og: float


def fig13_overall() -> List[Fig13Row]:
    rows = []
    for suite in PAPER_SUITE_NAMES:
        for w in get_suite(suite):
            base = autodse(w.name, tuned=False).design.seconds
            tuned = autodse(w.name, tuned=True).design.seconds
            general = og_seconds_general(w.name)
            rows.append(
                Fig13Row(
                    workload=w.name,
                    suite=suite,
                    tuned_ad=base / tuned,
                    general_og=base / general if general else 0.0,
                    suite_og=base / og_seconds_suite(suite, w.name),
                    workload_og=base / og_seconds_workload(w.name),
                )
            )
    return rows


def fig13_geomeans(rows: Optional[List[Fig13Row]] = None) -> Dict[str, Dict[str, float]]:
    rows = rows if rows is not None else fig13_overall()
    out: Dict[str, Dict[str, float]] = {}
    for suite in PAPER_SUITE_NAMES:
        sub = [r for r in rows if r.suite == suite]
        out[suite] = {
            "tuned_ad": geomean([r.tuned_ad for r in sub]),
            "general_og": geomean([r.general_og for r in sub]),
            "suite_og": geomean([r.suite_og for r in sub]),
            "workload_og": geomean([r.workload_og for r in sub]),
        }
    return out


# ----------------------------------------------------------------------
# Figure 14: effect of kernel tuning
# ----------------------------------------------------------------------
@dataclass
class Fig14Row:
    workload: str
    ad_untuned: float    # speedup over vanilla (untuned) AutoDSE = 1.0
    ad_tuned: float
    wl_og: float


#: The nine workloads studied in Fig. 14 (those that benefit from tuning).
FIG14_WORKLOADS = (
    "cholesky",
    "fft",
    "stencil-3d",
    "crs",
    "gemm",
    "stencil-2d",
    "channel-ext",
    "bgr2grey",
    "blur",
)


def fig14_tuning() -> List[Fig14Row]:
    rows = []
    for name in FIG14_WORKLOADS:
        base = autodse(name, tuned=False).design.seconds
        rows.append(
            Fig14Row(
                workload=name,
                ad_untuned=1.0,
                ad_tuned=base / autodse(name, tuned=True).design.seconds,
                wl_og=base / og_seconds_workload(name),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 15: DSE & synthesis time
# ----------------------------------------------------------------------
@dataclass
class Fig15Row:
    label: str
    suite: str
    dse_hours: float
    synth_hours: float

    @property
    def total_hours(self) -> float:
        return self.dse_hours + self.synth_hours


def fig15_dse_time() -> List[Fig15Row]:
    rows = []
    for suite in PAPER_SUITE_NAMES:
        for w in get_suite(suite):
            ad = autodse(w.name, tuned=False)
            rows.append(
                Fig15Row(w.name, suite, ad.dse_hours, ad.synth_hours)
            )
        res = suite_overlay(suite)
        synth = DseConfig().time_model.synthesis_hours
        rows.append(
            Fig15Row("suite", suite, res.modeled_hours - synth, synth)
        )
    return rows


def fig15_summary(rows: Optional[List[Fig15Row]] = None) -> Dict[str, float]:
    """OverGen suite-DSE time as a fraction of AutoDSE's combined time."""
    rows = rows if rows is not None else fig15_dse_time()
    out = {}
    total_ad = total_og = 0.0
    for suite in PAPER_SUITE_NAMES:
        ad = sum(r.total_hours for r in rows if r.suite == suite and r.label != "suite")
        og = sum(r.total_hours for r in rows if r.suite == suite and r.label == "suite")
        out[f"{suite}_autodse_h"] = ad
        out[f"{suite}_overgen_h"] = og
        total_ad += ad
        total_og += og
    out["fraction"] = total_og / total_ad
    return out


# ----------------------------------------------------------------------
# Figure 16: FPGA resource breakdown
# ----------------------------------------------------------------------
@dataclass
class Fig16Row:
    label: str
    kind: str  # "overlay" or "autodse"
    lut: float
    ff: float
    bram: float
    dsp: float
    by_category: Dict[str, float]  # category -> LUT fraction of device


def _overlay_resource_row(label: str, res: DseResult) -> Fig16Row:
    breakdown = AnalyticEstimator().system_breakdown(res.sysadg)
    total = system_resources(res.sysadg)
    util = total.utilization(XCVU9P)
    return Fig16Row(
        label=label,
        kind="overlay",
        lut=util["lut"],
        ff=util["ff"],
        bram=util["bram"],
        dsp=util["dsp"],
        by_category={
            cat: breakdown[cat].lut / XCVU9P.lut for cat in CATEGORIES
        },
    )


def fig16_overlays() -> List[Fig16Row]:
    rows = []
    for suite in PAPER_SUITE_NAMES:
        for w in get_suite(suite):
            rows.append(
                _overlay_resource_row(w.name, workload_overlay(w.name))
            )
        rows.append(_overlay_resource_row(f"{suite}-suite", suite_overlay(suite)))
    return rows


def fig16_autodse() -> List[Fig16Row]:
    rows = []
    for w in paper_workloads():
        design = autodse(w.name, tuned=True).design
        util = design.resources.utilization(XCVU9P)
        rows.append(
            Fig16Row(
                label=w.name,
                kind="autodse",
                lut=util["lut"],
                ff=util["ff"],
                bram=util["bram"],
                dsp=util["dsp"],
                by_category={},
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 17: leave-one-out flexibility
# ----------------------------------------------------------------------
@dataclass
class Fig17Row:
    workload: str
    mapped: bool
    relative_performance: float     # vs the full suite overlay
    compile_speedup: float          # overlay compile vs HLS flow
    reconfig_speedup: float         # overlay reconfig vs FPGA reflash


def leave_one_out_overlay(suite: str, excluded: str) -> DseResult:
    workloads = [w for w in get_suite(suite) if w.name != excluded]
    return _best_of_seeds(
        workloads, SUITE_DSE_ITERATIONS, f"{suite}-minus-{excluded}"
    )


def fig17_leave_one_out(suite: str = "machsuite") -> List[Fig17Row]:
    rows = []
    for w in get_suite(suite):
        loo = leave_one_out_overlay(suite, w.name)
        variants = memoized(
            ("variants", w.name), lambda: generate_variants(get_workload(w.name))
        )
        schedule = schedule_workload(variants, loo.sysadg.adg, loo.sysadg.params)
        full_seconds = og_seconds_suite(suite, w.name)
        if schedule is None:
            rows.append(Fig17Row(w.name, False, 0.0, 0.0, 0.0))
            continue
        sim = simulate_schedule(schedule, loo.sysadg)
        seconds = sim.seconds(loo.sysadg.params.frequency_mhz)
        # Compile/reconfig comparisons (new app on an existing overlay).
        compile_s = (
            OVERLAY_COMPILE_BASE_S
            + OVERLAY_COMPILE_PER_VARIANT_S * len(variants.variants)
        )
        hls_s = autodse(w.name, tuned=False).total_hours * 3600.0
        # Reconfiguration: the bitstream reloads through the D-cache (one
        # 64-bit word per ~4 cycles) plus stream-dispatcher drain/restart.
        reconfig_cycles = 1000 + 4 * schedule.mdfg.config_words
        reconfig_s = reconfig_cycles / (loo.sysadg.params.frequency_mhz * 1e6)
        rows.append(
            Fig17Row(
                workload=w.name,
                mapped=True,
                relative_performance=full_seconds / seconds,
                compile_speedup=hls_s / compile_s,
                reconfig_speedup=FPGA_REFLASH_S / reconfig_s,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 18: incremental workload addition
# ----------------------------------------------------------------------
@dataclass
class Fig18Row:
    added: str
    num_workloads: int
    tiles: int
    lut_per_tile_fraction: float
    datapath_fraction: float        # pe + n/w + vp share of device, per tile
    geomean_ipc: float


#: Paper Fig. 18's incremental order for MachSuite.
FIG18_ORDER = ("stencil-2d", "gemm", "stencil-3d", "ellpack", "crs")


def fig18_incremental() -> List[Fig18Row]:
    rows = []
    current: List[Workload] = []
    for name in FIG18_ORDER:
        current.append(get_workload(name))
        names = tuple(w.name for w in current)
        res = _engine_explore(list(current), "+".join(names))
        est = AnalyticEstimator()
        tile_breakdown = est.tile_breakdown(res.sysadg.adg)
        tile_lut = sum(r.lut for r in tile_breakdown.values())
        datapath = sum(
            tile_breakdown[cat].lut for cat in ("pe", "n/w", "vp")
        )
        rows.append(
            Fig18Row(
                added=f"+{name}",
                num_workloads=len(current),
                tiles=res.sysadg.params.num_tiles,
                lut_per_tile_fraction=tile_lut / XCVU9P.lut,
                datapath_fraction=datapath / XCVU9P.lut,
                geomean_ipc=res.choice.objective,
            )
        )
    return rows


def fig18_generality_cost() -> float:
    """Performance retained by the first workload once all five share the
    overlay (paper: supporting the whole suite costs mean ~8%)."""
    rows = fig18_incremental()
    first_name = FIG18_ORDER[0]
    first = _engine_explore([get_workload(first_name)], first_name)
    final = _engine_explore(
        [get_workload(n) for n in FIG18_ORDER], "+".join(FIG18_ORDER)
    )
    alone = first.choice.estimates[first_name].ipc
    shared = final.choice.estimates[first_name].ipc
    return shared / alone


# ----------------------------------------------------------------------
# Figure 19: DRAM channel scaling
# ----------------------------------------------------------------------
@dataclass
class Fig19Row:
    workload: str
    og_speedup: Dict[int, float]   # channels -> speedup vs 1 channel
    ad_speedup: Dict[int, float]


def fig19_dram_channels(channel_counts=(1, 2, 4)) -> List[Fig19Row]:
    rows = []
    for w in paper_workloads():
        res = workload_overlay(w.name)
        og: Dict[int, float] = {}
        base_cycles = None
        for channels in channel_counts:
            sysadg = res.sysadg.with_params(dram_channels=channels)
            sim = memoized(
                ("fig19-sim", w.name, channels),
                lambda s=sysadg: simulate_schedule(
                    res.schedules[w.name], s
                ),
            )
            if base_cycles is None:
                base_cycles = sim.cycles
            og[channels] = base_cycles / sim.cycles
        ad: Dict[int, float] = {}
        ad_base = None
        for channels in channel_counts:
            design = autodse(w.name, tuned=False, dram_channels=channels).design
            if ad_base is None:
                ad_base = design.cycles
            ad[channels] = ad_base / design.cycles
        rows.append(Fig19Row(w.name, og, ad))
    return rows


# ----------------------------------------------------------------------
# Figure 20: schedule-preserving transformations
# ----------------------------------------------------------------------
@dataclass
class Fig20Result:
    suite: str
    preserved_history: List[Tuple[int, float, float]]
    nonpreserved_history: List[Tuple[int, float, float]]
    preserved_ipc: float
    nonpreserved_ipc: float
    preserved_hours: float
    nonpreserved_hours: float

    @property
    def ipc_improvement(self) -> float:
        if self.nonpreserved_ipc <= 0:
            return 0.0
        return self.preserved_ipc / self.nonpreserved_ipc

    @property
    def time_reduction(self) -> float:
        if self.nonpreserved_hours <= 0:
            return 0.0
        return 1.0 - self.preserved_hours / self.nonpreserved_hours


def fig20_schedule_preserving(suite: str) -> Fig20Result:
    def build(preserving: bool) -> DseResult:
        return _engine_explore(
            get_suite(suite),
            f"{suite}-{'p' if preserving else 'np'}",
            schedule_preserving=preserving,
        )

    on = build(True)
    off = build(False)
    return Fig20Result(
        suite=suite,
        preserved_history=on.history,
        nonpreserved_history=off.history,
        preserved_ipc=on.choice.objective,
        nonpreserved_ipc=off.choice.objective,
        preserved_hours=on.modeled_hours,
        nonpreserved_hours=off.modeled_hours,
    )


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table2_workload_specs() -> List[Dict]:
    """Table II: size/dtype plus the best DFG's port/array/op statistics."""
    from ..ir import Op

    rows = []
    for w in paper_workloads():
        variants = memoized(
            ("variants", w.name), lambda w=w: generate_variants(w)
        )
        best = variants.best
        counts = w.op_counts()
        unroll = best.unroll
        rows.append(
            {
                "workload": w.name,
                "suite": w.suite,
                "size": w.size_desc,
                "type": w.dtype.name,
                "ivp": len(best.input_ports),
                "ovp": len(best.output_ports),
                "arr": len(best.arrays),
                "mul": counts.get(Op.MUL, 0) * unroll,
                "add": (
                    counts.get(Op.ADD, 0)
                    + counts.get(Op.SUB, 0)
                    + counts.get(Op.MAX, 0)
                    + counts.get(Op.MIN, 0)
                )
                * unroll,
                "div": (
                    counts.get(Op.DIV, 0) + counts.get(Op.SQRT, 0)
                )
                * unroll,
            }
        )
    return rows


def table3_suite_overlays() -> List[Dict]:
    """Table III: specifications of the suite-specialized overlays."""
    from ..adg import NodeKind

    rows = []
    overlays = [(s, suite_overlay(s)) for s in PAPER_SUITE_NAMES]
    overlays.append(("general", None))
    for label, res in overlays:
        if res is None:
            sysadg = general_sysadg()
        else:
            sysadg = res.sysadg
        adg, p = sysadg.adg, sysadg.params
        int_caps = {"add": 0, "mul": 0, "div": 0}
        flt_caps = {"add": 0, "mul": 0, "div": 0, "sqrt": 0}
        for pe in adg.pes:
            ops = {(c.op.value, c.is_float) for c in pe.caps}
            for op, is_float in ops:
                target = flt_caps if is_float else int_caps
                if op in target:
                    target[op] += 1
                elif op == "sqrt" and is_float:
                    target["sqrt"] += 1
        rows.append(
            {
                "overlay": label,
                "tiles": p.num_tiles,
                "l2_banks": p.l2_banks,
                "l2_kib": p.l2_kib,
                "noc_bytes": p.noc_bytes_per_cycle,
                "pes": len(adg.pes),
                "switches": len(adg.switches),
                "avg_radix": round(adg.avg_switch_radix(), 2),
                "int_fus": "/".join(str(int_caps[k]) for k in ("add", "mul", "div")),
                "flt_fus": "/".join(
                    str(flt_caps[k]) for k in ("add", "mul", "div", "sqrt")
                ),
                "spads": len(adg.spads),
                "spad_kib": sum(s.capacity_bytes for s in adg.spads) // 1024,
                "spad_indirect": any(s.indirect for s in adg.spads),
                "in_port_bytes": sum(q.width_bytes for q in adg.in_ports),
                "out_port_bytes": sum(q.width_bytes for q in adg.out_ports),
            }
        )
    return rows


def table4_hls_ii() -> List[Dict]:
    """Table IV: HLS initiation intervals, untuned vs tuned.

    Pinned to the paper workloads: the scenario families also carry HLS
    kernel info, but Table IV reproduces the paper's seven rows.
    """
    paper_names = {w.name for w in paper_workloads()}
    rows = []
    for name, info in KERNEL_INFO.items():
        if name not in paper_names:
            continue
        if info.untuned_ii > 1:
            rows.append(
                {
                    "workload": name,
                    "cause": info.cause,
                    "untuned_ii": info.untuned_ii,
                    "tuned_ii": info.tuned_ii,
                }
            )
    return rows


def families_end_to_end() -> List[Dict]:
    """Scenario families through the whole pipeline (EXPERIMENTS.md).

    Every fsm/tdm/irregular workload is scheduled and simulated on the
    General overlay; each family's seed overlay is then emitted through
    both RTL backends and floorplanned.  Returns one row per workload
    with the family-level RTL/floorplan columns repeated.
    """
    from ..adg import SystemParams, seed_for_workloads
    from ..rtl import (
        build_design,
        design_stats,
        estimated_frequency,
        get_backend,
    )
    from ..rtl import floorplan as make_floorplan
    from ..workloads import SUITE_NAMES

    rows: List[Dict] = []
    sysadg = general_sysadg()
    for suite in SUITE_NAMES:
        if suite in PAPER_SUITE_NAMES:
            continue
        workloads = get_suite(suite)
        seed = SysADG(
            adg=seed_for_workloads(workloads),
            params=SystemParams(num_tiles=2),
            name=f"{suite}-seed",
        )
        design = build_design(seed)
        stats = design_stats(design)
        emitted = {
            name: len(get_backend(name).render_design(design).splitlines())
            for name in ("verilog", "migen")
        }
        plan = make_floorplan(seed)
        for w in workloads:
            variants = memoized(
                ("variants", w.name), lambda w=w: generate_variants(w)
            )
            schedule = schedule_workload(variants, sysadg.adg, sysadg.params)
            sim = (
                _simulate(f"family:{suite}", schedule, sysadg)
                if schedule is not None
                else None
            )
            rows.append(
                {
                    "workload": w.name,
                    "family": suite,
                    "schedules": schedule is not None,
                    "ipc": sim.ipc if sim is not None else 0.0,
                    "modules": stats["modules"],
                    "verilog_lines": emitted["verilog"],
                    "migen_lines": emitted["migen"],
                    "feasible": plan.feasible,
                    "mhz": round(estimated_frequency(plan), 2),
                }
            )
    return rows
