"""Performance and FPGA-resource models used by the DSE."""

from .perf import (
    MemoryBinding,
    PerfEstimate,
    estimate_cycles,
    estimate_ipc,
    geomean_ipc,
    preferred_binding,
    stream_demand_bytes,
)
from .resource import (
    AnalyticEstimator,
    MlEstimator,
    Resources,
    XCVU9P,
    system_breakdown,
    system_resources,
    tile_breakdown,
    tile_resources,
    usable_budget,
)

__all__ = [
    "AnalyticEstimator",
    "MemoryBinding",
    "MlEstimator",
    "PerfEstimate",
    "Resources",
    "XCVU9P",
    "estimate_cycles",
    "estimate_ipc",
    "geomean_ipc",
    "preferred_binding",
    "stream_demand_bytes",
    "system_breakdown",
    "system_resources",
    "tile_breakdown",
    "tile_resources",
    "usable_budget",
]
