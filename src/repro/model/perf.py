"""Bottleneck-based performance model (Section V-C, Equations 1-2).

An mDFG's estimated IPC is::

    IPC = (mDFG insts) x (# tiles) x min over levels (R_prod / R_cons)

where the levels are the scratchpads (L1), the shared L2, and DRAM, plus
the auxiliary recurrence/generate engine bandwidths.  Consumption rates are
reuse-discounted: a stream whose value is held stationary at its port only
fetches once per ``held`` firings, and a stream whose array lives in the
scratchpad or hits in L2 stops consuming downstream bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..adg import ADG, NodeKind, SpadEngine, SysADG, SystemParams
from ..dfg import MDFG, ArrayPlacement, StreamKind, StreamNode


@dataclass(frozen=True)
class MemoryBinding:
    """Where each memory stream of an mDFG executes.

    ``stream_engine`` maps stream node-id -> ADG engine node-id; the engine
    kind determines the level (scratchpad vs DMA/L2/DRAM).  Produced by the
    spatial scheduler; for pre-scheduling estimates use
    :func:`preferred_binding`.
    """

    stream_engine: Mapping[int, int]

    def engine_of(self, stream_id: int) -> Optional[int]:
        return self.stream_engine.get(stream_id)


@dataclass(frozen=True)
class PerfEstimate:
    """Result of the bottleneck analysis for one (mDFG, system) pair."""

    ipc: float
    tiles_used: float
    insts_per_cycle: float
    factors: Dict[str, float]

    @property
    def bottleneck(self) -> str:
        """The level that limits performance ('none' when compute-bound)."""
        limiting = min(self.factors, key=lambda k: self.factors[k], default="none")
        if not self.factors or self.factors[limiting] >= 1.0:
            return "none"
        return limiting


def stream_demand_bytes(
    stream: StreamNode, unroll: int, reuse_aware: bool = True
) -> float:
    """Bytes/cycle this stream pulls from its engine at full fabric rate.

    Stationary reuse at the port divides the demand: the stream delivers one
    value per ``held`` firings (``held`` = stationary trips / unroll).
    ``reuse_aware=False`` disables the discount (the ablation of Section
    IV's reuse-annotated model).
    """
    if not reuse_aware:
        return stream.lanes * stream.dtype.bytes
    held = max(1.0, stream.stationary_reuse / max(1, unroll))
    return stream.lanes * stream.dtype.bytes / held


def total_l2_footprint(
    mdfg: MDFG, stream: StreamNode, num_tiles: int
) -> float:
    """Bytes of the stream's array competing for L2 across all tiles.

    Partitionable arrays split across tiles (total = one copy); arrays
    shared by every tile are effectively replicated in the working set.
    """
    array = next((a for a in mdfg.arrays if a.array == stream.array), None)
    if array is None:
        return 0.0
    if array.partitionable:
        return float(array.footprint_bytes)
    return float(array.footprint_bytes) * max(1, num_tiles)


def preferred_binding(mdfg: MDFG, adg: ADG) -> MemoryBinding:
    """A plausible binding without running the spatial scheduler.

    Arrays preferring scratchpad go to the first scratchpad with space
    (greedy, highest reuse first); everything else to the first DMA.
    Recurrence/generate/register streams bind to their engine kind when one
    exists, else fall back to DMA (the scheduler would relax similarly).
    """
    binding: Dict[int, int] = {}
    spads = list(adg.spads)
    spad_free = {s.node_id: float(s.capacity_bytes) for s in spads}
    dmas = adg.dmas
    dma_id = dmas[0].node_id if dmas else None
    aux = {
        StreamKind.RECURRENCE: NodeKind.RECURRENCE,
        StreamKind.GENERATE: NodeKind.GENERATE,
        StreamKind.REGISTER: NodeKind.REGISTER,
    }
    arrays = sorted(mdfg.arrays, key=lambda a: -a.memory_reuse)
    array_spad: Dict[str, Optional[int]] = {}
    for array in arrays:
        need = float(array.footprint_bytes)
        if array.partitionable:
            need /= max(1.0, min(16.0, mdfg.tile_parallelism))
        target = None
        if array.preferred is ArrayPlacement.SPAD:
            for spad in spads:
                indirect_ok = not array.indirect_target or spad.indirect
                if spad_free[spad.node_id] >= need and indirect_ok:
                    target = spad.node_id
                    spad_free[spad.node_id] -= need
                    break
        array_spad[array.array] = target
    for stream in mdfg.streams:
        if stream.kind in aux:
            engines = adg.of_kind(aux[stream.kind])
            if engines:
                binding[stream.node_id] = engines[0].node_id
                continue
            if dma_id is not None:
                binding[stream.node_id] = dma_id
            continue
        if not stream.is_memory:
            continue
        spad = array_spad.get(stream.array)
        if spad is not None and not (stream.indirect and not _spad_indirect(adg, spad)):
            binding[stream.node_id] = spad
        elif dma_id is not None:
            binding[stream.node_id] = dma_id
    return MemoryBinding(binding)


def _spad_indirect(adg: ADG, spad_id: int) -> bool:
    node = adg.node(spad_id)
    return isinstance(node, SpadEngine) and node.indirect


def estimate_ipc(
    mdfg: MDFG,
    binding: MemoryBinding,
    adg: ADG,
    params: SystemParams,
    num_tiles: Optional[int] = None,
    reuse_aware: bool = True,
) -> PerfEstimate:
    """Equations 1-2: bottleneck-limited IPC of ``mdfg`` on the overlay.

    ``reuse_aware=False`` runs the ablated model: no stationary-port
    discount and no L2-reuse filtering of DRAM demand (every stream pays
    full bandwidth at every level).
    """
    tiles = params.num_tiles if num_tiles is None else num_tiles
    tiles_used = min(float(tiles), mdfg.tile_parallelism)
    factors: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # L1: per-scratchpad read/write bandwidth (private per tile, banks=1).
    # ------------------------------------------------------------------
    spad_read: Dict[int, float] = {}
    spad_write: Dict[int, float] = {}
    dma_streams: List[StreamNode] = []
    rec_demand = 0.0
    gen_demand = 0.0
    for stream in mdfg.streams:
        engine_id = binding.engine_of(stream.node_id)
        if engine_id is None or not adg.has_node(engine_id):
            continue
        kind = adg.node(engine_id).kind
        demand = stream_demand_bytes(stream, mdfg.unroll, reuse_aware)
        if kind is NodeKind.SPAD:
            if stream.kind is StreamKind.MEMORY_READ:
                spad_read[engine_id] = spad_read.get(engine_id, 0.0) + demand
            else:
                spad_write[engine_id] = spad_write.get(engine_id, 0.0) + demand
        elif kind is NodeKind.DMA:
            dma_streams.append(stream)
        elif kind is NodeKind.RECURRENCE:
            rec_demand += demand
        elif kind is NodeKind.GENERATE:
            gen_demand += demand
        # register engine bandwidth is negligible (scalar collection)
    for engine_id, demand in spad_read.items():
        spad = adg.node(engine_id)
        if demand > 0:
            factors[f"spad{engine_id}.read"] = spad.read_bandwidth / demand
    for engine_id, demand in spad_write.items():
        spad = adg.node(engine_id)
        if demand > 0:
            factors[f"spad{engine_id}.write"] = spad.write_bandwidth / demand

    # ------------------------------------------------------------------
    # DMA engine issue bandwidth (per tile).
    # ------------------------------------------------------------------
    dma_demand = sum(
        stream_demand_bytes(s, mdfg.unroll, reuse_aware) * s.stride_overfetch
        for s in dma_streams
    )
    if dma_streams and dma_demand > 0:
        dma_bw = max((d.bandwidth_bytes for d in adg.dmas), default=0)
        if dma_bw:
            factors["dma"] = dma_bw / dma_demand

    # ------------------------------------------------------------------
    # NoC: each tile's crossbar link bounds its own L2 traffic.
    # ------------------------------------------------------------------
    if dma_demand > 0:
        factors["noc"] = params.noc_bytes_per_cycle / dma_demand

    # ------------------------------------------------------------------
    # L2: shared across tiles; banks multiply production (Eq. 2).
    # ------------------------------------------------------------------
    if dma_demand > 0:
        production = params.l2_bank_bandwidth * params.l2_banks
        consumption = dma_demand * tiles_used
        factors["l2"] = production / consumption

    # ------------------------------------------------------------------
    # DRAM: streams whose working set misses in L2 keep their demand;
    # workloads whose footprint fits are filtered by L2 reuse.
    # ------------------------------------------------------------------
    dram_demand_tile = 0.0
    for stream in dma_streams:
        demand = (
            stream_demand_bytes(stream, mdfg.unroll, reuse_aware)
            * stream.stride_overfetch
        )
        footprint = total_l2_footprint(mdfg, stream, max(1, int(tiles_used)))
        if reuse_aware and footprint <= params.l2_bytes:
            array = next(
                (a for a in mdfg.arrays if a.array == stream.array), None
            )
            reuse = array.memory_reuse if array is not None else 1.0
            demand /= max(1.0, reuse)
        dram_demand_tile += demand
    if dram_demand_tile > 0:
        factors["dram"] = params.dram_bytes_per_cycle / (
            dram_demand_tile * tiles_used
        )

    # ------------------------------------------------------------------
    # Auxiliary engines.
    # ------------------------------------------------------------------
    if rec_demand > 0:
        rec_bw = max(
            (e.bandwidth_bytes for e in adg.of_kind(NodeKind.RECURRENCE)),
            default=0,
        )
        if rec_bw:
            factors["rec"] = rec_bw / rec_demand
    if gen_demand > 0:
        gen_bw = max(
            (e.bandwidth_bytes for e in adg.of_kind(NodeKind.GENERATE)),
            default=0,
        )
        if gen_bw:
            factors["gen"] = gen_bw / gen_demand

    bottleneck = min(factors.values()) if factors else 1.0
    ipc = mdfg.insts_per_cycle * tiles_used * min(1.0, bottleneck)
    return PerfEstimate(
        ipc=ipc,
        tiles_used=tiles_used,
        insts_per_cycle=mdfg.insts_per_cycle,
        factors=factors,
    )


def estimate_cycles(
    mdfg: MDFG,
    binding: MemoryBinding,
    adg: ADG,
    params: SystemParams,
) -> float:
    """Estimated execution cycles of the region on the full overlay."""
    est = estimate_ipc(mdfg, binding, adg, params)
    if est.ipc <= 0:
        return float("inf")
    return mdfg.total_instructions / est.ipc


def geomean_ipc(estimates: List[PerfEstimate], weights=None) -> float:
    """Weighted geometric-mean IPC across workloads (the DSE objective)."""
    if not estimates:
        return 0.0
    if weights is None:
        weights = [1.0] * len(estimates)
    total_w = sum(weights)
    log_sum = 0.0
    import math

    for est, w in zip(estimates, weights):
        log_sum += w * math.log(max(est.ipc, 1e-9))
    return math.exp(log_sum / total_w)
