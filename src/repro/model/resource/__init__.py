"""FPGA resource modeling: device budgets, analytic costs, ML predictor."""

from .analytic import (
    CATEGORIES,
    control_core_resources,
    dispatcher_resources,
    dma_resources,
    in_port_resources,
    l2_resources,
    noc_resources,
    node_resources,
    out_port_resources,
    pe_resources,
    spad_resources,
    switch_resources,
    system_breakdown,
    system_resources,
    tile_breakdown,
    tile_resources,
)
from .dataset import (
    ComponentDataset,
    GENERATORS,
    TABLE1_COUNTS,
    generate_all,
)
from .device import Resources, USABLE_FRACTION, XCVU9P, usable_budget
from .mlp import MlpConfig, ResourceMlp
from .predictor import AnalyticEstimator, MlEstimator

__all__ = [
    "AnalyticEstimator",
    "CATEGORIES",
    "ComponentDataset",
    "GENERATORS",
    "MlEstimator",
    "MlpConfig",
    "ResourceMlp",
    "Resources",
    "TABLE1_COUNTS",
    "USABLE_FRACTION",
    "XCVU9P",
    "control_core_resources",
    "dispatcher_resources",
    "dma_resources",
    "generate_all",
    "in_port_resources",
    "l2_resources",
    "noc_resources",
    "node_resources",
    "out_port_resources",
    "pe_resources",
    "spad_resources",
    "switch_resources",
    "system_breakdown",
    "system_resources",
    "tile_breakdown",
    "tile_resources",
    "usable_budget",
]
