"""A small numpy multi-layer perceptron for resource prediction.

The paper's component-level model is a 3-layer MLP (Section V-D).  Ours has
two hidden layers + linear output, trained with Adam on standardized
features and log-scaled LUT/FF targets (resource costs span four orders of
magnitude).  BRAM/DSP are small counts and train on raw scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .dataset import ComponentDataset


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


@dataclass
class MlpConfig:
    hidden: Tuple[int, int] = (48, 48)
    learning_rate: float = 1e-3
    epochs: int = 60
    batch_size: int = 256
    seed: int = 0


class ResourceMlp:
    """MLP mapping component features -> (lut, ff, bram, dsp)."""

    def __init__(self, n_features: int, config: Optional[MlpConfig] = None):
        self.config = config or MlpConfig()
        rng = np.random.default_rng(self.config.seed)
        h1, h2 = self.config.hidden
        scale = lambda fan_in: np.sqrt(2.0 / fan_in)
        self.w1 = rng.normal(0, scale(n_features), (n_features, h1))
        self.b1 = np.zeros(h1)
        self.w2 = rng.normal(0, scale(h1), (h1, h2))
        self.b2 = np.zeros(h2)
        self.w3 = rng.normal(0, scale(h2), (h2, 4))
        self.b3 = np.zeros(4)
        # Feature / target standardization (fit at train time).
        self.x_mean = np.zeros(n_features)
        self.x_std = np.ones(n_features)
        self.y_mean = np.zeros(4)
        self.y_std = np.ones(4)
        self._adam_state: Optional[List] = None

    # ------------------------------------------------------------------
    def _encode_targets(self, labels: np.ndarray) -> np.ndarray:
        # Resource costs span four orders of magnitude; log-scale them all.
        return np.log1p(labels)

    def _decode_targets(self, y: np.ndarray) -> np.ndarray:
        return np.maximum(np.expm1(y), 0.0)

    def _forward(self, x: np.ndarray):
        z1 = x @ self.w1 + self.b1
        a1 = _relu(z1)
        z2 = a1 @ self.w2 + self.b2
        a2 = _relu(z2)
        out = a2 @ self.w3 + self.b3
        return z1, a1, z2, a2, out

    # ------------------------------------------------------------------
    def fit(self, data: ComponentDataset) -> float:
        """Train on ``data``; returns the final epoch's mean loss."""
        cfg = self.config
        x = data.features
        y = self._encode_targets(data.labels)
        self.x_mean = x.mean(axis=0)
        self.x_std = np.where(x.std(axis=0) > 1e-9, x.std(axis=0), 1.0)
        self.y_mean = y.mean(axis=0)
        self.y_std = np.where(y.std(axis=0) > 1e-9, y.std(axis=0), 1.0)
        xn = (x - self.x_mean) / self.x_std
        yn = (y - self.y_mean) / self.y_std

        params = [self.w1, self.b1, self.w2, self.b2, self.w3, self.b3]
        m = [np.zeros_like(p) for p in params]
        v = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        rng = np.random.default_rng(cfg.seed + 1)
        n = len(xn)
        final_loss = float("inf")
        for _ in range(cfg.epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                xb, yb = xn[idx], yn[idx]
                z1, a1, z2, a2, out = self._forward(xb)
                err = out - yb
                losses.append(float(np.mean(err**2)))
                bsz = len(xb)
                d_out = 2.0 * err / (bsz * 4)
                g_w3 = a2.T @ d_out
                g_b3 = d_out.sum(axis=0)
                d_a2 = d_out @ self.w3.T
                d_z2 = d_a2 * (z2 > 0)
                g_w2 = a1.T @ d_z2
                g_b2 = d_z2.sum(axis=0)
                d_a1 = d_z2 @ self.w2.T
                d_z1 = d_a1 * (z1 > 0)
                g_w1 = xb.T @ d_z1
                g_b1 = d_z1.sum(axis=0)
                grads = [g_w1, g_b1, g_w2, g_b2, g_w3, g_b3]
                step += 1
                for p, g, mi, vi in zip(params, grads, m, v):
                    mi *= beta1
                    mi += (1 - beta1) * g
                    vi *= beta2
                    vi += (1 - beta2) * g * g
                    m_hat = mi / (1 - beta1**step)
                    v_hat = vi / (1 - beta2**step)
                    p -= cfg.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
            final_loss = float(np.mean(losses))
        return final_loss

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict (n, 4) resource labels for an (n, d) feature matrix."""
        features = np.atleast_2d(features)
        xn = (features - self.x_mean) / self.x_std
        out = self._forward(xn)[-1]
        return self._decode_targets(out * self.y_std + self.y_mean)

    # ------------------------------------------------------------------
    def evaluate(self, data: ComponentDataset) -> dict:
        """Mean absolute percentage error per resource class on ``data``."""
        pred = self.predict(data.features)
        truth = data.labels
        out = {}
        for idx, name in enumerate(("lut", "ff", "bram", "dsp")):
            mask = truth[:, idx] > 1.0
            if not mask.any():
                out[name] = 0.0
                continue
            ape = np.abs(pred[mask, idx] - truth[mask, idx]) / truth[mask, idx]
            out[name] = float(np.mean(ape))
        return out
