"""FPGA device description and resource vectors.

The evaluation platform is a Xilinx VCU118 board carrying an XCVU9P part;
budgets below are the public device totals.  A :class:`Resources` vector
carries the four resource classes the paper's DSE balances (Fig. 3:
"LUT%, FF%, BRAM%, DSP%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass(frozen=True)
class Resources:
    """A LUT/FF/BRAM/DSP resource vector (floats: model estimates)."""

    lut: float = 0.0
    ff: float = 0.0
    bram: float = 0.0
    dsp: float = 0.0

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(
            self.lut + other.lut,
            self.ff + other.ff,
            self.bram + other.bram,
            self.dsp + other.dsp,
        )

    def __sub__(self, other: "Resources") -> "Resources":
        return Resources(
            self.lut - other.lut,
            self.ff - other.ff,
            self.bram - other.bram,
            self.dsp - other.dsp,
        )

    def __mul__(self, factor: float) -> "Resources":
        return Resources(
            self.lut * factor,
            self.ff * factor,
            self.bram * factor,
            self.dsp * factor,
        )

    __rmul__ = __mul__

    def fits_in(self, budget: "Resources") -> bool:
        return (
            self.lut <= budget.lut
            and self.ff <= budget.ff
            and self.bram <= budget.bram
            and self.dsp <= budget.dsp
        )

    def utilization(self, budget: "Resources") -> Dict[str, float]:
        """Per-class utilization fractions against ``budget``."""
        return {
            "lut": self.lut / budget.lut,
            "ff": self.ff / budget.ff,
            "bram": self.bram / budget.bram,
            "dsp": self.dsp / budget.dsp,
        }

    def max_utilization(self, budget: "Resources") -> float:
        return max(self.utilization(budget).values())

    def as_dict(self) -> Dict[str, float]:
        return {"lut": self.lut, "ff": self.ff, "bram": self.bram, "dsp": self.dsp}

    @staticmethod
    def total(items: Iterable["Resources"]) -> "Resources":
        acc = Resources()
        for item in items:
            acc = acc + item
        return acc


#: XCVU9P (VCU118) device totals.
XCVU9P = Resources(lut=1_182_240, ff=2_364_480, bram=2_160, dsp=6_840)

#: Fraction of the device the DSE may fill.  Physical design needs slack
#: for routing and the paper's designs top out around 97% LUT.
USABLE_FRACTION = 0.97


def usable_budget(device: Resources = XCVU9P) -> Resources:
    return device * USABLE_FRACTION
