"""Analytical per-component FPGA resource costs.

This is the ground-truth cost model standing in for Vivado out-of-context
synthesis: the ML dataset generator (Table I) samples it (plus synthesis
noise), and the trained MLP approximates it during DSE.  Constants are
calibrated so the paper's headline utilization shapes hold on the XCVU9P:

* the 24-PE universal 512-bit General tile costs ~200+ kLUT so only 4 fit;
* suite-specialized tiles land in the 60-120 kLUT range, allowing 7-13;
* the crossbar NoC is among the largest single LUT components at high tile
  counts (Q4);
* scratchpads/ROBs land in BRAM, floating point lands in DSP.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ...adg import (
    ADG,
    AdgNode,
    DmaEngine,
    ENGINE_KINDS,
    FuCap,
    GenerateEngine,
    InputPortHW,
    NodeKind,
    OutputPortHW,
    ProcessingElement,
    RecurrenceEngine,
    RegisterEngine,
    SpadEngine,
    Switch,
    SysADG,
)
from ...ir import Op
from .device import Resources

#: LUT cost of one lane of a simple integer ALU op, per bit.
_INT_ALU_LUT_PER_BIT = 0.2

#: Iterative (shared, non-pipelined-per-lane) divider cost per bit.
_INT_DIV_LUT_PER_BIT = 6.0

#: Floating-point unit costs per lane: (lut, dsp) by (op-class, bits).
_FP_COSTS: Dict[Tuple[str, int], Tuple[float, float]] = {
    ("add", 32): (160.0, 0.0),
    ("add", 64): (225.0, 0.0),
    ("mul", 32): (80.0, 1.0),
    ("mul", 64): (150.0, 2.0),
}
#: Shared iterative fp units: cost per PE if present at all (not per lane).
_FP_SHARED: Dict[Tuple[str, int], float] = {
    ("div", 32): 1200.0,
    ("div", 64): 2000.0,
    ("sqrt", 32): 1400.0,
    ("sqrt", 64): 2400.0,
}

_ADD_CLASS = {Op.ADD, Op.SUB, Op.MAX, Op.MIN, Op.CMP, Op.ABS, Op.SELECT}
_LOGIC_CLASS = {Op.SHL, Op.SHR, Op.AND, Op.OR, Op.XOR}


def _fu_cost(caps: Iterable[FuCap], width_bits: int) -> Resources:
    """Cost of a PE's functional units under subword-SIMD and unit sharing.

    Two sharing rules reflect how FPGA PEs are actually built:

    * *Subword SIMD*: within a unit class the hardware is provisioned at the
      widest requested scalar width; narrower widths ride the same unit in
      subword mode (an i8 add on a 64-bit SIMD adder is free once the adder
      exists).
    * *Unit classes*: add-class ops (add/sub/min/max/cmp/abs/select) and the
      logic/shift ops share one ALU per lane with a small incremental cost
      per extra opcode; multiply, divide, and sqrt are their own units.
      Divide/sqrt are iterative shared units (one per PE, not per lane).
    """
    int_alu_ops: set = set()
    int_alu_bits = 0
    int_mul_bits = 0
    int_div_bits = 0
    fp_add_ops: set = set()
    fp_add_bits = 0
    fp_mul_bits = 0
    fp_div_bits = 0
    fp_sqrt_bits = 0
    for cap in caps:
        if cap.is_float:
            if cap.op is Op.MUL:
                fp_mul_bits = max(fp_mul_bits, cap.bits)
            elif cap.op is Op.DIV:
                fp_div_bits = max(fp_div_bits, cap.bits)
            elif cap.op is Op.SQRT:
                fp_sqrt_bits = max(fp_sqrt_bits, cap.bits)
            else:
                fp_add_ops.add(cap.op)
                fp_add_bits = max(fp_add_bits, cap.bits)
        else:
            if cap.op is Op.MUL:
                int_mul_bits = max(int_mul_bits, cap.bits)
            elif cap.op is Op.DIV:
                int_div_bits = max(int_div_bits, cap.bits)
            else:
                int_alu_ops.add(cap.op)
                int_alu_bits = max(int_alu_bits, cap.bits)
    lut = 0.0
    dsp = 0.0
    if int_alu_ops:
        lanes = max(1, width_bits // int_alu_bits)
        share = 1.0 + 0.15 * (len(int_alu_ops) - 1)
        lut += _INT_ALU_LUT_PER_BIT * int_alu_bits * lanes * share
    if int_mul_bits:
        lanes = max(1, width_bits // int_mul_bits)
        dsp += max(1.0, int_mul_bits / 24.0) * lanes * 0.5
        lut += int_mul_bits * 1.5 * lanes / 8.0
    if int_div_bits:
        lut += _INT_DIV_LUT_PER_BIT * int_div_bits
    if fp_add_ops:
        lanes = max(1, width_bits // fp_add_bits)
        share = 1.0 + 0.06 * (len(fp_add_ops) - 1)
        unit = _FP_COSTS[("add", fp_add_bits)]
        lut += unit[0] * lanes * share
        dsp += unit[1] * lanes
    if fp_mul_bits:
        lanes = max(1, width_bits // fp_mul_bits)
        unit = _FP_COSTS[("mul", fp_mul_bits)]
        lut += unit[0] * lanes
        dsp += unit[1] * lanes
    if fp_div_bits and fp_sqrt_bits:
        # A combined iterative div/sqrt unit shares the datapath.
        lut += max(
            _FP_SHARED[("div", fp_div_bits)],
            _FP_SHARED[("sqrt", fp_sqrt_bits)],
        ) + 600.0
    elif fp_div_bits:
        lut += _FP_SHARED[("div", fp_div_bits)]
    elif fp_sqrt_bits:
        lut += _FP_SHARED[("sqrt", fp_sqrt_bits)]
    return Resources(lut=lut, dsp=dsp)


def pe_resources(pe: ProcessingElement) -> Resources:
    """One processing element: control + delay FIFOs + functional units."""
    base = Resources(lut=400.0, ff=500.0)
    # Per-operand delay FIFOs: three operand slots of width_bits, depth
    # max_delay_fifo, built from SRL LUTs.
    fifo_lut = 3 * pe.width_bits * max(1, pe.max_delay_fifo) / 24.0
    fifo = Resources(lut=fifo_lut, ff=pe.width_bits * 1.5)
    return base + fifo + _fu_cost(pe.caps, pe.width_bits)


def switch_resources(sw: Switch, in_degree: int, out_degree: int) -> Resources:
    """A circuit-switched crossbar switch: muxes scale with in x out x width."""
    in_degree = max(1, in_degree)
    out_degree = max(1, out_degree)
    mux_lut = (in_degree / 2.0) * (out_degree / 2.0) * sw.width_bits / 6.0
    return Resources(
        lut=150.0 + mux_lut,
        ff=sw.width_bits * out_degree * 0.6,
    )


def in_port_resources(port: InputPortHW, feeders: int = 1) -> Resources:
    """``feeders`` = stream engines linked into this port: each extra one
    adds a mux leg on the fill path (the spatial-memory topology cost that
    motivates Fig. 4's pruned memory networks)."""
    lut = 150.0 + port.width_bytes * 24.0
    lut += max(0, feeders - 1) * (port.width_bytes * 1.5 + 20.0)
    if port.supports_padding:
        lut += port.width_bytes * 6.0
    if port.supports_meta:
        lut += 40.0
    return Resources(
        lut=lut,
        ff=port.width_bytes * 8.0 * max(2, port.fifo_depth),
    )


def out_port_resources(port: OutputPortHW, drains: int = 1) -> Resources:
    lut = 120.0 + port.width_bytes * 18.0
    lut += max(0, drains - 1) * (port.width_bytes * 1.2 + 15.0)
    return Resources(
        lut=lut,
        ff=port.width_bytes * 8.0 * max(2, port.fifo_depth),
    )


def dma_resources(dma: DmaEngine) -> Resources:
    """DMA engine: request generation, TLB interface, and the ROB."""
    lut = 5000.0 + dma.bandwidth_bytes * 45.0
    bram = 1.0 + dma.rob_entries * dma.bandwidth_bytes / 4608.0
    if dma.indirect:
        lut += 800.0 + dma.bandwidth_bytes * 10.0
    return Resources(lut=lut, ff=lut * 1.2, bram=bram)


def spad_resources(spad: SpadEngine) -> Resources:
    """Scratchpad engine: BRAM banks + stream pipeline + indirect adders."""
    bram = max(1.0, spad.capacity_bytes / 4608.0)  # BRAM36 = 36 Kib
    # Wider access needs more parallel banks even at small capacity.
    bram = max(bram, (spad.read_bandwidth + spad.write_bandwidth) / 16.0)
    lut = 1200.0 + (spad.read_bandwidth + spad.write_bandwidth) * 20.0
    if spad.indirect:
        lut += 600.0 + spad.read_bandwidth * 12.0
        bram += 1.0  # reorder buffer
    return Resources(lut=lut, ff=lut * 1.1, bram=bram)


def generate_resources(gen: GenerateEngine) -> Resources:
    return Resources(lut=350.0 + gen.bandwidth_bytes * 10.0, ff=500.0)


def recurrence_resources(rec: RecurrenceEngine) -> Resources:
    return Resources(
        lut=400.0 + rec.bandwidth_bytes * 12.0,
        ff=600.0,
        bram=max(0.5, rec.buffer_bytes / 4608.0),
    )


def register_resources(reg: RegisterEngine) -> Resources:
    return Resources(lut=250.0, ff=350.0)


def dispatcher_resources(num_engines: int, num_ports: int) -> Resources:
    """Stream dispatcher: register file, dispatch queue, scoreboards."""
    lut = 3000.0 + 150.0 * num_engines + 50.0 * num_ports
    return Resources(lut=lut, ff=lut * 1.5, bram=1.0)


def control_core_resources() -> Resources:
    """One Rocket control core with small private caches."""
    return Resources(lut=24_000.0, ff=14_000.0, bram=16.0, dsp=4.0)


def l2_resources(l2_kib: int, banks: int) -> Resources:
    """Banked inclusive L2: data BRAM + per-bank control/MSHR logic."""
    data_bram = l2_kib * 1024 / 4608.0
    tag_bram = banks * 2.0
    lut = 6000.0 + banks * 2600.0
    return Resources(lut=lut, ff=lut * 1.4, bram=data_bram + tag_bram)


def noc_resources(num_tiles: int, noc_bytes: int) -> Resources:
    """Crossbar TileLink NoC.

    Endpoints = tiles (core+accelerator share a port) + L2 + peripherals.
    The quadratic crossbar term is why the paper observes the NoC among the
    biggest LUT components (Q4).
    """
    endpoints = num_tiles + 2
    lut = 2000.0 + endpoints * endpoints * noc_bytes * 14.0
    return Resources(lut=lut, ff=lut * 1.1)


def node_resources(adg: ADG, node: AdgNode) -> Resources:
    """Dispatch to the per-kind cost function."""
    if isinstance(node, ProcessingElement):
        return pe_resources(node)
    if isinstance(node, Switch):
        return switch_resources(
            node,
            len(adg.predecessors(node.node_id)),
            len(adg.successors(node.node_id)),
        )
    if isinstance(node, InputPortHW):
        feeders = sum(
            1
            for p in adg.predecessors(node.node_id)
            if adg.node(p).kind in ENGINE_KINDS
        )
        return in_port_resources(node, feeders=max(1, feeders))
    if isinstance(node, OutputPortHW):
        drains = sum(
            1
            for p in adg.successors(node.node_id)
            if adg.node(p).kind in ENGINE_KINDS
        )
        return out_port_resources(node, drains=max(1, drains))
    if isinstance(node, DmaEngine):
        return dma_resources(node)
    if isinstance(node, SpadEngine):
        return spad_resources(node)
    if isinstance(node, GenerateEngine):
        return generate_resources(node)
    if isinstance(node, RecurrenceEngine):
        return recurrence_resources(node)
    if isinstance(node, RegisterEngine):
        return register_resources(node)
    raise TypeError(f"no resource model for {type(node).__name__}")


#: Fig. 16 component categories.
CATEGORIES = ("pe", "n/w", "vp", "spad", "dma", "core", "noc")


def _category(node: AdgNode) -> str:
    if isinstance(node, ProcessingElement):
        return "pe"
    if isinstance(node, Switch):
        return "n/w"
    if isinstance(node, (InputPortHW, OutputPortHW)):
        return "vp"
    if isinstance(node, SpadEngine):
        return "spad"
    if isinstance(node, (DmaEngine, GenerateEngine, RecurrenceEngine, RegisterEngine)):
        return "dma"
    raise TypeError(f"no category for {type(node).__name__}")


def tile_breakdown(adg: ADG) -> Dict[str, Resources]:
    """Per-category resources of one accelerator tile (no core/noc/l2)."""
    breakdown = {cat: Resources() for cat in CATEGORIES}
    for node in adg.nodes():
        breakdown[_category(node)] = breakdown[_category(node)] + node_resources(
            adg, node
        )
    breakdown["dma"] = breakdown["dma"] + dispatcher_resources(
        len(adg.engines), len(adg.in_ports) + len(adg.out_ports)
    )
    return breakdown


def tile_resources(adg: ADG) -> Resources:
    """Total resources of one accelerator tile (without its control core)."""
    return Resources.total(tile_breakdown(adg).values())


def system_breakdown(sysadg: SysADG) -> Dict[str, Resources]:
    """Per-category resources of the full overlay (Fig. 16a categories)."""
    p = sysadg.params
    breakdown = {
        cat: res * p.num_tiles for cat, res in tile_breakdown(sysadg.adg).items()
    }
    breakdown["core"] = control_core_resources() * p.num_tiles
    breakdown["noc"] = noc_resources(p.num_tiles, p.noc_bytes_per_cycle) + l2_resources(
        p.l2_kib, p.l2_banks
    )
    return breakdown


def system_resources(sysadg: SysADG) -> Resources:
    return Resources.total(system_breakdown(sysadg).values())
