"""Synthesis-dataset generation for the ML resource model (Table I).

The paper trains a per-component MLP on out-of-context (OOC) synthesis runs
of each hardware family: 100,000 PEs, 56,700 switches, 34,412 input ports,
25,796 output ports.  Standing in for Vivado, we sample the same parameter
spaces and label them with the analytic ground-truth cost plus

* a *pessimism* factor — OOC synthesis sees no cross-module optimization,
  so labels are systematically larger than post-PnR reality (the paper
  notes its model "behaves pessimistically"), and
* multiplicative synthesis noise — placement/packing variance.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ...adg import (
    ADG,
    AdgNode,
    FuCap,
    InputPortHW,
    NodeKind,
    OutputPortHW,
    ProcessingElement,
    Switch,
)
from ...ir import Op
from .analytic import (
    in_port_resources,
    out_port_resources,
    pe_resources,
    switch_resources,
)
from .device import Resources

#: Paper Table I: modules synthesized per family.
TABLE1_COUNTS = {
    "pe": 100_000,
    "switch": 56_700,
    "in_port": 34_412,
    "out_port": 25_796,
}

#: OOC synthesis is pessimistic versus post-PnR by roughly this factor.
OOC_PESSIMISM = 1.10

#: Multiplicative synthesis noise (std of a lognormal-ish perturbation).
SYNTHESIS_NOISE = 0.05

_INT_ALU_OPS = (Op.ADD, Op.SUB, Op.MAX, Op.MIN, Op.CMP, Op.ABS,
                Op.SELECT, Op.SHL, Op.SHR, Op.AND, Op.OR, Op.XOR)
_FP_ADD_OPS = (Op.ADD, Op.SUB, Op.MAX, Op.MIN, Op.CMP)


@dataclass
class ComponentDataset:
    """Feature matrix + resource labels for one component family."""

    family: str
    feature_names: Tuple[str, ...]
    features: np.ndarray  # (n, d)
    labels: np.ndarray    # (n, 4): lut, ff, bram, dsp

    def split(
        self, train: float = 0.8, test: float = 0.1, seed: int = 0
    ) -> Tuple["ComponentDataset", "ComponentDataset", "ComponentDataset"]:
        """80/10/10 train/test/validation split (paper Section V-D)."""
        n = len(self.features)
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
        n_train = int(n * train)
        n_test = int(n * test)
        parts = (
            order[:n_train],
            order[n_train : n_train + n_test],
            order[n_train + n_test :],
        )
        return tuple(
            ComponentDataset(
                self.family,
                self.feature_names,
                self.features[idx],
                self.labels[idx],
            )
            for idx in parts
        )


# ----------------------------------------------------------------------
# Featurization (shared between dataset generation and DSE-time inference)
# ----------------------------------------------------------------------
PE_FEATURES = (
    "width_bits",
    "n_int_alu_ops",
    "int_alu_bits",
    "int_mul_bits",
    "int_div_bits",
    "n_fp_add_ops",
    "fp_add_bits",
    "fp_mul_bits",
    "fp_div_bits",
    "fp_sqrt_bits",
    "delay_fifo",
    # Engineered lane-count features: the dominant cost terms scale with
    # width/scalar_bits, which a small MLP learns far faster when given
    # the ratio directly.
    "int_alu_lanes",
    "fp_add_lanes",
    "fp_mul_lanes",
)

SWITCH_FEATURES = ("width_bits", "in_degree", "out_degree")
IN_PORT_FEATURES = ("width_bytes", "fifo_depth", "padding", "meta", "feeders")
OUT_PORT_FEATURES = ("width_bytes", "fifo_depth", "drains")


def pe_features(pe: ProcessingElement) -> np.ndarray:
    int_alu = [c for c in pe.caps if not c.is_float and c.op in _INT_ALU_OPS]
    int_mul = [c for c in pe.caps if not c.is_float and c.op is Op.MUL]
    int_div = [c for c in pe.caps if not c.is_float and c.op is Op.DIV]
    fp_add = [c for c in pe.caps if c.is_float and c.op in _FP_ADD_OPS]
    fp_mul = [c for c in pe.caps if c.is_float and c.op is Op.MUL]
    fp_div = [c for c in pe.caps if c.is_float and c.op is Op.DIV]
    fp_sqrt = [c for c in pe.caps if c.is_float and c.op is Op.SQRT]
    mx = lambda caps: max((c.bits for c in caps), default=0)
    return np.array(
        [
            pe.width_bits,
            len({c.op for c in int_alu}),
            mx(int_alu),
            mx(int_mul),
            mx(int_div),
            len({c.op for c in fp_add}),
            mx(fp_add),
            mx(fp_mul),
            mx(fp_div),
            mx(fp_sqrt),
            pe.max_delay_fifo,
            pe.width_bits / mx(int_alu) if int_alu else 0.0,
            pe.width_bits / mx(fp_add) if fp_add else 0.0,
            pe.width_bits / mx(fp_mul) if fp_mul else 0.0,
        ],
        dtype=np.float64,
    )


def switch_features(sw: Switch, in_degree: int, out_degree: int) -> np.ndarray:
    return np.array([sw.width_bits, in_degree, out_degree], dtype=np.float64)


def in_port_features(port: InputPortHW, feeders: int = 1) -> np.ndarray:
    return np.array(
        [
            port.width_bytes,
            port.fifo_depth,
            float(port.supports_padding),
            float(port.supports_meta),
            float(feeders),
        ],
        dtype=np.float64,
    )


def out_port_features(port: OutputPortHW, drains: int = 1) -> np.ndarray:
    return np.array(
        [port.width_bytes, port.fifo_depth, float(drains)], dtype=np.float64
    )


# ----------------------------------------------------------------------
# Random component sampling ("what we send to OOC synthesis")
# ----------------------------------------------------------------------
def _random_caps(rng: np.random.Generator) -> frozenset:
    caps: set = set()
    n_int = int(rng.integers(0, len(_INT_ALU_OPS) + 1))
    for op in rng.choice(len(_INT_ALU_OPS), size=n_int, replace=False):
        caps.add(FuCap(_INT_ALU_OPS[int(op)], False, int(rng.choice([8, 16, 32, 64]))))
    if rng.random() < 0.4:
        caps.add(FuCap(Op.MUL, False, int(rng.choice([8, 16, 32, 64]))))
    if rng.random() < 0.15:
        caps.add(FuCap(Op.DIV, False, int(rng.choice([16, 32, 64]))))
    n_fp_add = int(rng.integers(0, len(_FP_ADD_OPS) + 1))
    for op in rng.choice(len(_FP_ADD_OPS), size=n_fp_add, replace=False):
        caps.add(FuCap(_FP_ADD_OPS[int(op)], True, int(rng.choice([32, 64]))))
    if rng.random() < 0.35:
        caps.add(FuCap(Op.MUL, True, int(rng.choice([32, 64]))))
    if rng.random() < 0.12:
        caps.add(FuCap(Op.DIV, True, int(rng.choice([32, 64]))))
    if rng.random() < 0.08:
        caps.add(FuCap(Op.SQRT, True, int(rng.choice([32, 64]))))
    if not caps:
        caps.add(FuCap(Op.ADD, False, 64))
    return frozenset(caps)


def _noisy(res: Resources, rng: np.random.Generator) -> np.ndarray:
    factor = OOC_PESSIMISM * rng.lognormal(0.0, SYNTHESIS_NOISE)
    return np.array(
        [res.lut * factor, res.ff * factor, res.bram, res.dsp],
        dtype=np.float64,
    )


def generate_pe_dataset(
    count: int = TABLE1_COUNTS["pe"], seed: int = 1
) -> ComponentDataset:
    rng = np.random.default_rng(seed)
    feats = np.empty((count, len(PE_FEATURES)))
    labels = np.empty((count, 4))
    for i in range(count):
        pe = ProcessingElement(
            node_id=0,
            caps=_random_caps(rng),
            width_bits=int(rng.choice([64, 128, 256, 512])),
            max_delay_fifo=int(rng.choice([2, 4, 8, 16])),
        )
        feats[i] = pe_features(pe)
        labels[i] = _noisy(pe_resources(pe), rng)
    return ComponentDataset("pe", PE_FEATURES, feats, labels)


def generate_switch_dataset(
    count: int = TABLE1_COUNTS["switch"], seed: int = 2
) -> ComponentDataset:
    rng = np.random.default_rng(seed)
    feats = np.empty((count, len(SWITCH_FEATURES)))
    labels = np.empty((count, 4))
    for i in range(count):
        sw = Switch(node_id=0, width_bits=int(rng.choice([64, 128, 256, 512])))
        in_deg = int(rng.integers(1, 9))
        out_deg = int(rng.integers(1, 9))
        feats[i] = switch_features(sw, in_deg, out_deg)
        labels[i] = _noisy(switch_resources(sw, in_deg, out_deg), rng)
    return ComponentDataset("switch", SWITCH_FEATURES, feats, labels)


def generate_in_port_dataset(
    count: int = TABLE1_COUNTS["in_port"], seed: int = 3
) -> ComponentDataset:
    rng = np.random.default_rng(seed)
    feats = np.empty((count, len(IN_PORT_FEATURES)))
    labels = np.empty((count, 4))
    for i in range(count):
        port = InputPortHW(
            node_id=0,
            width_bytes=int(rng.choice([1, 2, 4, 8, 16, 32, 64])),
            fifo_depth=int(rng.choice([2, 4, 8, 16])),
            supports_padding=bool(rng.random() < 0.5),
            supports_meta=bool(rng.random() < 0.5),
        )
        feeders = int(rng.integers(1, 7))
        feats[i] = in_port_features(port, feeders)
        labels[i] = _noisy(in_port_resources(port, feeders), rng)
    return ComponentDataset("in_port", IN_PORT_FEATURES, feats, labels)


def generate_out_port_dataset(
    count: int = TABLE1_COUNTS["out_port"], seed: int = 4
) -> ComponentDataset:
    rng = np.random.default_rng(seed)
    feats = np.empty((count, len(OUT_PORT_FEATURES)))
    labels = np.empty((count, 4))
    for i in range(count):
        port = OutputPortHW(
            node_id=0,
            width_bytes=int(rng.choice([1, 2, 4, 8, 16, 32, 64])),
            fifo_depth=int(rng.choice([2, 4, 8, 16])),
        )
        drains = int(rng.integers(1, 7))
        feats[i] = out_port_features(port, drains)
        labels[i] = _noisy(out_port_resources(port, drains), rng)
    return ComponentDataset("out_port", OUT_PORT_FEATURES, feats, labels)


GENERATORS: Dict[str, Callable[..., ComponentDataset]] = {
    "pe": generate_pe_dataset,
    "switch": generate_switch_dataset,
    "in_port": generate_in_port_dataset,
    "out_port": generate_out_port_dataset,
}


def generate_all(scale: float = 1.0, seed: int = 0) -> Dict[str, ComponentDataset]:
    """Generate every family's dataset; ``scale`` shrinks Table I counts
    (tests use small scales; the Table I bench uses 1.0)."""
    out = {}
    for family, gen in GENERATORS.items():
        count = max(64, int(TABLE1_COUNTS[family] * scale))
        # zlib.crc32 (not hash()) so the per-family seed offset survives
        # PYTHONHASHSEED randomization across processes.
        offset = zlib.crc32(family.encode()) % 97
        out[family] = gen(count=count, seed=seed + offset)
    return out
