"""Resource estimators used by the DSE.

Two interchangeable estimators:

* :class:`AnalyticEstimator` — the deterministic ground-truth model; fast
  and exact, used by default in tests and benches for reproducibility.
* :class:`MlEstimator` — the paper's flow: per-family MLPs trained on the
  synthetic OOC-synthesis dataset predict PE/switch/port costs, while
  components with few parameters (engines, core, L2, NoC) use exhaustive
  (analytic) tables, exactly as Section III-A describes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...adg import (
    ADG,
    AdgNode,
    InputPortHW,
    OutputPortHW,
    ProcessingElement,
    Switch,
    SysADG,
)
from .analytic import (
    CATEGORIES,
    _category,
    control_core_resources,
    dispatcher_resources,
    l2_resources,
    noc_resources,
    node_resources,
)
from .dataset import (
    generate_all,
    in_port_features,
    out_port_features,
    pe_features,
    switch_features,
)
from .device import Resources
from .mlp import MlpConfig, ResourceMlp


class AnalyticEstimator:
    """Deterministic estimator backed by the analytic cost model."""

    name = "analytic"

    def node(self, adg: ADG, node: AdgNode) -> Resources:
        return node_resources(adg, node)

    def tile(self, adg: ADG) -> Resources:
        total = Resources()
        for node in adg.nodes():
            total = total + self.node(adg, node)
        return total + dispatcher_resources(
            len(adg.engines), len(adg.in_ports) + len(adg.out_ports)
        )

    def tile_breakdown(self, adg: ADG) -> Dict[str, Resources]:
        breakdown = {cat: Resources() for cat in CATEGORIES}
        for node in adg.nodes():
            cat = _category(node)
            breakdown[cat] = breakdown[cat] + self.node(adg, node)
        breakdown["dma"] = breakdown["dma"] + dispatcher_resources(
            len(adg.engines), len(adg.in_ports) + len(adg.out_ports)
        )
        return breakdown

    def system(self, sysadg: SysADG) -> Resources:
        p = sysadg.params
        total = self.tile(sysadg.adg) * p.num_tiles
        total = total + control_core_resources() * p.num_tiles
        total = total + noc_resources(p.num_tiles, p.noc_bytes_per_cycle)
        total = total + l2_resources(p.l2_kib, p.l2_banks)
        return total

    def system_breakdown(self, sysadg: SysADG) -> Dict[str, Resources]:
        p = sysadg.params
        breakdown = {
            cat: res * p.num_tiles
            for cat, res in self.tile_breakdown(sysadg.adg).items()
        }
        breakdown["core"] = control_core_resources() * p.num_tiles
        breakdown["noc"] = noc_resources(
            p.num_tiles, p.noc_bytes_per_cycle
        ) + l2_resources(p.l2_kib, p.l2_banks)
        return breakdown


class MlEstimator(AnalyticEstimator):
    """ML-backed estimator for high-dimensional components.

    PE/switch/port costs come from per-family MLPs (trained once at
    construction); other components fall through to the analytic tables.
    Predictions are batched per-tile for speed.
    """

    name = "ml"

    def __init__(
        self,
        dataset_scale: float = 0.02,
        config: Optional[MlpConfig] = None,
        seed: int = 0,
    ):
        datasets = generate_all(scale=dataset_scale, seed=seed)
        self.models: Dict[str, ResourceMlp] = {}
        self.training_error: Dict[str, dict] = {}
        for family, data in datasets.items():
            train, test, _val = data.split()
            mlp = ResourceMlp(data.features.shape[1], config)
            mlp.fit(train)
            self.models[family] = mlp
            self.training_error[family] = mlp.evaluate(test)

    def node(self, adg: ADG, node: AdgNode) -> Resources:
        feats, family = self._featurize(adg, node)
        if family is None:
            return node_resources(adg, node)
        pred = self.models[family].predict(feats)[0]
        return Resources(
            lut=float(pred[0]),
            ff=float(pred[1]),
            bram=float(pred[2]),
            dsp=float(pred[3]),
        )

    def _featurize(self, adg: ADG, node: AdgNode):
        if isinstance(node, ProcessingElement):
            return pe_features(node), "pe"
        if isinstance(node, Switch):
            return (
                switch_features(
                    node,
                    len(adg.predecessors(node.node_id)),
                    len(adg.successors(node.node_id)),
                ),
                "switch",
            )
        if isinstance(node, InputPortHW):
            feeders = sum(
                1
                for p in adg.predecessors(node.node_id)
                if adg.node(p).kind.value not in ("pe", "sw", "ip", "op")
            )
            return in_port_features(node, max(1, feeders)), "in_port"
        if isinstance(node, OutputPortHW):
            drains = sum(
                1
                for p in adg.successors(node.node_id)
                if adg.node(p).kind.value not in ("pe", "sw", "ip", "op")
            )
            return out_port_features(node, max(1, drains)), "out_port"
        return None, None
