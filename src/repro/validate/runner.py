"""Fuzz and validation drivers behind ``repro fuzz`` / ``repro validate``.

:func:`fuzz_run` draws ``budget`` cases from a seed, pushes each through
the differential oracle and the invariant checkers, shrinks every failure
to a minimal repro, records it in the divergence corpus, and aggregates
:class:`FuzzStats` (max/mean relative error and pass rate per bottleneck
class).  All randomness derives from the seed; the rendered report
contains no wall-clock values, so identical seeds reproduce identical
output byte for byte.

:func:`validate_run` is the regression side: structural invariants over
the built-in workload suite mapped on the shared overlay, plus a replay
of every corpus entry (reporting which minimal repros still reproduce).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..engine.metrics import MetricsLogger
from ..profile.tracer import span
from .corpus import DivergenceCorpus
from .generators import FuzzCase, GeneratorError, random_case
from .invariants import Violation, check_case
from .oracle import OracleResult, ToleranceBands, run_oracle
from .shrinker import shrink

#: Outcomes that contribute a row to the per-class accuracy table.
_CLASSED_OUTCOMES = ("ok", "divergence", "nonfinite")


#: Aggregated per-bottleneck-class accuracy.
@dataclass
class ClassStats:
    cases: int = 0
    passed: int = 0
    nonfinite: int = 0
    max_rel_error: float = 0.0
    _rel_error_sum: float = 0.0

    def record(self, rel_error: float, passed: bool) -> None:
        self.cases += 1
        if not math.isfinite(rel_error):
            # An infinite/NaN relative error carries no accuracy signal;
            # folding it into the sum/max would poison the aggregates
            # (and round(inf) later emits non-strict JSON).
            self.nonfinite += 1
            return
        self.passed += int(passed)
        self.max_rel_error = max(self.max_rel_error, rel_error)
        self._rel_error_sum += rel_error

    @property
    def mean_rel_error(self) -> float:
        finite = self.cases - self.nonfinite
        return self._rel_error_sum / finite if finite else 0.0

    @property
    def pass_rate(self) -> float:
        return self.passed / self.cases if self.cases else 1.0


@dataclass
class Failure:
    """One failing case, after shrinking."""

    failure_key: str
    case: FuzzCase
    corpus_key: str = ""
    was_new: bool = False
    shrink_steps: int = 0
    violations: List[str] = field(default_factory=list)
    summary: Dict = field(default_factory=dict)


@dataclass(frozen=True)
class CaseRecord:
    """One case's verdict, keyed by its global case index.

    A sharded campaign replays these records in index order to rebuild
    the exact aggregate a serial run would have produced — including the
    float accumulation order, so merged reports are byte-identical
    regardless of how the seed range was split.
    """

    index: int
    outcome: str
    klass: str
    rel_error: float
    violations: int


@dataclass
class FuzzStats:
    """Everything one fuzz run learned."""

    budget: int
    seed: int
    start: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    by_class: Dict[str, ClassStats] = field(default_factory=dict)
    invariant_violations: int = 0
    failures: List[Failure] = field(default_factory=list)
    keep_records: bool = False
    records: List[CaseRecord] = field(default_factory=list)

    def count(self, outcome: str) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1

    def observe(
        self,
        index: int,
        outcome: str,
        klass: str,
        rel_error: float,
        violations: int,
    ) -> None:
        """Fold one case verdict into the aggregates (the single code
        path shared by the live fuzz loop and the soak shard merge)."""
        self.count(outcome)
        self.invariant_violations += violations
        if outcome in _CLASSED_OUTCOMES:
            self.by_class.setdefault(klass, ClassStats()).record(
                rel_error, outcome == "ok"
            )
        if self.keep_records:
            self.records.append(
                CaseRecord(
                    index=index,
                    outcome=outcome,
                    klass=klass,
                    rel_error=rel_error,
                    violations=violations,
                )
            )

    @property
    def compared(self) -> int:
        return self.outcomes.get("ok", 0) + self.outcomes.get("divergence", 0)

    def stats_doc(self) -> Dict:
        return {
            "budget": self.budget,
            "seed": self.seed,
            "start": self.start,
            "outcomes": dict(sorted(self.outcomes.items())),
            "invariant_violations": self.invariant_violations,
            "divergences": len(
                [f for f in self.failures if f.failure_key.startswith("divergence")]
            ),
            "by_class": {
                name: {
                    "cases": s.cases,
                    "pass_rate": round(s.pass_rate, 4),
                    "nonfinite": s.nonfinite,
                    "max_rel_error": round(s.max_rel_error, 4),
                    "mean_rel_error": round(s.mean_rel_error, 4),
                }
                for name, s in sorted(self.by_class.items())
            },
        }

    def render(self) -> str:
        """Human-readable, timestamp-free report."""
        lines = [
            f"fuzz: {self.budget} cases, seed {self.seed}",
            "outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.outcomes.items())),
            f"invariant violations: {self.invariant_violations}",
        ]
        if self.by_class:
            lines.append(
                f"{'class':10s} {'cases':>5s} {'pass':>6s} "
                f"{'max err':>8s} {'mean err':>8s}"
            )
            for name, s in sorted(self.by_class.items()):
                lines.append(
                    f"{name:10s} {s.cases:5d} {s.pass_rate:6.0%} "
                    f"{s.max_rel_error:8.3f} {s.mean_rel_error:8.3f}"
                )
        for fail in self.failures:
            new = "new" if fail.was_new else "known"
            lines.append(
                f"  {fail.failure_key}: corpus {fail.corpus_key[:16]} ({new}, "
                f"{fail.shrink_steps} shrink steps)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Failure-key computation (shared by fuzz and shrinking)
# ----------------------------------------------------------------------
def _evaluate(
    case: FuzzCase, bands: ToleranceBands
) -> "tuple[OracleResult, List[Violation]]":
    result = run_oracle(case, bands)
    violations = (
        check_case(result.adg, result.schedule)
        if result.adg is not None
        else []
    )
    return result, violations


def failure_key_of(
    result: OracleResult, violations: List[Violation]
) -> Optional[str]:
    """Stable identifier of what went wrong (None = case passes)."""
    if violations:
        return f"invariant:{violations[0].invariant}"
    if result.outcome == "divergence":
        return f"divergence:{result.bottleneck_class}"
    if result.outcome == "nonfinite":
        return f"nonfinite:{result.bottleneck_class}"
    if result.outcome == "sim_error":
        return "sim_error"
    return None


def make_failure_key(bands: ToleranceBands):
    """A shrinker predicate closed over the tolerance bands."""

    def predicate(case: FuzzCase) -> Optional[str]:
        try:
            result, violations = _evaluate(case, bands)
        except Exception:
            return None                     # a crash is a different failure
        return failure_key_of(result, violations)

    return predicate


# ----------------------------------------------------------------------
# Fuzz driver
# ----------------------------------------------------------------------
def fuzz_run(
    budget: int,
    seed: int,
    corpus_dir: Optional[str] = None,
    bands: Optional[ToleranceBands] = None,
    metrics: Optional[MetricsLogger] = None,
    max_mutations: int = 6,
    shrink_budget: int = 120,
    start: int = 0,
    keep_records: bool = False,
) -> FuzzStats:
    """Generate/check/shrink/record ``budget`` cases from ``seed``.

    ``start`` offsets the global case index: case ``i`` always derives
    from the seed string ``"{seed}:{i}"``, so a sharded campaign running
    ``(start=0, budget=5)`` and ``(start=5, budget=5)`` draws exactly the
    cases a serial ``(start=0, budget=10)`` run would.  ``keep_records``
    additionally retains one :class:`CaseRecord` per case for the soak
    merge.
    """
    bands = bands or ToleranceBands()
    metrics = metrics or MetricsLogger()
    corpus = DivergenceCorpus(corpus_dir) if corpus_dir else None
    if corpus is not None:
        migrated = corpus.migrate()
        if migrated:
            metrics.emit("corpus_migrated", dropped=migrated)
    stats = FuzzStats(
        budget=budget, seed=seed, start=start, keep_records=keep_records
    )
    metrics.emit(
        "fuzz_start", budget=budget, seed=seed, start=start,
        bands=bands.to_dict(),
    )
    predicate = make_failure_key(bands)

    for i in range(start, start + budget):
        try:
            case = random_case(f"{seed}:{i}", max_mutations=max_mutations)
        except GeneratorError:
            stats.observe(i, "generator_exhausted", "", 0.0, 0)
            continue
        result, violations = _evaluate(case, bands)
        stats.observe(
            i,
            result.outcome,
            result.bottleneck_class,
            result.rel_error,
            len(violations),
        )

        key = failure_key_of(result, violations)
        if key is None:
            continue
        with span("fuzz.shrink", failure_key=key):
            shrunk = shrink(case, predicate, max_evaluations=shrink_budget)
        failure = Failure(
            failure_key=key,
            case=shrunk.case,
            shrink_steps=shrunk.steps,
            violations=[str(v) for v in violations],
            summary=result.stats_doc(),
        )
        if corpus is not None:
            failure.corpus_key, failure.was_new = corpus.add(
                shrunk.case, key, summary=result.stats_doc()
            )
        stats.failures.append(failure)
        metrics.emit(
            "fuzz_failure",
            case_index=i,
            failure_key=key,
            corpus_key=failure.corpus_key,
            shrink_steps=shrunk.steps,
        )

    metrics.emit("fuzz_done", **stats.stats_doc())
    return stats


# ----------------------------------------------------------------------
# Validation driver (invariants + corpus replay)
# ----------------------------------------------------------------------
@dataclass
class ValidateReport:
    workloads_checked: int = 0
    schedules_checked: int = 0
    invariant_violations: List[str] = field(default_factory=list)
    corpus_total: int = 0
    corpus_reproduced: int = 0
    corpus_stale: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.invariant_violations

    def render(self) -> str:
        lines = [
            f"validate: {self.workloads_checked} workloads, "
            f"{self.schedules_checked} schedules checked",
            f"invariant violations: {len(self.invariant_violations)}",
        ]
        lines += [f"  {v}" for v in self.invariant_violations[:20]]
        if self.corpus_total:
            lines.append(
                f"corpus replay: {self.corpus_reproduced}/{self.corpus_total} "
                f"minimal repros still reproduce"
            )
            lines += [f"  stale: {k[:16]}" for k in self.corpus_stale]
        else:
            lines.append("corpus replay: no corpus entries")
        return "\n".join(lines)


def validate_run(
    corpus_dir: Optional[str] = None,
    bands: Optional[ToleranceBands] = None,
) -> ValidateReport:
    """Structural invariants on the built-in suite + corpus replay."""
    from ..adg import general_overlay
    from ..compiler import generate_variants
    from ..scheduler import schedule_workload
    from ..workloads import all_workloads

    bands = bands or ToleranceBands()
    report = ValidateReport()
    overlay = general_overlay()
    report.invariant_violations += [
        str(v)
        for v in check_case(overlay.adg)
    ]
    for workload in all_workloads():
        report.workloads_checked += 1
        schedule = schedule_workload(
            generate_variants(workload), overlay.adg, overlay.params
        )
        if schedule is None:
            continue
        report.schedules_checked += 1
        from .invariants import check_schedule

        report.invariant_violations += [
            f"{workload.name}: {v}"
            for v in check_schedule(schedule, overlay.adg)
        ]

    if corpus_dir:
        corpus = DivergenceCorpus(corpus_dir)
        predicate = make_failure_key(bands)
        for key, case, meta in corpus.entries():
            report.corpus_total += 1
            expected = meta.get("failure_key")
            actual = predicate(case)
            if actual is not None and (expected is None or actual == expected):
                report.corpus_reproduced += 1
            else:
                report.corpus_stale.append(key)
    return report
