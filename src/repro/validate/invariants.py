"""Invariant checker suite.

Each checker inspects one structural property the rest of the stack relies
on and returns a list of :class:`Violation` records (empty = clean):

* :func:`check_adg` — the architecture graph passes its own
  well-formedness validation.
* :func:`check_roundtrip` — serialize → deserialize → serialize is the
  identity on the document form (what the DSE cache and the divergence
  corpus both depend on).
* :func:`check_schedule` — placement/routing consistency: route endpoints
  sit on the placed hardware, every hop is a real link, interior hops are
  switches, links carry one value each, dedicated PEs and ports are
  exclusive.
* :func:`check_resources` — the analytic resource estimate is finite and
  non-negative in every column.

:func:`check_case` bundles them for one fuzz case; the fuzz runner and
``repro validate`` both call into it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..adg import ADG, AdgError, NodeKind, adg_from_dict, adg_to_dict
from ..model.resource import AnalyticEstimator
from ..scheduler.schedule import Schedule

#: Hardware kinds a schedule may claim exclusively (one DFG node each).
_EXCLUSIVE_KINDS = (NodeKind.PE,)


@dataclass(frozen=True)
class Violation:
    """One failed invariant."""

    invariant: str               # "adg" | "roundtrip" | "schedule" | "resources"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.invariant}] {self.detail}"


# ----------------------------------------------------------------------
# Individual checkers
# ----------------------------------------------------------------------
def check_adg(adg: ADG) -> List[Violation]:
    """The graph satisfies its own structural validation."""
    try:
        adg.validate()
    except AdgError as exc:
        return [Violation("adg", str(exc))]
    return []


def check_roundtrip(adg: ADG) -> List[Violation]:
    """serialize ∘ deserialize is the identity on the document form."""
    try:
        doc = adg_to_dict(adg)
        again = adg_to_dict(adg_from_dict(doc))
    except (AdgError, KeyError, TypeError, ValueError) as exc:
        return [Violation("roundtrip", f"serialization failed: {exc}")]
    if doc != again:
        return [Violation("roundtrip", "adg_to_dict(adg_from_dict(d)) != d")]
    return []


def check_schedule(schedule: Schedule, adg: ADG) -> List[Violation]:
    """Placement/routing consistency of a schedule against its ADG."""
    out: List[Violation] = []
    for dfg_id, hw in schedule.placement.items():
        if not adg.has_node(hw):
            out.append(
                Violation(
                    "schedule", f"dfg node {dfg_id} placed on missing hw {hw}"
                )
            )
    link_owner: Dict[Any, int] = {}
    for (src_dfg, dst_dfg, slot), path in schedule.routes.items():
        if not path:
            out.append(
                Violation("schedule", f"empty route for edge {src_dfg}->{dst_dfg}")
            )
            continue
        if schedule.placement.get(src_dfg) != path[0]:
            out.append(
                Violation(
                    "schedule",
                    f"route {src_dfg}->{dst_dfg}#{slot} starts at {path[0]}, "
                    f"src placed on {schedule.placement.get(src_dfg)}",
                )
            )
        if schedule.placement.get(dst_dfg) != path[-1]:
            out.append(
                Violation(
                    "schedule",
                    f"route {src_dfg}->{dst_dfg}#{slot} ends at {path[-1]}, "
                    f"dst placed on {schedule.placement.get(dst_dfg)}",
                )
            )
        for a, b in zip(path, path[1:]):
            if not adg.has_link(a, b):
                out.append(
                    Violation(
                        "schedule",
                        f"route {src_dfg}->{dst_dfg}#{slot} uses missing "
                        f"link {a}->{b}",
                    )
                )
        for hop in path[1:-1]:
            if not adg.has_node(hop) or adg.node(hop).kind is not NodeKind.SWITCH:
                out.append(
                    Violation(
                        "schedule",
                        f"route {src_dfg}->{dst_dfg}#{slot} interior hop "
                        f"{hop} is not a switch",
                    )
                )
        # One value per physical link (the same source value may fan out).
        for link in zip(path, path[1:]):
            owner = link_owner.setdefault(link, src_dfg)
            if owner != src_dfg:
                out.append(
                    Violation(
                        "schedule",
                        f"link {link[0]}->{link[1]} carries values from both "
                        f"dfg nodes {owner} and {src_dfg}",
                    )
                )
    # Dedicated hardware exclusivity.
    claimed: Dict[int, int] = {}
    for dfg_id, hw in schedule.placement.items():
        if not adg.has_node(hw):
            continue
        if adg.node(hw).kind in _EXCLUSIVE_KINDS:
            prev = claimed.setdefault(hw, dfg_id)
            if prev != dfg_id:
                out.append(
                    Violation(
                        "schedule",
                        f"PE {hw} claimed by dfg nodes {prev} and {dfg_id}",
                    )
                )
    return out


def check_resources(adg: ADG) -> List[Violation]:
    """The analytic per-tile resource estimate is finite and non-negative."""
    try:
        res = AnalyticEstimator().tile(adg)
    except Exception as exc:  # estimator crash is itself a violation
        return [Violation("resources", f"estimator raised: {exc}")]
    out: List[Violation] = []
    for column in ("lut", "ff", "bram", "dsp"):
        value = getattr(res, column)
        if not (value >= 0) or value != value or value == float("inf"):
            out.append(
                Violation("resources", f"{column} estimate is {value!r}")
            )
    return out


# ----------------------------------------------------------------------
# Bundled entry point
# ----------------------------------------------------------------------
def check_case(
    adg: ADG, schedule: Optional[Schedule] = None
) -> List[Violation]:
    """All structural invariants for one case.

    ``schedule`` may be None (unschedulable cases still get their ADG
    checked).
    """
    out = check_adg(adg)
    out += check_roundtrip(adg)
    out += check_resources(adg)
    if schedule is not None:
        out += check_schedule(schedule, adg)
    return out
