"""Property-based generators for differential validation.

Two generator families feed the fuzzer:

* :func:`random_program` draws a random-but-legal affine loop-nest program
  as a :class:`ProgramSpec` — a pure-data description that builds a real
  :class:`~repro.ir.Workload` on demand and round-trips through JSON, so
  failing cases can be persisted, shrunk, and replayed bit-identically.
* :func:`random_case` pairs a program with a mutated-but-well-formed ADG
  (reusing the DSE's own :mod:`repro.dse.transforms` mutation operators)
  plus random system parameters, producing a complete :class:`FuzzCase`.

All randomness flows through an explicit ``random.Random`` instance; the
same seed always yields the same case stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..adg import ADG, AdgError, SystemParams, adg_from_dict, adg_to_dict
from ..adg.builders import seed_for_workloads
from ..dse.transforms import TransformFailed, apply_random_transform
from ..ir import (
    Affine,
    BinOp,
    Const,
    Op,
    Select,
    Workload,
    WorkloadBuilder,
    WorkloadError,
    compare,
    dtype_from_name,
)

#: Datatypes the generator draws from (one float, two integer widths —
#: enough to cover the float/int capability split without exploding the
#: per-case search space).
GENERATOR_DTYPES = ("f64", "i64", "i16")

#: Scenario families the program generator draws from, mirroring the
#: workload suites: plain affine nests, predicated control-dominated
#: statements (fsm), deep mul-add chains (tdm), and data-dependent
#: trip counts (irregular).  Affine stays the most common draw.
PROGRAM_FAMILIES = ("affine", "fsm", "tdm", "irregular")

_FAMILY_DRAW = ("affine", "affine", "affine", "fsm", "tdm", "irregular")

#: Binary operators usable between expression terms.
TERM_OPS = ("add", "sub", "mul", "max", "min")

#: Operators legal as explicit reductions (``target op= expr``).
REDUCTION_OPS = ("add", "mul", "max")

_OP_BY_NAME = {
    "add": Op.ADD,
    "sub": Op.SUB,
    "mul": Op.MUL,
    "max": Op.MAX,
    "min": Op.MIN,
}


class GeneratorError(ValueError):
    """Raised when a spec cannot be rebuilt (corrupt corpus entry)."""


# ----------------------------------------------------------------------
# Program specs (pure data, JSON round-trippable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TermSpec:
    """One leaf of a statement expression: an array load or a constant."""

    kind: str                                    # "load" | "const"
    array: str = ""
    coeffs: Tuple[Tuple[str, int], ...] = ()
    const: int = 0
    value: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        if self.kind == "const":
            return {"kind": "const", "value": self.value}
        return {
            "kind": "load",
            "array": self.array,
            "coeffs": [list(c) for c in self.coeffs],
            "const": self.const,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "TermSpec":
        if doc["kind"] == "const":
            return TermSpec(kind="const", value=float(doc["value"]))
        return TermSpec(
            kind="load",
            array=doc["array"],
            coeffs=tuple((v, int(c)) for v, c in doc["coeffs"]),
            const=int(doc["const"]),
        )


@dataclass(frozen=True)
class StatementSpec:
    """One innermost-loop statement as a flat term/operator chain.

    ``reduction`` names an explicit ``target op= expr`` accumulation; when
    None the statement is a plain assignment.
    """

    target_array: str
    target_coeffs: Tuple[Tuple[str, int], ...]
    target_const: int
    terms: Tuple[TermSpec, ...]
    ops: Tuple[str, ...]                         # len(terms) - 1 entries
    reduction: Optional[str] = None
    #: fsm-family predication: when set, the statement's value is
    #: ``pred > 0 ? expr : 0`` (if-converted to ``CMP`` + ``SELECT``).
    predicate: Optional[TermSpec] = None

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "target_array": self.target_array,
            "target_coeffs": [list(c) for c in self.target_coeffs],
            "target_const": self.target_const,
            "terms": [t.to_dict() for t in self.terms],
            "ops": list(self.ops),
            "reduction": self.reduction,
        }
        # Emitted only when set, so pre-family corpus entries (and their
        # content-addressed fingerprints) are byte-identical.
        if self.predicate is not None:
            doc["predicate"] = self.predicate.to_dict()
        return doc

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "StatementSpec":
        predicate = doc.get("predicate")
        return StatementSpec(
            target_array=doc["target_array"],
            target_coeffs=tuple((v, int(c)) for v, c in doc["target_coeffs"]),
            target_const=int(doc["target_const"]),
            terms=tuple(TermSpec.from_dict(t) for t in doc["terms"]),
            ops=tuple(doc["ops"]),
            reduction=doc.get("reduction"),
            predicate=(
                TermSpec.from_dict(predicate) if predicate is not None else None
            ),
        )


@dataclass(frozen=True)
class ProgramSpec:
    """A serializable affine loop-nest program.

    Arrays are *not* stored with explicit sizes: sizes are derived from the
    maximum index each array can be touched at (coefficients are
    non-negative by construction), so shrinking a trip count automatically
    shrinks the footprint and the spec can never describe an out-of-bounds
    access.
    """

    name: str
    dtype: str
    loops: Tuple[Tuple[str, int], ...]           # (var, trip), outer first
    statement: StatementSpec
    #: irregular-family loops whose trip count is data-dependent at
    #: runtime (the model/sim use the halved effective trip).
    variable_trips: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def loop_vars(self) -> Tuple[str, ...]:
        return tuple(v for v, _ in self.loops)

    def _all_terms(self) -> Tuple[TermSpec, ...]:
        terms = self.statement.terms
        if self.statement.predicate is not None:
            terms = terms + (self.statement.predicate,)
        return terms

    def array_names(self) -> Tuple[str, ...]:
        """Referenced arrays, target first, deterministic order."""
        names: List[str] = [self.statement.target_array]
        for term in self._all_terms():
            if term.kind == "load" and term.array not in names:
                names.append(term.array)
        return tuple(names)

    def _max_index(self, coeffs, const) -> int:
        trips = dict(self.loops)
        return const + sum(
            max(0, c) * (trips.get(v, 1) - 1) for v, c in coeffs
        )

    def array_size(self, name: str) -> int:
        """Smallest size covering every access of ``name`` (min 1)."""
        top = 0
        stmt = self.statement
        if stmt.target_array == name:
            top = max(top, self._max_index(stmt.target_coeffs, stmt.target_const))
        for term in self._all_terms():
            if term.kind == "load" and term.array == name:
                top = max(top, self._max_index(term.coeffs, term.const))
        return top + 1

    # ------------------------------------------------------------------
    def build(self) -> Workload:
        """Materialize the spec as a validated :class:`Workload`."""
        try:
            dtype = dtype_from_name(self.dtype)
        except KeyError as exc:
            raise GeneratorError(f"unknown dtype {self.dtype!r}") from exc
        wb = WorkloadBuilder(self.name, suite="fuzz", dtype=dtype)
        declared = {}
        for name in self.array_names():
            declared[name] = wb.array(name, self.array_size(name))
        for var, trip in self.loops:
            if var in self.variable_trips:
                # Data-dependent trip counts serialize the loop (the
                # stream length is only known at runtime), matching how
                # every hand-written irregular workload declares them.
                wb.loop(var, trip, variable_trip=True, parallel=False)
            else:
                wb.loop(var, trip)
        stmt = self.statement
        expr = self._term_expr(declared, stmt.terms[0])
        for op_name, term in zip(stmt.ops, stmt.terms[1:]):
            op = _OP_BY_NAME.get(op_name)
            if op is None:
                raise GeneratorError(f"unknown operator {op_name!r}")
            expr = BinOp(op, expr, self._term_expr(declared, term))
        if stmt.predicate is not None:
            pred = self._term_expr(declared, stmt.predicate)
            expr = Select(compare(pred, Const(0.0)), expr, Const(0.0))
        target = declared[stmt.target_array][
            Affine.of(dict(stmt.target_coeffs), stmt.target_const)
        ]
        try:
            if stmt.reduction is not None:
                op = _OP_BY_NAME.get(stmt.reduction)
                if op is None:
                    raise GeneratorError(
                        f"unknown reduction {stmt.reduction!r}"
                    )
                wb.accumulate(target, expr, op=op)
            else:
                wb.assign(target, expr)
            return wb.build()
        except WorkloadError as exc:
            raise GeneratorError(str(exc)) from exc

    def _term_expr(self, declared, term: TermSpec):
        if term.kind == "const":
            return Const(term.value)
        if term.array not in declared:
            raise GeneratorError(f"term references unknown array {term.array}")
        return declared[term.array][
            Affine.of(dict(term.coeffs), term.const)
        ]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "name": self.name,
            "dtype": self.dtype,
            "loops": [list(l) for l in self.loops],
            "statement": self.statement.to_dict(),
        }
        # Emitted only when set (see StatementSpec.to_dict).
        if self.variable_trips:
            doc["variable_trips"] = list(self.variable_trips)
        return doc

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "ProgramSpec":
        return ProgramSpec(
            name=doc["name"],
            dtype=doc["dtype"],
            loops=tuple((v, int(t)) for v, t in doc["loops"]),
            statement=StatementSpec.from_dict(doc["statement"]),
            variable_trips=tuple(doc.get("variable_trips", ())),
        )


# ----------------------------------------------------------------------
# Complete fuzz cases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzCase:
    """One differential test point: a program, an ADG, system parameters."""

    program: ProgramSpec
    adg_doc: Dict[str, Any]
    params: Dict[str, Any] = field(default_factory=dict)
    origin: str = ""                             # seed string that made it

    def adg(self) -> ADG:
        return adg_from_dict(self.adg_doc)

    def system_params(self) -> SystemParams:
        return SystemParams(**self.params) if self.params else SystemParams()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program.to_dict(),
            "adg": self.adg_doc,
            "params": dict(self.params),
            "origin": self.origin,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "FuzzCase":
        return FuzzCase(
            program=ProgramSpec.from_dict(doc["program"]),
            adg_doc=doc["adg"],
            params=dict(doc.get("params", {})),
            origin=doc.get("origin", ""),
        )


def case_size(case: FuzzCase) -> int:
    """Rough complexity measure of a case.

    The shrinker only accepts reductions that lower it, and the corpus /
    soak merge use it to pick the most minimal repro among several that
    hit the same failure key — so "smaller" means the same thing
    everywhere a repro competes with another.
    """
    program = case.program
    return (
        len(program.loops) * 64
        + sum(t for _, t in program.loops)
        + len(program.statement.terms) * 16
        + (16 if program.statement.reduction else 0)
        + (16 if program.statement.predicate else 0)
        + len(program.variable_trips) * 8
        + len(case.adg_doc.get("nodes", ())) * 4
        + (8 if case.params else 0)
    )


# ----------------------------------------------------------------------
# Random draws
# ----------------------------------------------------------------------
def _random_index(
    rng: random.Random, loop_vars: Tuple[str, ...]
) -> Tuple[Tuple[Tuple[str, int], ...], int]:
    """A random non-negative affine index over a subset of loop vars.

    The innermost variable is always included with a small coefficient so
    accesses stream (rather than degenerate to per-region constants), and
    outer variables get row-major-style strides.
    """
    coeffs: Dict[str, int] = {}
    inner = loop_vars[-1]
    coeffs[inner] = rng.choice((1, 1, 1, 2))
    stride = 1
    for var in reversed(loop_vars[:-1]):
        if rng.random() < 0.7:
            stride *= rng.choice((4, 8, 16))
            coeffs[var] = stride
    const = rng.choice((0, 0, 0, 1, 2))
    return tuple(sorted(coeffs.items())), const


def random_program(
    rng: random.Random,
    name: str = "fuzz",
    family: Optional[str] = None,
) -> ProgramSpec:
    """Draw one random-but-legal loop-nest program.

    ``family`` picks a scenario family (:data:`PROGRAM_FAMILIES`); by
    default one is drawn from the stream, with plain affine nests the
    most common.  Trip products are capped (≤ ~1k innermost iterations)
    so the cycle-level simulation of every generated case stays fast.
    """
    if family is None:
        family = rng.choice(_FAMILY_DRAW)
    if family not in PROGRAM_FAMILIES:
        raise GeneratorError(f"unknown program family {family!r}")
    dtype = rng.choice(GENERATOR_DTYPES)
    depth = rng.choice((1, 2, 2, 3))
    if family == "irregular" and depth == 1:
        depth = 2  # the variable-trip loop needs an outer accumulator loop
    trips = [rng.choice((4, 8, 16)) for _ in range(depth)]
    while _product(trips) > 1024:
        trips[0] = max(2, trips[0] // 2)
    loops = tuple((f"v{i}", trips[i]) for i in range(depth))
    loop_vars = tuple(v for v, _ in loops)
    variable_trips: Tuple[str, ...] = ()
    if family == "irregular":
        # The innermost trip is data-dependent, like every hand-written
        # irregular workload (crs, ragged-rows, hash-probe, ...).
        variable_trips = (loop_vars[-1],)

    if family == "tdm":
        n_terms = rng.choice((4, 5, 6))  # deep shared-MAC chains
    else:
        n_terms = rng.choice((1, 2, 2, 3))
    n_source_arrays = rng.choice((1, 2))
    sources = [f"a{i}" for i in range(n_source_arrays)]
    terms: List[TermSpec] = []
    for i in range(n_terms):
        if i > 0 and rng.random() < 0.2:
            terms.append(
                TermSpec(kind="const", value=float(rng.choice((2, 3, 5))))
            )
            continue
        coeffs, const = _random_index(rng, loop_vars)
        terms.append(
            TermSpec(
                kind="load",
                array=rng.choice(sources),
                coeffs=coeffs,
                const=const,
            )
        )
    if not any(t.kind == "load" for t in terms):
        coeffs, const = _random_index(rng, loop_vars)
        terms[0] = TermSpec(
            kind="load", array=sources[0], coeffs=coeffs, const=const
        )
    if family == "tdm":
        # Multiply-accumulate texture: alternating mul/add chains.
        ops = tuple(
            ("mul" if i % 2 == 0 else rng.choice(("add", "add", "sub")))
            for i in range(len(terms) - 1)
        )
    else:
        ops = tuple(rng.choice(TERM_OPS) for _ in range(len(terms) - 1))

    predicate: Optional[TermSpec] = None
    if family == "fsm":
        coeffs, const = _random_index(rng, loop_vars)
        predicate = TermSpec(
            kind="load",
            array=rng.choice(sources),
            coeffs=coeffs,
            const=const,
        )

    reduction: Optional[str] = None
    if family == "irregular" or (
        family != "fsm" and rng.random() < 0.3 and depth >= 2
    ):
        # Reduce over the innermost loop: target indexed by outer vars only,
        # row-major so each outer iteration owns a distinct accumulator.
        reduction = rng.choice(REDUCTION_OPS)
        stride = 1
        coeffs = {}
        for var in reversed(loop_vars[:-1]):
            coeffs[var] = stride
            stride *= dict(loops)[var]
        target_coeffs = tuple(sorted(coeffs.items()))
        target_const = 0
    else:
        # Plain assignment: row-major identity over all loops, so every
        # iteration writes a distinct element.
        stride = 1
        coeffs = {}
        for var in reversed(loop_vars):
            coeffs[var] = stride
            stride *= dict(loops)[var]
        target_coeffs = tuple(sorted(coeffs.items()))
        target_const = 0

    statement = StatementSpec(
        target_array="out",
        target_coeffs=target_coeffs,
        target_const=target_const,
        terms=tuple(terms),
        ops=ops,
        reduction=reduction,
        predicate=predicate,
    )
    return ProgramSpec(
        name=name,
        dtype=dtype,
        loops=loops,
        statement=statement,
        variable_trips=variable_trips,
    )


def _product(values) -> int:
    out = 1
    for v in values:
        out *= v
    return out


def random_params(rng: random.Random) -> Dict[str, Any]:
    """Random-but-legal system parameters (JSON form)."""
    return {
        "num_tiles": rng.choice((1, 2, 4)),
        "l2_banks": rng.choice((2, 4, 8)),
        "noc_bytes_per_cycle": rng.choice((16, 32)),
    }


def random_adg_doc(
    rng: random.Random,
    workload: Workload,
    max_mutations: int = 6,
) -> Dict[str, Any]:
    """A serialized ADG: a workload-sized seed plus random DSE mutations.

    The seed is guaranteed to schedule the workload's least aggressive
    variant; mutations may (legitimately) break schedulability — the
    oracle records those cases as unschedulable rather than divergent.
    Mutated graphs failing :meth:`ADG.validate` are an invariant
    violation the caller will flag.
    """
    adg = seed_for_workloads([workload], width_bits=rng.choice((128, 256, 512)))
    for _ in range(rng.randint(0, max_mutations)):
        try:
            apply_random_transform(adg, rng)
        except (TransformFailed, AdgError):
            continue
    return adg_to_dict(adg)


def random_case(
    seed: str,
    max_mutations: int = 6,
    name: str = "fuzz",
    family: Optional[str] = None,
) -> FuzzCase:
    """Draw one complete fuzz case from a string seed (fully deterministic).

    Programs that happen not to lower (e.g. a term chain the lowerer cannot
    slice) are redrawn from the same stream, so every returned case is at
    least compilable.  ``family`` pins the program's scenario family; by
    default each redraw picks its own.
    """
    from ..compiler import LoweringError, generate_variants

    rng = random.Random(seed)
    for _ in range(16):
        program = random_program(rng, name=name, family=family)
        try:
            workload = program.build()
            generate_variants(workload)
        except (GeneratorError, LoweringError):
            continue
        adg_doc = random_adg_doc(rng, workload, max_mutations=max_mutations)
        return FuzzCase(
            program=program,
            adg_doc=adg_doc,
            params=random_params(rng),
            origin=seed,
        )
    raise GeneratorError(f"seed {seed!r}: no lowerable program in 16 draws")
