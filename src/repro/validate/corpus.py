"""The divergence corpus: minimal repros persisted through engine.store.

Every shrunk failing case is stored as a plain-JSON document under its
content fingerprint, so:

* the same divergence found twice (or by two seeds) occupies one entry,
* ``repro validate`` replays the corpus deterministically, and
* corpus files are diffable artifacts a human can read.

Entries carry the failure key and oracle summary in the artifact metadata
sidecar — deliberately without timestamps, so back-to-back runs with the
same seed produce byte-identical stores.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..engine.hashing import fingerprint
from ..engine.store import ArtifactStore
from .generators import FuzzCase

#: Storage schema version for corpus entries.
CORPUS_VERSION = 1


def case_key(case: FuzzCase) -> str:
    """Content fingerprint of a case (origin excluded: two seeds finding
    the same minimal repro should deduplicate)."""
    doc = case.to_dict()
    doc.pop("origin", None)
    return fingerprint({"corpus_version": CORPUS_VERSION, "case": doc})


class DivergenceCorpus:
    """A directory of minimal failing cases, content-addressed."""

    def __init__(self, root) -> None:
        self.store = ArtifactStore(root)

    # ------------------------------------------------------------------
    def add(
        self,
        case: FuzzCase,
        failure_key: str,
        summary: Optional[Dict] = None,
    ) -> Tuple[str, bool]:
        """Record a minimal repro; returns (key, was_new)."""
        key = case_key(case)
        if key in self.store:
            return key, False
        self.store.put(
            key,
            {"corpus_version": CORPUS_VERSION, "case": case.to_dict()},
            meta={
                "kind": "divergence-case",
                "failure_key": failure_key,
                "summary": dict(summary or {}),
            },
        )
        return key, True

    def __len__(self) -> int:
        return sum(1 for _ in self.store.keys())

    def __contains__(self, key: str) -> bool:
        return key in self.store

    def entries(self) -> Iterator[Tuple[str, FuzzCase, Dict]]:
        """(key, case, meta) for every stored repro, key-sorted."""
        for key in sorted(self.store.keys()):
            doc = self.store.get(key)
            if not isinstance(doc, dict) or "case" not in doc:
                continue
            meta = self.store.meta(key) or {}
            yield key, FuzzCase.from_dict(doc["case"]), meta

    def failure_keys(self) -> List[str]:
        return [
            (meta.get("failure_key") or "?") for _, _, meta in self.entries()
        ]
