"""The divergence corpus: minimal repros persisted through engine.store.

Every shrunk failing case is stored as a plain-JSON document under its
content fingerprint, so:

* the same divergence found twice (or by two seeds) occupies one entry,
* one *failure signature* keeps one minimal repro: a model bug hit by a
  hundred generated cases stores the smallest witness instead of a
  hundred near-duplicates (:meth:`DivergenceCorpus.add` dedupes by
  ``failure_key``, replacing the stored case only when a strictly
  smaller one arrives),
* ``repro validate`` replays the corpus deterministically, and
* corpus files are diffable artifacts a human can read.

Entries carry the failure key and oracle summary in the artifact metadata
sidecar — deliberately without timestamps, so back-to-back runs with the
same seed produce byte-identical stores.  Corpora written before the
failure-key dedup existed can hold several entries per signature;
:meth:`DivergenceCorpus.migrate` collapses them to the smallest witness.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..engine.hashing import fingerprint
from ..engine.store import ArtifactStore
from .generators import FuzzCase, case_size

#: Storage schema version for corpus entries.
CORPUS_VERSION = 1


def case_key(case: FuzzCase) -> str:
    """Content fingerprint of a case (origin excluded: two seeds finding
    the same minimal repro should deduplicate)."""
    doc = case.to_dict()
    doc.pop("origin", None)
    return fingerprint({"corpus_version": CORPUS_VERSION, "case": doc})


class DivergenceCorpus:
    """A directory of minimal failing cases, content-addressed."""

    def __init__(self, root) -> None:
        self.store = ArtifactStore(root)

    # ------------------------------------------------------------------
    def add(
        self,
        case: FuzzCase,
        failure_key: str,
        summary: Optional[Dict] = None,
    ) -> Tuple[str, bool]:
        """Record a minimal repro; returns (key, was_new).

        One entry per failure signature: when ``failure_key`` is already
        represented, the incoming case only displaces the stored one if
        it is strictly smaller (by :func:`case_size`); otherwise the
        existing entry's key is returned with ``was_new=False``.
        """
        key = case_key(case)
        if key in self.store:
            return key, False
        matching = self._entries_for(failure_key)
        if matching:
            smallest_key, smallest_case = min(
                matching, key=lambda kv: (case_size(kv[1]), kv[0])
            )
            if case_size(case) >= case_size(smallest_case):
                return smallest_key, False
            for old_key, _ in matching:
                self.store.discard(old_key)
        self.store.put(
            key,
            {"corpus_version": CORPUS_VERSION, "case": case.to_dict()},
            meta={
                "kind": "divergence-case",
                "failure_key": failure_key,
                "summary": dict(summary or {}),
            },
        )
        return key, True

    def migrate(self) -> int:
        """Collapse a pre-dedup corpus to one minimal repro per failure
        key; returns how many redundant entries were dropped."""
        best: Dict[str, Tuple[str, FuzzCase]] = {}
        for key, case, meta in self.entries():
            failure_key = meta.get("failure_key") or "?"
            incumbent = best.get(failure_key)
            if incumbent is None or (case_size(case), key) < (
                case_size(incumbent[1]),
                incumbent[0],
            ):
                best[failure_key] = (key, case)
        keep = {key for key, _ in best.values()}
        dropped = 0
        for key, _, _ in list(self.entries()):
            if key not in keep:
                self.store.discard(key)
                dropped += 1
        return dropped

    def _entries_for(self, failure_key: str) -> List[Tuple[str, FuzzCase]]:
        return [
            (key, case)
            for key, case, meta in self.entries()
            if meta.get("failure_key") == failure_key
        ]

    def __len__(self) -> int:
        return sum(1 for _ in self.store.keys())

    def __contains__(self, key: str) -> bool:
        return key in self.store

    def entries(self) -> Iterator[Tuple[str, FuzzCase, Dict]]:
        """(key, case, meta) for every stored repro, key-sorted."""
        for key in sorted(self.store.keys()):
            doc = self.store.get(key)
            if not isinstance(doc, dict) or "case" not in doc:
                continue
            meta = self.store.meta(key) or {}
            yield key, FuzzCase.from_dict(doc["case"]), meta

    def failure_keys(self) -> List[str]:
        return [
            (meta.get("failure_key") or "?") for _, _, meta in self.entries()
        ]
