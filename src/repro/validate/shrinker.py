"""Failing-case minimization (greedy delta debugging).

Given a failing :class:`~repro.validate.generators.FuzzCase` and a
*failure key* function (e.g. "the oracle still reports ``divergence``" or
"invariant ``adg`` still fires"), the shrinker applies a fixed menu of
reductions and keeps any that preserve the failure key:

* drop a whole loop level (the dropped induction variable is pinned to 0),
* halve a trip count,
* drop expression terms (and the reduction marker),
* drop the statement predicate / variable-trip markers (family features),
* prune ADG nodes one at a time,
* reset system parameters to their defaults.

Reductions repeat to a fixpoint under a hard evaluation budget, so
shrinking always terminates even on flaky predicates.  The result is a
minimal repro that still round-trips through JSON — exactly what the
divergence corpus stores.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional

from ..adg import adg_to_dict
from .generators import FuzzCase, ProgramSpec, case_size

#: Returns a stable failure identifier, or None when the case passes.
FailureKey = Callable[[FuzzCase], Optional[str]]


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    case: FuzzCase               # the minimal repro
    key: str                     # the preserved failure key
    steps: int                   # accepted reductions
    evaluations: int             # predicate calls spent


# ----------------------------------------------------------------------
# Program reductions (each yields candidate smaller specs)
# ----------------------------------------------------------------------
def _without_var(coeffs, var: str):
    return tuple((v, c) for v, c in coeffs if v != var)


def _drop_loops(program: ProgramSpec) -> Iterator[ProgramSpec]:
    if len(program.loops) <= 1:
        return
    for i in range(len(program.loops)):
        var = program.loops[i][0]
        loops = program.loops[:i] + program.loops[i + 1:]
        stmt = program.statement
        new_stmt = replace(
            stmt,
            target_coeffs=_without_var(stmt.target_coeffs, var),
            terms=tuple(
                t if t.kind == "const"
                else replace(t, coeffs=_without_var(t.coeffs, var))
                for t in stmt.terms
            ),
            predicate=(
                None
                if stmt.predicate is None or stmt.predicate.kind == "const"
                else replace(
                    stmt.predicate,
                    coeffs=_without_var(stmt.predicate.coeffs, var),
                )
            ),
            # A reduction over a now-single-level nest may be illegal;
            # keep it only while more than one loop remains.
            reduction=stmt.reduction if len(loops) > 1 else None,
        )
        yield replace(
            program,
            loops=loops,
            statement=new_stmt,
            variable_trips=tuple(
                v for v in program.variable_trips if v != var
            ),
        )


def _halve_trips(program: ProgramSpec) -> Iterator[ProgramSpec]:
    for i, (var, trip) in enumerate(program.loops):
        if trip <= 2:
            continue
        loops = (
            program.loops[:i]
            + ((var, max(2, trip // 2)),)
            + program.loops[i + 1:]
        )
        yield replace(program, loops=loops)


def _drop_terms(program: ProgramSpec) -> Iterator[ProgramSpec]:
    stmt = program.statement
    if len(stmt.terms) <= 1:
        if stmt.reduction is not None:
            yield replace(program, statement=replace(stmt, reduction=None))
        return
    for i in range(len(stmt.terms)):
        terms = stmt.terms[:i] + stmt.terms[i + 1:]
        if not any(t.kind == "load" for t in terms):
            continue
        # Removing term i also removes the operator joining it leftward
        # (term 0 loses the operator to its right instead).
        ops = stmt.ops[1:] if i == 0 else stmt.ops[: i - 1] + stmt.ops[i:]
        yield replace(program, statement=replace(stmt, terms=terms, ops=ops))


def _drop_family_features(program: ProgramSpec) -> Iterator[ProgramSpec]:
    """Strip fsm/irregular family markers: predication, variable trips."""
    if program.statement.predicate is not None:
        yield replace(
            program, statement=replace(program.statement, predicate=None)
        )
    if program.variable_trips:
        yield replace(program, variable_trips=())


_PROGRAM_REDUCTIONS = (
    _drop_family_features,
    _drop_loops,
    _halve_trips,
    _drop_terms,
)


# ----------------------------------------------------------------------
# Case-level reductions
# ----------------------------------------------------------------------
def _program_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    for reduce_fn in _PROGRAM_REDUCTIONS:
        for program in reduce_fn(case.program):
            yield FuzzCase(
                program=program,
                adg_doc=case.adg_doc,
                params=case.params,
                origin=case.origin,
            )


def _adg_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    try:
        base = case.adg()
    except Exception:
        return
    for node_id in sorted(base.node_ids()):
        adg = base.clone()
        try:
            adg.remove_node(node_id)
            doc = adg_to_dict(adg)
        except Exception:
            continue
        yield FuzzCase(
            program=case.program,
            adg_doc=doc,
            params=case.params,
            origin=case.origin,
        )


def _param_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    if case.params:
        yield FuzzCase(
            program=case.program,
            adg_doc=case.adg_doc,
            params={},
            origin=case.origin,
        )


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    yield from _program_candidates(case)
    yield from _param_candidates(case)
    yield from _adg_candidates(case)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def shrink(
    case: FuzzCase,
    failure_key: FailureKey,
    max_evaluations: int = 200,
) -> ShrinkResult:
    """Minimize ``case`` while ``failure_key`` keeps returning the same key.

    The original case must fail (``failure_key(case)`` not None); raises
    ValueError otherwise.
    """
    key = failure_key(case)
    if key is None:
        raise ValueError("shrink() called on a passing case")
    evaluations = 1
    steps = 0
    current = case
    improved = True
    while improved and evaluations < max_evaluations:
        improved = False
        for candidate in _candidates(current):
            if evaluations >= max_evaluations:
                break
            if case_size(candidate) >= case_size(current):
                continue
            evaluations += 1
            if failure_key(candidate) == key:
                current = candidate
                steps += 1
                improved = True
                break                      # restart from the smaller case
    return ShrinkResult(
        case=current, key=key, steps=steps, evaluations=evaluations
    )
