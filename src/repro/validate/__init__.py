"""Differential model-vs-simulator validation (fuzzing, invariants, corpus).

The paper justifies its DSE objective by validating the bottleneck
performance model against cycle-level simulation; this package turns that
one-off validation into a regression-tested property:

* :mod:`generators` — seeded random affine programs + mutated ADGs,
* :mod:`invariants` — structural checks (ADG, round-trip, schedule legality,
  resource estimates),
* :mod:`oracle` — the model-vs-simulator differential comparison with
  per-bottleneck-class tolerance bands,
* :mod:`shrinker` — greedy minimization of failing cases,
* :mod:`corpus` — content-addressed storage of minimal repros,
* :mod:`runner` — the ``repro fuzz`` / ``repro validate`` drivers,
* :mod:`soak` — sharded, resumable fuzz campaigns (``repro soak``),
* :mod:`promote` — freezing minimal repros as committed regression tests.
"""

from .corpus import DivergenceCorpus, case_key
from .generators import (
    PROGRAM_FAMILIES,
    FuzzCase,
    GeneratorError,
    ProgramSpec,
    StatementSpec,
    TermSpec,
    case_size,
    random_case,
    random_program,
)
from .invariants import (
    Violation,
    check_adg,
    check_case,
    check_resources,
    check_roundtrip,
    check_schedule,
)
from .oracle import (
    OracleResult,
    ToleranceBands,
    classify_bottleneck,
    run_oracle,
)
from .promote import (
    promote_failures,
    replay_promoted,
    replay_promoted_dir,
)
from .runner import (
    CaseRecord,
    Failure,
    FuzzStats,
    ValidateReport,
    failure_key_of,
    fuzz_run,
    make_failure_key,
    validate_run,
)
from .shrinker import ShrinkResult, shrink
from .soak import CampaignConfig, SoakError, SoakReport, soak_run

__all__ = [
    "CampaignConfig",
    "CaseRecord",
    "DivergenceCorpus",
    "Failure",
    "FuzzCase",
    "FuzzStats",
    "GeneratorError",
    "OracleResult",
    "ProgramSpec",
    "ShrinkResult",
    "SoakError",
    "SoakReport",
    "StatementSpec",
    "TermSpec",
    "ToleranceBands",
    "ValidateReport",
    "Violation",
    "case_key",
    "case_size",
    "check_adg",
    "check_case",
    "check_resources",
    "check_roundtrip",
    "check_schedule",
    "classify_bottleneck",
    "failure_key_of",
    "fuzz_run",
    "make_failure_key",
    "promote_failures",
    "PROGRAM_FAMILIES",
    "random_case",
    "random_program",
    "replay_promoted",
    "replay_promoted_dir",
    "run_oracle",
    "shrink",
    "soak_run",
    "validate_run",
]
