"""Differential model-vs-simulator validation (fuzzing, invariants, corpus).

The paper justifies its DSE objective by validating the bottleneck
performance model against cycle-level simulation; this package turns that
one-off validation into a regression-tested property:

* :mod:`generators` — seeded random affine programs + mutated ADGs,
* :mod:`invariants` — structural checks (ADG, round-trip, schedule legality,
  resource estimates),
* :mod:`oracle` — the model-vs-simulator differential comparison with
  per-bottleneck-class tolerance bands,
* :mod:`shrinker` — greedy minimization of failing cases,
* :mod:`corpus` — content-addressed storage of minimal repros,
* :mod:`runner` — the ``repro fuzz`` / ``repro validate`` drivers.
"""

from .corpus import DivergenceCorpus, case_key
from .generators import (
    FuzzCase,
    GeneratorError,
    ProgramSpec,
    StatementSpec,
    TermSpec,
    random_case,
    random_program,
)
from .invariants import (
    Violation,
    check_adg,
    check_case,
    check_resources,
    check_roundtrip,
    check_schedule,
)
from .oracle import (
    OracleResult,
    ToleranceBands,
    classify_bottleneck,
    run_oracle,
)
from .runner import (
    Failure,
    FuzzStats,
    ValidateReport,
    failure_key_of,
    fuzz_run,
    make_failure_key,
    validate_run,
)
from .shrinker import ShrinkResult, shrink

__all__ = [
    "DivergenceCorpus",
    "Failure",
    "FuzzCase",
    "FuzzStats",
    "GeneratorError",
    "OracleResult",
    "ProgramSpec",
    "ShrinkResult",
    "StatementSpec",
    "TermSpec",
    "ToleranceBands",
    "ValidateReport",
    "Violation",
    "case_key",
    "check_adg",
    "check_case",
    "check_resources",
    "check_roundtrip",
    "check_schedule",
    "classify_bottleneck",
    "failure_key_of",
    "fuzz_run",
    "make_failure_key",
    "random_case",
    "random_program",
    "run_oracle",
    "shrink",
    "validate_run",
]
