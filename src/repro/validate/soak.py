"""Sharded, resumable differential fuzz campaigns (``repro soak``).

A *campaign* is one contract — "draw cases ``start..budget`` from this
seed under these tolerance bands" — executed as ``shards`` independent
slices of the global case-index range.  Each shard is a self-contained
:func:`~repro.validate.runner.fuzz_run` that a worker process can
execute in isolation; the campaign layer then:

* runs shards through the shared :mod:`repro.jobs` runtime (worker
  pool with the :class:`~repro.jobs.ProcessPoolJobExecutor`
  serial-fallback rule, exactly like the DSE engine), with per-shard
  fault isolation — a crashed shard is recorded and the campaign
  degrades to the surviving shards' coverage;
* checkpoints every finished shard's :class:`FuzzStats` into an
  :class:`~repro.engine.store.ArtifactStore` keyed by the campaign
  fingerprint + shard range (via the runtime's
  :class:`~repro.jobs.Checkpointing`), so ``--resume`` answers finished
  shards from disk without recomputing them;
* merges shard results deterministically: per-case records replay in
  global index order (bit-identical float accumulation), and failures
  dedupe across shards by ``failure_key`` keeping the smallest repro —
  so ``--shards 4`` and ``--shards 1`` render byte-identical triage
  reports for the same seed set;
* records the deduped minimal repros in the divergence corpus and, with
  ``--promote``, freezes each one as a committed regression case through
  :mod:`repro.validate.promote`.

The campaign fingerprint deliberately excludes the shard count and
worker count: how the range was split is an execution detail, not part
of what the campaign *means*.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.hashing import fingerprint
from ..engine.metrics import MetricsLogger
from ..engine.store import ArtifactStore
from ..jobs import (
    Checkpointing,
    FaultPolicy,
    JobOutcome,
    JobRunner,
    ProcessPoolJobExecutor,
    ShardPlan,
)
from ..profile.tracer import span
from .corpus import DivergenceCorpus, case_key
from .generators import case_size
from .oracle import ToleranceBands
from .promote import promote_failures
from .runner import Failure, FuzzStats, fuzz_run

#: Bump when the meaning of a stored shard result changes (FuzzStats
#: layout, generator stream, oracle outcomes) so stale checkpoints miss.
SOAK_SCHEMA_VERSION = 1


class SoakError(RuntimeError):
    """Every shard of a campaign failed; there is nothing to merge."""


@dataclass(frozen=True)
class CampaignConfig:
    """What a campaign means — independent of how it is executed."""

    budget: int = 100
    seed: int = 0
    shards: int = 1
    max_mutations: int = 6
    shrink_budget: int = 120
    bands: ToleranceBands = field(default_factory=ToleranceBands)

    def campaign_key(self) -> str:
        """Content address of the campaign contract (shard/worker counts
        excluded: they change execution, not meaning)."""
        return fingerprint(
            {
                "schema": SOAK_SCHEMA_VERSION,
                "budget": self.budget,
                "seed": self.seed,
                "max_mutations": self.max_mutations,
                "shrink_budget": self.shrink_budget,
                "bands": self.bands.to_dict(),
            }
        )

    def shard_ranges(self) -> List[Tuple[int, int]]:
        """Contiguous (start, count) slices covering ``0..budget``
        (delegates to the shared :class:`~repro.jobs.ShardPlan`)."""
        return ShardPlan(total=self.budget, shards=self.shards).ranges()


@dataclass(frozen=True)
class ShardJob:
    """Self-contained unit of work shipped to a worker process."""

    index: int
    start: int
    count: int
    seed: int
    max_mutations: int
    shrink_budget: int
    bands: ToleranceBands
    inject_crash: bool = False   # fault-injection hook for tests


@dataclass
class ShardOutcome:
    index: int
    start: int
    count: int
    stats: Optional[FuzzStats]
    error: Optional[str] = None
    cached: bool = False


def run_shard_job(job: ShardJob) -> FuzzStats:
    """Execute one shard (module-level so it pickles to workers)."""
    if job.inject_crash:
        raise RuntimeError(f"injected crash (shard {job.index})")
    return fuzz_run(
        budget=job.count,
        seed=job.seed,
        bands=job.bands,
        max_mutations=job.max_mutations,
        shrink_budget=job.shrink_budget,
        start=job.start,
        keep_records=True,
    )


def _shard_store_key(campaign_key: str, start: int, count: int) -> str:
    return fingerprint(
        {
            "schema": SOAK_SCHEMA_VERSION,
            "campaign": campaign_key,
            "start": start,
            "count": count,
        }
    )


@dataclass
class SoakReport:
    """Outcome of one campaign: merged stats + deduped failure triage."""

    config: CampaignConfig
    campaign_key: str
    stats: FuzzStats                      # merged across surviving shards
    failures: List[Failure]               # deduped, failure-key sorted
    raw_failures: int                     # before cross-shard dedup
    cases_run: int
    crashed_shards: List[int] = field(default_factory=list)
    cached_shards: List[int] = field(default_factory=list)
    new_failures: int = 0
    corpus_migrated: int = 0
    promoted: List[str] = field(default_factory=list)
    promote_dry_run: bool = False

    @property
    def complete(self) -> bool:
        return not self.crashed_shards

    @property
    def ok(self) -> bool:
        """Nothing new and nothing missing: safe to exit 0."""
        return (
            self.complete
            and self.new_failures == 0
            and self.stats.invariant_violations == 0
        )

    def stats_doc(self) -> Dict:
        return {
            "campaign": self.campaign_key,
            "shards": self.config.shards,
            "cases_run": self.cases_run,
            "crashed_shards": list(self.crashed_shards),
            "cached_shards": list(self.cached_shards),
            "unique_failures": len(self.failures),
            "raw_failures": self.raw_failures,
            "new_failures": self.new_failures,
            "corpus_migrated": self.corpus_migrated,
            "promoted": list(self.promoted),
            "promote_dry_run": self.promote_dry_run,
            **self.stats.stats_doc(),
        }

    def render(self) -> str:
        """The triage report: deterministic, timestamp-free, and
        independent of the shard split — ``--shards 4`` and ``--shards
        1`` over the same seeds produce these bytes identically.  (A
        degraded campaign shows reduced coverage, nothing else.)"""
        stats = self.stats
        lines = [
            f"soak: campaign {self.campaign_key[:16]}, seed "
            f"{self.config.seed}, budget {self.config.budget}",
            f"coverage: {self.cases_run}/{self.config.budget} cases"
            + ("" if self.complete else " (degraded: shard failures)"),
            "outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(stats.outcomes.items())),
            f"invariant violations: {stats.invariant_violations}",
        ]
        if stats.by_class:
            lines.append(
                f"{'class':10s} {'cases':>5s} {'pass':>6s} "
                f"{'max err':>8s} {'mean err':>8s}"
            )
            for name, s in sorted(stats.by_class.items()):
                lines.append(
                    f"{name:10s} {s.cases:5d} {s.pass_rate:6.0%} "
                    f"{s.max_rel_error:8.3f} {s.mean_rel_error:8.3f}"
                )
        lines.append(
            f"unique failures: {len(self.failures)} "
            f"({self.raw_failures} raw, "
            f"{self.raw_failures - len(self.failures)} duplicates dropped)"
        )
        for fail in self.failures:
            lines.append(
                f"  {fail.failure_key}: case {case_key(fail.case)[:16]} "
                f"(size {case_size(fail.case)}, origin "
                f"{fail.case.origin!r}, {fail.shrink_steps} shrink steps)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------
def _merge_outcomes(
    config: CampaignConfig, survivors: Sequence[ShardOutcome]
) -> Tuple[FuzzStats, List[Failure], int]:
    """Rebuild the serial-run aggregate from shard records and dedupe
    failures by signature (smallest repro wins, ties by case key)."""
    merged = FuzzStats(budget=config.budget, seed=config.seed)
    records = sorted(
        (r for o in survivors for r in o.stats.records),
        key=lambda r: r.index,
    )
    for record in records:
        merged.observe(
            record.index,
            record.outcome,
            record.klass,
            record.rel_error,
            record.violations,
        )
    raw = [f for o in survivors for f in o.stats.failures]
    best: Dict[str, Failure] = {}
    for failure in raw:
        incumbent = best.get(failure.failure_key)
        if incumbent is None or (
            case_size(failure.case), case_key(failure.case)
        ) < (case_size(incumbent.case), case_key(incumbent.case)):
            best[failure.failure_key] = failure
    deduped = [best[key] for key in sorted(best)]
    merged.failures = deduped
    return merged, deduped, len(raw)


def soak_run(
    config: CampaignConfig,
    state_dir: Optional[str] = None,
    corpus_dir: Optional[str] = None,
    jobs: Optional[int] = None,
    resume: bool = False,
    metrics: Optional[MetricsLogger] = None,
    promote_dir: Optional[str] = None,
    promote_dry_run: bool = False,
    inject_crash_shards: Sequence[int] = (),
    workers: Optional[int] = None,
) -> SoakReport:
    """Run one campaign: shard, execute, merge, record, promote.

    ``workers`` is the canonical name for the worker-process count (CLI
    convention); ``jobs`` survives as the legacy keyword.
    """
    metrics = metrics or MetricsLogger()
    campaign_key = config.campaign_key()
    store = (
        ArtifactStore(os.path.join(state_dir, "shards")) if state_dir else None
    )
    ranges = config.shard_ranges()
    crash_shards = set(inject_crash_shards)
    if workers is None:
        workers = jobs
    workers_n = (
        workers if workers is not None
        else min(len(ranges), os.cpu_count() or 1)
    )
    metrics.emit(
        "soak_start",
        campaign=campaign_key,
        budget=config.budget,
        seed=config.seed,
        shards=len(ranges),
        jobs=workers_n,
        resume=resume,
        bands=config.bands.to_dict(),
    )

    shard_jobs = [
        ShardJob(
            index=i,
            start=start,
            count=count,
            seed=config.seed,
            max_mutations=config.max_mutations,
            shrink_budget=config.shrink_budget,
            bands=config.bands,
            inject_crash=i in crash_shards,
        )
        for i, (start, count) in enumerate(ranges)
    ]

    checkpoint = None
    if store is not None:
        checkpoint = Checkpointing(
            store=store,
            key_fn=lambda job: _shard_store_key(
                campaign_key, job.start, job.count
            ),
            meta_fn=lambda job, stats: {
                "kind": "soak-shard",
                "campaign": campaign_key,
                "shard": job.index,
                "start": job.start,
                "count": job.count,
                "failures": len(stats.failures),
            },
            validate_fn=lambda cached: isinstance(cached, FuzzStats),
        )

    def emit_shard_event(out: JobOutcome) -> None:
        """Legacy per-shard event stream, rebuilt from runtime outcomes."""
        job = out.payload
        if out.cached:
            metrics.emit(
                "shard_cached", shard=job.index, start=job.start,
                count=job.count,
            )
        elif out.ok:
            metrics.emit(
                "shard_done",
                shard=job.index,
                start=job.start,
                count=job.count,
                failures=len(out.result.failures),
            )
        else:
            metrics.emit("shard_crashed", shard=job.index, error=out.error)

    executor = ProcessPoolJobExecutor(workers_n)
    runner = JobRunner(
        executor=executor,
        # all_failed_raises=False: the campaign owns the all-failed
        # SoakError so its message stays bit-identical.
        policy=FaultPolicy(all_failed_raises=False),
        metrics=metrics,
        name="soak.shards",
    )
    results = runner.run(
        run_shard_job,
        shard_jobs,
        checkpoint=checkpoint,
        resume=resume,
        label_fn=lambda job: job.index,
        on_outcome=emit_shard_event,
    )
    if executor.last_mode == "serial-fallback":
        metrics.emit("pool_unavailable", campaign=campaign_key)

    ordered = [
        ShardOutcome(
            index=o.payload.index,
            start=o.payload.start,
            count=o.payload.count,
            stats=o.result if o.ok else None,
            error=o.error,
            cached=o.cached,
        )
        for o in results
    ]
    survivors = [o for o in ordered if o.stats is not None]
    if not survivors:
        errors = "; ".join(f"shard {o.index}: {o.error}" for o in ordered)
        metrics.emit("soak_failed", campaign=campaign_key, errors=errors)
        raise SoakError(f"all {len(ordered)} shards failed: {errors}")

    with span("soak.merge", shards=len(survivors)):
        merged, failures, raw_count = _merge_outcomes(config, survivors)
    metrics.emit(
        "soak_merged",
        campaign=campaign_key,
        unique_failures=len(failures),
        raw_failures=raw_count,
    )

    corpus_migrated = 0
    new_failures = 0
    if corpus_dir:
        corpus = DivergenceCorpus(corpus_dir)
        corpus_migrated = corpus.migrate()
        for failure in failures:
            failure.corpus_key, failure.was_new = corpus.add(
                failure.case, failure.failure_key, summary=failure.summary
            )
            new_failures += int(failure.was_new)
    else:
        new_failures = len(failures)

    promoted: List[str] = []
    if promote_dir is not None:
        with span("soak.promote", failures=len(failures)):
            promoted = promote_failures(
                failures, promote_dir, config.bands, dry_run=promote_dry_run
            )
        metrics.emit(
            "soak_promoted",
            campaign=campaign_key,
            cases=promoted,
            dry_run=promote_dry_run,
        )

    report = SoakReport(
        config=config,
        campaign_key=campaign_key,
        stats=merged,
        failures=failures,
        raw_failures=raw_count,
        cases_run=sum(merged.outcomes.values()),
        crashed_shards=[o.index for o in ordered if o.stats is None],
        cached_shards=[o.index for o in ordered if o.cached],
        new_failures=new_failures,
        corpus_migrated=corpus_migrated,
        promoted=promoted,
        promote_dry_run=promote_dry_run,
    )
    metrics.emit("soak_done", **report.stats_doc())
    return report
