"""Differential oracle: bottleneck model vs cycle-level simulator.

For one fuzz case the oracle compiles the program, schedules its best
variant on the case's ADG, then runs both predictors over the same
schedule:

* the analytical bottleneck model (:func:`repro.model.perf.estimate_cycles`,
  plus the configuration stream the simulator also charges), and
* the cycle-level simulator (:func:`repro.sim.simulate_schedule`).

The relative error between the two is compared against a per-bottleneck-
class tolerance band: compute-bound mappings are where the model is exact
by construction, so they get a tight budget; memory-bound mappings go
through bandwidth contention the model only approximates; recurrence/
generate-limited ("aux") mappings sit in between.

Outcomes are structural, never exceptions: unschedulable cases and
simulator rejections are legitimate results the fuzz statistics count
separately from genuine divergence.  A non-finite cycle estimate on
either side (the model legitimately returns ``float("inf")`` when its
projected IPC collapses to zero) is its own ``nonfinite`` outcome: the
relative error of an infinite gap is meaningless, and letting it flow
into the accuracy aggregates would poison every max/mean downstream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from ..adg import SysADG
from ..compiler import LoweringError, generate_variants
from ..scheduler import schedule_workload
from ..sim import SimulationError, simulate_schedule
from ..model.perf import estimate_cycles
from .generators import FuzzCase

#: Outcome kinds, in the order they short-circuit.
OUTCOMES = (
    "build_error",       # spec does not rebuild (corrupt corpus entry)
    "lower_error",       # compiler produced no variant
    "unschedulable",     # no variant maps onto the mutated ADG
    "sim_error",         # simulator rejected the schedule (deadlock/stall)
    "nonfinite",         # a cycle estimate was inf/nan (no usable rel error)
    "ok",                # model and simulator agree within tolerance
    "divergence",        # disagreement outside the tolerance band
)


def _strict_round(value: float, digits: int) -> Optional[float]:
    """Round for a strict-JSON document: non-finite values become None
    (``json.dumps`` would otherwise emit non-standard ``Infinity``)."""
    return round(value, digits) if math.isfinite(value) else None

#: Coarse bottleneck classes keyed off PerfEstimate.bottleneck names.
_MEMORY_BOTTLENECKS = ("dram", "l2", "dma", "noc")
_AUX_BOTTLENECKS = ("rec", "gen")


def classify_bottleneck(bottleneck: str) -> str:
    """Map a PerfEstimate bottleneck name to a tolerance class."""
    if bottleneck in ("none", ""):
        return "compute"
    if bottleneck.startswith("spad"):
        return "memory"
    for prefix in _MEMORY_BOTTLENECKS:
        if bottleneck.startswith(prefix):
            return "memory"
    for prefix in _AUX_BOTTLENECKS:
        if bottleneck.startswith(prefix):
            return "aux"
    return "compute"


@dataclass(frozen=True)
class ToleranceBands:
    """Per-bottleneck-class relative-error budgets.

    ``abs_floor`` forgives absolute cycle gaps smaller than a pipeline
    fill: tiny kernels are dominated by startup effects neither side
    models identically.
    """

    compute: float = 0.35
    memory: float = 0.60
    aux: float = 0.60
    abs_floor: float = 64.0

    def budget(self, klass: str) -> float:
        return getattr(self, klass, self.memory)

    def to_dict(self) -> Dict[str, float]:
        return {
            "compute": self.compute,
            "memory": self.memory,
            "aux": self.aux,
            "abs_floor": self.abs_floor,
        }

    def scaled(self, rel_tol: Optional[float]) -> "ToleranceBands":
        """Override every relative band with one value (CLI ``--rel-tol``)."""
        if rel_tol is None:
            return self
        return replace(self, compute=rel_tol, memory=rel_tol, aux=rel_tol)


@dataclass
class OracleResult:
    """The differential verdict for one case."""

    outcome: str
    bottleneck: str = "none"
    bottleneck_class: str = "compute"
    model_cycles: float = 0.0
    sim_cycles: float = 0.0
    rel_error: float = 0.0
    detail: str = ""
    variant: str = ""
    schedule: Any = None                 # kept for invariant checking
    adg: Any = None

    @property
    def compared(self) -> bool:
        """Did both predictors produce a number for this case?"""
        return self.outcome in ("ok", "divergence")

    def stats_doc(self) -> Dict[str, Any]:
        """Strict-JSON summary (no object references, no timestamps, no
        ``Infinity``/``NaN`` literals — non-finite numbers become null)."""
        return {
            "outcome": self.outcome,
            "bottleneck": self.bottleneck,
            "class": self.bottleneck_class,
            "model_cycles": _strict_round(self.model_cycles, 3),
            "sim_cycles": _strict_round(self.sim_cycles, 3),
            "rel_error": _strict_round(self.rel_error, 6),
            "variant": self.variant,
            "detail": self.detail,
        }


def run_oracle(
    case: FuzzCase,
    bands: Optional[ToleranceBands] = None,
) -> OracleResult:
    """Compile, schedule, and differentially test one fuzz case."""
    bands = bands or ToleranceBands()
    try:
        workload = case.program.build()
        adg = case.adg()
        params = case.system_params()
    except Exception as exc:  # corrupt corpus docs can fail arbitrarily
        return OracleResult(outcome="build_error", detail=str(exc))
    try:
        variants = generate_variants(workload)
    except LoweringError as exc:
        return OracleResult(outcome="lower_error", detail=str(exc), adg=adg)

    schedule = schedule_workload(variants, adg, params)
    if schedule is None:
        return OracleResult(outcome="unschedulable", adg=adg)

    est = schedule.estimate
    bottleneck = est.bottleneck if est is not None else "none"
    klass = classify_bottleneck(bottleneck)
    variant = schedule.mdfg.variant

    # The simulator charges the configuration stream on top of steady
    # state; add the same term to the model side for a fair comparison.
    model_cycles = estimate_cycles(
        schedule.mdfg, schedule.binding(), adg, params
    )
    if model_cycles != float("inf"):
        model_cycles += schedule.mdfg.config_words

    sysadg = SysADG(adg=adg, params=params, name="fuzz")
    try:
        sim = simulate_schedule(schedule, sysadg)
    except SimulationError as exc:
        return OracleResult(
            outcome="sim_error",
            bottleneck=bottleneck,
            bottleneck_class=klass,
            model_cycles=model_cycles,
            detail=str(exc),
            variant=variant,
            schedule=schedule,
            adg=adg,
        )

    if not (math.isfinite(model_cycles) and math.isfinite(float(sim.cycles))):
        # An infinite gap has no meaningful relative error; surface it as
        # its own outcome so the accuracy aggregates stay finite and the
        # failure still shrinks/records like any other model bug.
        return OracleResult(
            outcome="nonfinite",
            bottleneck=bottleneck,
            bottleneck_class=klass,
            model_cycles=model_cycles,
            sim_cycles=float(sim.cycles),
            rel_error=float("inf"),
            detail=(
                f"non-finite cycle estimate (model={model_cycles!r}, "
                f"sim={float(sim.cycles)!r})"
            ),
            variant=variant,
            schedule=schedule,
            adg=adg,
        )

    rel_error = abs(sim.cycles - model_cycles) / max(sim.cycles, 1.0)
    within = (
        rel_error <= bands.budget(klass)
        or abs(sim.cycles - model_cycles) <= bands.abs_floor
    )
    return OracleResult(
        outcome="ok" if within else "divergence",
        bottleneck=bottleneck,
        bottleneck_class=klass,
        model_cycles=model_cycles,
        sim_cycles=float(sim.cycles),
        rel_error=rel_error,
        variant=variant,
        schedule=schedule,
        adg=adg,
    )
