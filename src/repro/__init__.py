"""OverGen reproduction: domain-specific FPGA overlay generation.

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.ir` — workload intermediate representation
* :mod:`repro.compiler` — decoupled-spatial compiler + reuse analysis
* :mod:`repro.dfg` — memory-enhanced dataflow graphs
* :mod:`repro.adg` — architecture description graphs + system parameters
* :mod:`repro.scheduler` — spatial scheduler (place/route/bind/repair)
* :mod:`repro.dse` — unified spatial + system design-space exploration
* :mod:`repro.model` — performance and FPGA resource models
* :mod:`repro.sim` — cycle-level overlay simulator
* :mod:`repro.rtl` — structural Verilog emission + floorplanning
* :mod:`repro.hls` — AutoDSE/HLS baseline model
* :mod:`repro.workloads` — the 19 Table-II workloads
* :mod:`repro.harness` — experiment drivers for every table/figure
"""

__version__ = "0.2.0"

from .adg import general_overlay
from .compiler import compile_workload, generate_variants
from .dse import DseConfig, explore
from .scheduler import schedule_workload
from .sim import simulate_schedule
from .workloads import all_workloads, get_suite, get_workload

__all__ = [
    "DseConfig",
    "__version__",
    "all_workloads",
    "compile_workload",
    "explore",
    "general_overlay",
    "generate_variants",
    "get_suite",
    "get_workload",
    "schedule_workload",
    "simulate_schedule",
]
