"""The AutoDSE/HLS baseline (Merlin + Vivado), modeled analytically."""

from .autodse import (
    AutoDseResult,
    HLS_BUDGET_FRACTION,
    run_autodse,
    run_autodse_suite,
)
from .kernels import (
    HlsKernelInfo,
    KERNEL_INFO,
    OVERGEN_TUNED_WORKLOADS,
    kernel_info,
)
from .model import (
    HLS_FREQUENCY_MHZ,
    HlsDesign,
    design_resources,
    evaluate_design,
    hls_dram_bytes_per_cycle,
    unroll_cap,
)

__all__ = [
    "AutoDseResult",
    "HLS_BUDGET_FRACTION",
    "HLS_FREQUENCY_MHZ",
    "HlsDesign",
    "HlsKernelInfo",
    "KERNEL_INFO",
    "OVERGEN_TUNED_WORKLOADS",
    "design_resources",
    "evaluate_design",
    "hls_dram_bytes_per_cycle",
    "kernel_info",
    "run_autodse",
    "run_autodse_suite",
    "unroll_cap",
]
