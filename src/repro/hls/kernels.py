"""Per-workload HLS characteristics (Table IV and Section VIII-Q2).

The HLS baseline's achievable initiation interval (II) depends on code
patterns the underlying toolchain handles poorly:

* **variable loop trip counts** (cholesky, crs, fft) inflate II until the
  kernel is manually rewritten with fixed maximum trips + guards;
* **small-stride memory access** (bgr2grey, blur, channel-ext, stencil-3d)
  defeats memory coalescing/partitioning until strength-reduced.

Tuning also unlocks *line-buffer* reuse for sliding-window kernels
(stencil-2d, blur, derivative — Q1's outliers) and the AutoDSE pre-built
database covers gemm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class HlsKernelInfo:
    """Static HLS behavior of one workload."""

    untuned_ii: int
    tuned_ii: int
    #: why tuning was needed (Table IV rows).
    cause: Optional[str] = None
    #: tuned version exploits a line buffer: each input element is read
    #: from memory once regardless of window overlap (Q1 outliers).
    line_buffer: bool = False
    #: covered by AutoDSE's pre-built configuration database.
    prebuilt_db: bool = False
    #: untuned version pays variable-trip padding (fixed-max trip counts).
    variable_trip_padding: bool = False


#: Table IV: HLS initiation intervals before/after manual kernel tuning.
KERNEL_INFO: Dict[str, HlsKernelInfo] = {
    "cholesky": HlsKernelInfo(10, 5, cause="variable trip count",
                              variable_trip_padding=True),
    "crs": HlsKernelInfo(4, 2, cause="variable trip count",
                         variable_trip_padding=True),
    "fft": HlsKernelInfo(2, 1, cause="variable trip count"),
    "bgr2grey": HlsKernelInfo(9, 1, cause="inefficient strided access"),
    "blur": HlsKernelInfo(6, 1, cause="inefficient strided access",
                          line_buffer=True),
    "channel-ext": HlsKernelInfo(8, 1, cause="inefficient strided access"),
    "stencil-3d": HlsKernelInfo(6, 1, cause="inefficient strided access"),
    # Everything else reaches II=1 untuned (Section VIII-Q2).
    "fir": HlsKernelInfo(1, 1),
    "solver": HlsKernelInfo(1, 1),
    "mm": HlsKernelInfo(1, 1),
    "gemm": HlsKernelInfo(1, 1, prebuilt_db=True),
    "stencil-2d": HlsKernelInfo(1, 1, line_buffer=True),
    "ellpack": HlsKernelInfo(1, 1),
    "accumulate": HlsKernelInfo(1, 1),
    "acc-sqr": HlsKernelInfo(1, 1),
    "vecmax": HlsKernelInfo(1, 1),
    "acc-weight": HlsKernelInfo(1, 1),
    "convert-bit": HlsKernelInfo(1, 1),
    "derivative": HlsKernelInfo(1, 1, line_buffer=True),
    # Scenario families beyond Table IV.  The same code patterns recur:
    # the fsm kernels carry nested predication (if-conversion keeps II
    # low only after rewriting), the irregular kernels pay the familiar
    # variable-trip padding, and the tdm chains pipeline cleanly.
    "threshold-fsm": HlsKernelInfo(3, 1, cause="nested predication"),
    "debounce": HlsKernelInfo(2, 1, cause="nested predication"),
    "edge-count": HlsKernelInfo(2, 1, cause="nested predication"),
    "horner": HlsKernelInfo(1, 1),
    "biquad-cascade": HlsKernelInfo(1, 1),
    "mac-bank": HlsKernelInfo(1, 1),
    "ragged-rows": HlsKernelInfo(4, 2, cause="variable trip count",
                                 variable_trip_padding=True),
    "hash-probe": HlsKernelInfo(6, 2, cause="data-dependent probe chain",
                                variable_trip_padding=True),
    "frontier-gather": HlsKernelInfo(4, 2, cause="variable trip count",
                                     variable_trip_padding=True),
}


def kernel_info(name: str) -> HlsKernelInfo:
    try:
        return KERNEL_INFO[name]
    except KeyError:
        raise KeyError(f"no HLS kernel info for {name!r}") from None


#: Workloads whose *OverGen* version also benefits from manual tuning (Q2):
#: fft (loop peeling for coalescing), gemm (2-D unroll for reuse),
#: stencil-2d and blur (manual unroll for overlapped-window reuse).
OVERGEN_TUNED_WORKLOADS = ("fft", "gemm", "stencil-2d", "blur")
