"""AutoDSE: bottleneck-guided pragma exploration for the HLS baseline.

AutoDSE iteratively identifies the performance bottleneck of the current
design and applies the pragma that relieves it (here: doubling unroll /
partitioning while the design stays resource-feasible and keeps
improving).  Each evaluated design point costs an HLS compile (minutes);
the chosen design then pays full synthesis + P&R (hours).  These modeled
times drive the Fig. 15 comparison.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import Workload
from ..model.resource import Resources, XCVU9P
from .kernels import kernel_info
from .model import HlsDesign, evaluate_design, unroll_cap

#: Resource budget AutoDSE respects (fraction of the device).
HLS_BUDGET_FRACTION = 0.85

#: Modeled cost of one Merlin/HLS evaluation, minutes.
EVAL_MINUTES_BASE = 11.0

#: Modeled cost of final synthesis + place&route, hours.
SYNTH_HOURS_BASE = 1.6


@dataclass
class AutoDseResult:
    """Chosen design + exploration cost for one kernel."""

    design: HlsDesign
    evaluated_points: int
    dse_hours: float
    synth_hours: float

    @property
    def total_hours(self) -> float:
        return self.dse_hours + self.synth_hours


def _stable_hash(name: str) -> int:
    return int(hashlib.sha256(name.encode()).hexdigest(), 16)


def run_autodse(
    workload: Workload,
    tuned: bool = False,
    dram_channels: int = 1,
) -> AutoDseResult:
    """Explore unroll/partition pragmas for one kernel.

    Deterministic: the exploration path depends only on the workload and
    the tuned flag.
    """
    budget = XCVU9P * HLS_BUDGET_FRACTION
    cap = unroll_cap(workload, tuned)
    evaluated = 0
    best: Optional[HlsDesign] = None
    unroll = 1
    while unroll <= cap:
        design = evaluate_design(workload, unroll, tuned, dram_channels)
        evaluated += 1
        if not design.resources.fits_in(budget):
            break
        if best is not None and design.cycles > best.cycles * 0.98:
            # Bottleneck shifted to memory: more parallelism stops paying.
            best = design if design.cycles < best.cycles else best
            break
        best = design
        unroll *= 2
    assert best is not None
    # AutoDSE additionally explores cache/buffer/pipeline pragmas around
    # the chosen point; model that breadth deterministically per kernel.
    breadth = 14 + _stable_hash(workload.name) % 30
    if kernel_info(workload.name).prebuilt_db and tuned:
        breadth = 4  # the database seeds a near-final configuration
    evaluated += breadth
    eval_minutes = EVAL_MINUTES_BASE + (_stable_hash(workload.name) % 9)
    dse_hours = evaluated * eval_minutes / 60.0
    lut_frac = best.resources.lut / XCVU9P.lut
    synth_hours = SYNTH_HOURS_BASE + 6.0 * lut_frac
    return AutoDseResult(
        design=best,
        evaluated_points=evaluated,
        dse_hours=dse_hours,
        synth_hours=synth_hours,
    )


def run_autodse_suite(
    workloads: Sequence[Workload],
    tuned: bool = False,
    dram_channels: int = 1,
) -> Dict[str, AutoDseResult]:
    """AutoDSE for every kernel of a suite (each is a separate design)."""
    return {
        w.name: run_autodse(w, tuned=tuned, dram_channels=dram_channels)
        for w in workloads
    }
