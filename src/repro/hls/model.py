"""Analytical model of the HLS (Merlin/Vivado) baseline designs.

An HLS design for one kernel is a fixed-function pipeline characterized by
an unroll (parallelism) factor ``U`` and an initiation interval ``II``:

    compute_cycles = iterations x II / U
    memory_cycles  = DRAM bytes / DRAM bytes-per-cycle
    cycles         = max(compute, memory) + pipeline fill

DRAM traffic is each array's footprint (HLS kernels burst arrays into
on-chip BRAM and stream results back; on-chip reuse is free).  Untuned
designs pay the Table IV II penalties; tuned designs reach II=1 (or halved
for the variable-trip kernels, which additionally pad their iteration space
to the fixed maximum), and line-buffer kernels unlock wider unrolling.

HLS clocks are much higher than the overlay's (fixed-function pipelines
place/route well); the paper's speedups are wall-clock, so frequency is
part of the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..ir import Op, Workload
from ..model.resource import Resources, XCVU9P
from .kernels import HlsKernelInfo, kernel_info

#: Achievable clock of Merlin-generated fixed-function pipelines (MHz).
HLS_FREQUENCY_MHZ = 240.0

#: DDR4 channel bandwidth seen by the HLS kernel, bytes per HLS cycle.
def hls_dram_bytes_per_cycle(channels: int = 1) -> float:
    return 19.2e9 / (HLS_FREQUENCY_MHZ * 1e6) * channels

#: Unroll caps: BRAM ports and partitioning limit parallelism; manual
#: tuning (strength reduction, line buffers) raises the ceiling.
UNTUNED_UNROLL_CAP = 8
TUNED_UNROLL_CAP = 16
LINE_BUFFER_UNROLL_CAP = 32

#: Pipeline fill/drain overhead in cycles.
PIPELINE_OVERHEAD = 120.0


@dataclass(frozen=True)
class HlsDesign:
    """One synthesized HLS design point."""

    workload: str
    unroll: int
    ii: int
    tuned: bool
    line_buffer_active: bool
    cycles: float
    resources: Resources

    @property
    def frequency_mhz(self) -> float:
        return HLS_FREQUENCY_MHZ

    @property
    def seconds(self) -> float:
        return self.cycles / (self.frequency_mhz * 1e6)


def _iterations(workload: Workload, info: HlsKernelInfo, tuned: bool) -> float:
    """Iterations the HLS pipeline executes.

    Tuning variable-trip kernels replaces data-dependent trip counts with
    the fixed maximum plus guarded (predicated) bodies — the pipeline then
    runs the *padded* iteration space (Section VIII-Q2).
    """
    if tuned and info.variable_trip_padding:
        return float(workload.trip_product)
    return workload.effective_trip_product


def _dram_bytes(workload: Workload, info: HlsKernelInfo, tuned: bool) -> float:
    """Off-chip traffic: every array streams on/off chip once."""
    return float(workload.footprint_bytes())


def _lane_resources(workload: Workload) -> Resources:
    """Datapath cost of one unrolled lane of the kernel's pipeline."""
    from ..model.resource.analytic import _FP_COSTS, _FP_SHARED

    lut = 0.0
    dsp = 0.0
    bits = workload.dtype.scalar_bits
    is_float = workload.dtype.is_float
    for op, count in workload.op_counts().items():
        if is_float:
            if op is Op.MUL:
                unit = _FP_COSTS[("mul", bits)]
                lut += unit[0] * count
                dsp += unit[1] * count
            elif op is Op.DIV:
                lut += _FP_SHARED[("div", bits)] * count
            elif op is Op.SQRT:
                lut += _FP_SHARED[("sqrt", bits)] * count
            else:
                unit = _FP_COSTS[("add", bits)]
                lut += unit[0] * count
        else:
            if op is Op.MUL:
                dsp += max(1.0, bits / 24.0) * count * 0.5
                lut += bits * 1.5 * count / 8.0
            elif op is Op.DIV:
                lut += 6.0 * bits * count
            else:
                lut += 0.25 * bits * count
    # Load/store units and address generation per lane.
    mem_ops = workload.memory_op_count()
    lut += mem_ops * 60.0
    return Resources(lut=lut, ff=lut * 1.2, dsp=dsp)


def design_resources(workload: Workload, unroll: int, tuned: bool) -> Resources:
    """Whole-design resources: control + AXI + datapath x unroll + BRAM."""
    base = Resources(lut=9000.0, ff=12000.0, bram=8.0, dsp=2.0)
    lanes = _lane_resources(workload) * unroll
    bram = workload.footprint_bytes() / 4608.0
    # Array partitioning replicates BRAM banks roughly with unroll.
    bram *= max(1.0, unroll / 2.0)
    arrays = Resources(bram=bram, lut=unroll * 120.0)
    return base + lanes + arrays


def evaluate_design(
    workload: Workload,
    unroll: int,
    tuned: bool,
    dram_channels: int = 1,
) -> HlsDesign:
    """Model one (workload, unroll, tuned) HLS design point."""
    info = kernel_info(workload.name)
    ii = info.tuned_ii if tuned else info.untuned_ii
    line_buffer = tuned and info.line_buffer
    iterations = _iterations(workload, info, tuned)
    compute = iterations * ii / unroll
    memory = _dram_bytes(workload, info, tuned) / hls_dram_bytes_per_cycle(
        dram_channels
    )
    cycles = max(compute, memory) + PIPELINE_OVERHEAD
    return HlsDesign(
        workload=workload.name,
        unroll=unroll,
        ii=ii,
        tuned=tuned,
        line_buffer_active=line_buffer,
        cycles=cycles,
        resources=design_resources(workload, unroll, tuned),
    )


def unroll_cap(workload: Workload, tuned: bool) -> int:
    info = kernel_info(workload.name)
    if tuned and info.line_buffer:
        cap = LINE_BUFFER_UNROLL_CAP
    elif tuned:
        cap = TUNED_UNROLL_CAP
    else:
        cap = UNTUNED_UNROLL_CAP
    if tuned and info.prebuilt_db:
        cap *= 2  # the pre-built database finds aggressive configurations
    # HLS unrolls across the two innermost loop levels (fully unrolling a
    # short blocked loop and partially the next), unlike the overlay whose
    # vector lanes only widen the innermost dimension.
    trip_bound = workload.innermost.trip
    if len(workload.loops) >= 2:
        trip_bound *= workload.loops[-2].trip
    return min(cap, trip_bound)
