"""The cluster front tier: one JSON-lines endpoint over N serve shards.

``ClusterRouter`` speaks the exact :mod:`repro.serve.protocol` a single
``OverlayServer`` speaks, so every existing client (``repro submit``,
``SocketJobExecutor``, the load generator) points at a cluster without
changing a line.  Per request:

* **Route** — compute ops hash ``(overlay fingerprint, workload
  fingerprint)`` into the fixed slot space and pick the owning shard
  with :func:`~repro.cluster.topology.route_shard` (ShardPlan math, so
  the same request always lands on the same shard and that shard's
  single-flight coalescing + memory cache see all duplicates).
  ``remap`` routes on the registry *base name* instead of the
  fingerprint so a new published version inherits the shard — and
  therefore the preserved schedule — of the previous one.  ``job`` ops
  round-robin over healthy shards.
* **Failover** — a shard answering ``overloaded`` (or failing at the
  connection level) gets a bounded number of retries against the next
  healthy shards; any shard computes the identical result document, so
  failover never changes bytes, only placement.  ``deadline`` errors
  are *not* failed over: the original shard's compute keeps running
  and a retry there hits its cache.
* **Health** — a background task pings every shard each
  ``health_interval_s``; unhealthy shards are skipped by routing until
  they answer again.  Health sweeps also collect shard overlay
  fingerprints, which keeps the routing key table and the advertised
  :class:`~repro.cluster.topology.Topology` fresh.

Admin ops are answered at the router: ``stats`` aggregates shard
counters (the CI smoke asserts cluster-wide remap hit rate from it),
``topology`` hands out the cluster map so smart clients can route
*directly* to shards (the ``repro submit load --cluster`` fast path —
the router never becomes the data-plane bottleneck), ``load_overlay``
broadcasts to every shard, and ``shutdown`` drains the shards then the
router itself.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..engine.metrics import MetricsLogger
from ..serve.client import ServeClient, ServeConnectionError
from ..serve.errors import BadRequestError, InternalError, ServeError
from ..serve.protocol import (
    COMPUTE_OPS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    Request,
    decode_line,
    encode_line,
    parse_request,
    response_doc,
)
from ..serve.ops import workload_fp
from .registry import OverlayRegistry, RegistryError, split_spec
from .topology import BackendSpec, Topology, route_shard


@dataclass
class RouterConfig:
    """Where the router listens and how it treats its shards."""

    backends: List[BackendSpec] = field(default_factory=list)
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    #: Store root of the shared overlay registry (resolves overlay
    #: specs to fingerprints for routing; None = route on spec text).
    registry_dir: Optional[str] = None
    #: Seconds between background shard health sweeps.
    health_interval_s: float = 2.0
    #: Extra shards tried when the owner is overloaded/unreachable.
    failover_retries: int = 2
    #: Deadline for router-internal admin calls to shards (health
    #: pings, stats fans, shutdown broadcast).
    admin_timeout_s: float = 5.0


@dataclass
class BackendState:
    """One shard as the router sees it."""

    spec: BackendSpec
    client: Optional[ServeClient] = None
    healthy: bool = False
    #: Requests this shard served (for balance reporting).
    routed: int = 0
    last_error: Optional[str] = None
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)

    async def ensure_client(self) -> ServeClient:
        async with self.lock:
            if self.client is None:
                client = ServeClient(
                    socket_path=self.spec.socket_path,
                    host=self.spec.host,
                    port=self.spec.port,
                )
                await client.connect()
                self.client = client
            return self.client

    async def drop_client(self) -> None:
        async with self.lock:
            if self.client is not None:
                try:
                    await self.client.close()
                except Exception:
                    pass
                self.client = None


class ClusterRouter:
    """Protocol-transparent request router over N serve shards."""

    def __init__(
        self,
        config: RouterConfig,
        metrics: Optional[MetricsLogger] = None,
    ) -> None:
        if not config.backends:
            raise ValueError("router needs at least one backend shard")
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsLogger()
        self.backends = [BackendState(spec=s) for s in config.backends]
        self.registry: Optional[OverlayRegistry] = (
            OverlayRegistry(config.registry_dir)
            if config.registry_dir
            else None
        )
        self.counters: Dict[str, int] = {
            "requests": 0,
            "routed": 0,
            "responses_error": 0,
            "retries": 0,
            "failovers": 0,
            "health_sweeps": 0,
        }
        #: overlay spec -> fingerprint, the routing key table.  Seeded
        #: and refreshed from shard stats; explicit registry specs are
        #: immutable so they cache forever, bare names resolve live.
        self._overlay_fps: Dict[str, str] = {}
        self._workload_fps: Dict[str, str] = {}
        self._rr = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._health_task: Optional["asyncio.Task[None]"] = None
        self._draining = False
        self._closed: Optional[asyncio.Event] = None
        self._conn_tasks: "set[asyncio.Task[Any]]" = set()
        self._writers: "set[asyncio.StreamWriter]" = set()
        self.endpoint: Optional[Tuple[str, Any]] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        import os

        self._closed = asyncio.Event()
        cfg = self.config
        if cfg.socket_path:
            if os.path.exists(cfg.socket_path):
                os.unlink(cfg.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=cfg.socket_path,
                limit=MAX_LINE_BYTES,
            )
            self.endpoint = ("unix", cfg.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=cfg.host,
                port=cfg.port,
                limit=MAX_LINE_BYTES,
            )
            sock = self._server.sockets[0]
            self.endpoint = ("tcp", sock.getsockname()[:2])
        await self._health_sweep()
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop()
        )
        self.metrics.emit(
            "router_start",
            protocol=PROTOCOL_VERSION,
            endpoint=list(self.endpoint),
            shards=[s.spec.describe() for s in self.backends],
            healthy=sum(1 for s in self.backends if s.healthy),
        )

    async def wait_closed(self) -> None:
        assert self._closed is not None, "router not started"
        await self._closed.wait()

    async def shutdown(self, drain_backends: bool = True) -> None:
        """Drain: stop listening, optionally drain every shard, close."""
        import os

        if self._closed is None or self._closed.is_set():
            return
        if self._draining:
            await self._closed.wait()
            return
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
        if self._server is not None:
            self._server.close()
        pending = [t for t in self._conn_tasks if not t.done()]
        if pending:
            done, late = await asyncio.wait(
                pending, timeout=self.config.admin_timeout_s
            )
            for task in late:
                task.cancel()
        if drain_backends:
            await asyncio.gather(
                *(self._shutdown_backend(s) for s in self.backends),
                return_exceptions=True,
            )
        for state in self.backends:
            await state.drop_client()
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        self.metrics.emit("router_summary", **self.stats_doc())
        if self.config.socket_path and os.path.exists(
            self.config.socket_path
        ):
            os.unlink(self.config.socket_path)
        self._closed.set()

    async def _shutdown_backend(self, state: BackendState) -> None:
        try:
            client = await state.ensure_client()
            await asyncio.wait_for(
                client.request_raw({"op": "shutdown"}),
                timeout=self.config.admin_timeout_s,
            )
        except (ServeConnectionError, OSError, asyncio.TimeoutError):
            pass

    # -- health ---------------------------------------------------------
    async def _health_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.config.health_interval_s)
                await self._health_sweep()
        except asyncio.CancelledError:
            return

    async def _health_sweep(self) -> None:
        self.counters["health_sweeps"] += 1
        await asyncio.gather(
            *(self._check_backend(s) for s in self.backends),
            return_exceptions=True,
        )

    async def _check_backend(self, state: BackendState) -> None:
        try:
            client = await state.ensure_client()
            resp = await asyncio.wait_for(
                client.request_raw({"op": "stats"}),
                timeout=self.config.admin_timeout_s,
            )
            stats = resp.get("result") or {}
            for name, fp in (stats.get("overlay_fps") or {}).items():
                self._overlay_fps[name] = fp
            was_healthy = state.healthy
            state.healthy = bool(resp.get("ok"))
            state.last_error = None
            if not was_healthy and state.healthy:
                self.metrics.emit(
                    "backend_up", shard=state.spec.describe()
                )
        except (ServeConnectionError, OSError, asyncio.TimeoutError) as exc:
            if state.healthy:
                self.metrics.emit(
                    "backend_down",
                    shard=state.spec.describe(),
                    error=str(exc),
                )
            state.healthy = False
            state.last_error = str(exc)
            await state.drop_client()

    # -- routing keys ---------------------------------------------------
    def _overlay_key(self, overlay: Optional[str], op: str) -> str:
        if overlay is None:
            return ""
        if op == "remap":
            # Version continuity: every version of one registry name
            # must land on the same shard to reuse its live schedule.
            return split_spec(overlay)[0]
        fp = self._overlay_fps.get(overlay)
        if fp is not None:
            return fp
        if self.registry is not None:
            try:
                version = self.registry.lookup(overlay)
            except RegistryError:
                return overlay
            if split_spec(overlay)[1] is not None:
                # Explicit name@vN never changes meaning; cache it.
                self._overlay_fps[overlay] = version.fingerprint
            return version.fingerprint
        return overlay

    def _workload_key(self, workload: str) -> str:
        fp = self._workload_fps.get(workload)
        if fp is None:
            fp = self._workload_fps[workload] = workload_fp(workload)
        return fp

    def _pick_shards(self, owner: int) -> List[BackendState]:
        """The owner, then failover candidates (healthy first)."""
        n = len(self.backends)
        ordered = [self.backends[(owner + k) % n] for k in range(n)]
        candidates = [s for s in ordered if s.healthy] + [
            s for s in ordered if not s.healthy
        ]
        return candidates[: self.config.failover_retries + 1]

    # -- request path ---------------------------------------------------
    async def _dispatch(self, request: Request, doc: Dict[str, Any]) -> Dict[str, Any]:
        self.counters["requests"] += 1
        if request.op == "ping":
            return response_doc(
                request.id,
                result={"pong": True, "protocol": PROTOCOL_VERSION},
            )
        if request.op == "stats":
            return response_doc(
                request.id, result=await self.cluster_stats()
            )
        if request.op == "topology":
            return response_doc(request.id, result=self.topology_doc())
        if request.op == "shutdown":
            asyncio.get_running_loop().create_task(self.shutdown())
            return response_doc(request.id, result={"draining": True})
        if request.op == "load_overlay":
            return await self._broadcast_load_overlay(request, doc)
        if self._draining:
            from ..serve.errors import ShuttingDownError

            raise ShuttingDownError("router is draining; no new work")
        if request.op in COMPUTE_OPS:
            assert request.workload is not None
            owner = route_shard(
                self._overlay_key(request.overlay, request.op),
                self._workload_key(request.workload),
                len(self.backends),
            )
        else:  # job: no content key, spread round-robin
            owner = self._rr = (self._rr + 1) % len(self.backends)
        return await self._forward(request, doc, owner)

    async def _forward(
        self, request: Request, doc: Dict[str, Any], owner: int
    ) -> Dict[str, Any]:
        t0 = perf_counter()
        last_response: Optional[Dict[str, Any]] = None
        last_error: Optional[str] = None
        forward = {k: v for k, v in doc.items() if k != "id"}
        for attempt, state in enumerate(self._pick_shards(owner)):
            if attempt:
                self.counters["retries"] += 1
            try:
                client = await state.ensure_client()
                response = await client.request_raw(forward)
            except (ServeConnectionError, OSError) as exc:
                state.healthy = False
                last_error = str(exc)
                await state.drop_client()
                continue
            error = response.get("error") or {}
            if not response.get("ok") and error.get("code") in (
                "overloaded",
                "shutting_down",
            ):
                # Bounded failover: another shard computes the same
                # bytes.  Anything else is final (deadline stays on
                # the owner so the retry hits its cache).
                last_response = response
                continue
            if attempt:
                self.counters["failovers"] += 1
            state.routed += 1
            self.counters["routed"] += 1
            if not response.get("ok"):
                self.counters["responses_error"] += 1
            self.metrics.emit(
                "route",
                op=request.op,
                shard=state.spec.index,
                attempts=attempt + 1,
                latency_s=perf_counter() - t0,
            )
            response["id"] = request.id
            return response
        self.counters["responses_error"] += 1
        if last_response is not None:
            last_response["id"] = request.id
            return last_response
        raise InternalError(
            f"no shard reachable for {request.op} "
            f"(last error: {last_error})"
        )

    async def _broadcast_load_overlay(
        self, request: Request, doc: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Warm an overlay onto every healthy shard; answer with the
        first shard's result (they are identical)."""
        forward = {k: v for k, v in doc.items() if k != "id"}
        targets = [s for s in self.backends if s.healthy]
        if not targets:
            raise InternalError("no healthy shard to load the overlay on")

        async def one(state: BackendState) -> Dict[str, Any]:
            client = await state.ensure_client()
            return await client.request_raw(forward)

        responses = await asyncio.gather(
            *(one(s) for s in targets), return_exceptions=True
        )
        first: Optional[Dict[str, Any]] = None
        for resp in responses:
            if isinstance(resp, BaseException):
                continue
            if resp.get("ok") and first is None:
                first = resp
                result = resp.get("result") or {}
                if result.get("overlay") and result.get("fingerprint"):
                    self._overlay_fps[result["overlay"]] = result[
                        "fingerprint"
                    ]
        if first is None:
            for resp in responses:
                if not isinstance(resp, BaseException):
                    resp["id"] = request.id
                    self.counters["responses_error"] += 1
                    return resp
            raise InternalError("load_overlay failed on every shard")
        first["id"] = request.id
        return first

    # -- introspection --------------------------------------------------
    def topology_doc(self) -> Dict[str, Any]:
        topology = Topology(
            shards=[s.spec for s in self.backends],
            overlays=dict(self._overlay_fps),
        )
        doc = topology.as_doc()
        doc["role"] = "router"
        doc["healthy"] = [s.healthy for s in self.backends]
        return doc

    def stats_doc(self) -> Dict[str, Any]:
        """Router-local stats (no shard round-trips)."""
        return {
            "role": "router",
            "protocol": PROTOCOL_VERSION,
            "draining": self._draining,
            "counters": dict(self.counters),
            "shards": [
                {
                    "index": s.spec.index,
                    "endpoint": s.spec.describe(),
                    "healthy": s.healthy,
                    "routed": s.routed,
                    "last_error": s.last_error,
                }
                for s in self.backends
            ],
        }

    async def cluster_stats(self) -> Dict[str, Any]:
        """Router stats plus live per-shard stats and summed counters."""
        doc = self.stats_doc()
        aggregate: Dict[str, int] = {}

        async def one(state: BackendState) -> Optional[Dict[str, Any]]:
            try:
                client = await state.ensure_client()
                resp = await asyncio.wait_for(
                    client.request_raw({"op": "stats"}),
                    timeout=self.config.admin_timeout_s,
                )
                return resp.get("result") if resp.get("ok") else None
            except (ServeConnectionError, OSError, asyncio.TimeoutError):
                return None

        shard_stats = await asyncio.gather(
            *(one(s) for s in self.backends)
        )
        for row, stats in zip(doc["shards"], shard_stats):
            row["stats"] = stats
            for key, value in ((stats or {}).get("counters") or {}).items():
                if isinstance(value, (int, float)):
                    aggregate[key] = aggregate.get(key, 0) + value
        doc["aggregate"] = {"counters": aggregate}
        return doc

    # -- connection plumbing (same shape as OverlayServer) --------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        request_tasks: "set[asyncio.Task[Any]]" = set()
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    await self._write(
                        writer,
                        write_lock,
                        response_doc(
                            "?",
                            error=BadRequestError(
                                f"request line exceeds {MAX_LINE_BYTES} bytes"
                            ).to_doc(),
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(line, writer, write_lock)
                )
                request_tasks.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(request_tasks.discard)
                task.add_done_callback(self._conn_tasks.discard)
            if request_tasks:
                await asyncio.gather(*request_tasks, return_exceptions=True)
        except asyncio.CancelledError:
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        doc: Dict[str, Any],
    ) -> None:
        async with lock:
            writer.write(encode_line(doc))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        req_id = "?"
        try:
            doc = decode_line(line)
            req_id = str(doc.get("id", "?"))
            request = parse_request(doc)
            response = await self._dispatch(request, doc)
        except ServeError as exc:
            self.counters["responses_error"] += 1
            response = response_doc(req_id, error=exc.to_doc())
        except Exception as exc:  # never kill the connection loop
            self.counters["responses_error"] += 1
            response = response_doc(
                req_id,
                error=InternalError(
                    f"{type(exc).__name__}: {exc}"
                ).to_doc(),
            )
        await self._write(writer, write_lock, response)


async def route_until_shutdown(
    router: ClusterRouter, signals: Optional[List[int]] = None
) -> None:
    """Start, install signal-driven drain, and block until closed."""
    import signal as _signal

    await router.start()
    loop = asyncio.get_running_loop()
    installed: List[int] = []
    for sig in signals or [_signal.SIGINT, _signal.SIGTERM]:
        try:
            loop.add_signal_handler(
                sig, lambda: loop.create_task(router.shutdown())
            )
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    try:
        await router.wait_closed()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
