"""``repro.cluster`` — scale-out for the overlay-compilation service.

Three pieces turn the single-process ``repro.serve`` tier into the
many-users story OverGen argues for (one generated overlay family,
many applications compiling in milliseconds):

* :mod:`~repro.cluster.registry` — a versioned overlay registry on
  :class:`~repro.engine.store.ArtifactStore`: publish / pin / rollback
  named overlay versions, so clients address ``name@version`` instead
  of shipping design files.
* :mod:`~repro.cluster.topology` — deterministic request routing:
  ``(overlay fp, workload fp)`` hashed into a fixed slot space and
  assigned to shards with the same :class:`~repro.jobs.ShardPlan` math
  soak uses, so routing is shard-count-deterministic and any client
  holding the topology routes exactly like the router.
* :mod:`~repro.cluster.router` / :mod:`~repro.cluster.launcher` — the
  asyncio front tier proxying the JSON-lines protocol across N backend
  serve shards (health checks, bounded failover on ``overloaded``,
  aggregated stats), and the process launcher that spawns shards +
  router as one unit for ``repro cluster serve``.

``router``/``launcher`` import :mod:`repro.serve`, which itself imports
:mod:`repro.cluster.registry`; they are exposed lazily here so the
package has no import cycle.
"""

from .registry import (
    OverlayRegistry,
    OverlayVersion,
    RegistryError,
    ResolvedOverlay,
    split_spec,
    version_key,
)
from .topology import (
    SLOTS,
    BackendSpec,
    Topology,
    route_shard,
    route_slot,
    shard_of_slot,
)

_LAZY = {
    "ClusterRouter": "router",
    "RouterConfig": "router",
    "BackendState": "router",
    "route_until_shutdown": "router",
    "ClusterLauncher": "launcher",
    "LauncherConfig": "launcher",
}

__all__ = [
    "BackendSpec",
    "BackendState",
    "ClusterLauncher",
    "ClusterRouter",
    "LauncherConfig",
    "OverlayRegistry",
    "OverlayVersion",
    "RegistryError",
    "ResolvedOverlay",
    "RouterConfig",
    "SLOTS",
    "Topology",
    "route_shard",
    "route_slot",
    "route_until_shutdown",
    "shard_of_slot",
    "split_spec",
    "version_key",
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    mod = importlib.import_module(f".{module}", __name__)
    value = getattr(mod, name)
    globals()[name] = value
    return value
