"""Versioned overlay registry on :class:`~repro.engine.store.ArtifactStore`.

OverGen's reuse story (and Mbongue et al.'s pre-implemented overlay
flow) treats a generated overlay like a model checkpoint: published
once, addressed by name, reused by many applications.  This module
gives that story a home: clients say ``fir-family@v3`` (or just
``fir-family``) instead of shipping raw design files, and the serve
tier resolves the name to a content-addressed design document.

Layout under one store root (shared with the serve result cache and the
DSE engine, so one ``--cache-dir`` carries everything):

* ``<root>/<key[:2]>/<key>.pkl`` — the design document itself, stored
  through :class:`ArtifactStore` under a key derived from
  ``(name, design fingerprint)``.  Publishing the same design to the
  same name twice is **idempotent**: the key collides and the existing
  version is returned.  The JSON meta sidecar carries
  ``kind=overlay_version`` plus name/version/fingerprint, which makes
  every version independently discoverable.
* ``<root>/registry/<name>.json`` — the per-name *index*: the ordered
  version list plus the pin.  Written atomically (temp + rename).  The
  index is a **cache over the sidecars**: if it is ever torn or lost,
  :meth:`OverlayRegistry.versions` rebuilds it by scanning store
  sidecars, so ``publish``/``rollback`` keep working (the pin, which
  lives only in the index, falls back to "latest").
* ``<root>/registry/<name>.lock`` — an ``O_CREAT|O_EXCL`` lock file
  serializing read-modify-write of the index across processes.  Stale
  locks (a publisher killed mid-update) are broken after
  ``LOCK_STALE_S``.

Resolution is byte-stable: resolving the same ``name@version`` twice —
in the same process or different ones — yields design documents whose
canonical JSON dumps are identical, because the document is stored
once, content-addressed, and never rewritten.
"""

from __future__ import annotations

import errno
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..engine.hashing import fingerprint
from ..engine.store import ArtifactStore

#: How long a lock file may sit before another process breaks it.
LOCK_STALE_S = 10.0

#: ``kind`` stamped into every published version's store sidecar.
VERSION_KIND = "overlay_version"


class RegistryError(Exception):
    """A user-facing registry failure (unknown name/version, bad spec)."""


@dataclass(frozen=True)
class OverlayVersion:
    """One published version of one named overlay."""

    name: str
    version: int
    #: Artifact-store key of the design document.
    key: str
    #: Content fingerprint of the design document itself.
    fingerprint: str
    note: Optional[str] = None
    published_at: float = 0.0

    @property
    def spec(self) -> str:
        return f"{self.name}@v{self.version}"

    def as_doc(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "key": self.key,
            "fingerprint": self.fingerprint,
            "note": self.note,
            "published_at": self.published_at,
        }


@dataclass
class ResolvedOverlay:
    """A fully resolved registry reference, design document included."""

    entry: OverlayVersion
    design_doc: Dict[str, Any] = field(repr=False, default_factory=dict)
    #: True when the spec named the version explicitly (``name@v3``),
    #: False when it went through the pin/latest default.
    explicit: bool = False

    @property
    def spec(self) -> str:
        return self.entry.spec


def split_spec(spec: str) -> Tuple[str, Optional[str]]:
    """``"name@v3"`` -> ``("name", "v3")``; bare names get ``None``."""
    name, sep, selector = spec.partition("@")
    if not name:
        raise RegistryError(f"empty overlay name in spec {spec!r}")
    return name, (selector if sep else None)


def version_key(name: str, design_fp: str) -> str:
    """Store key of one (name, design) pair — publish is content-keyed."""
    return fingerprint(
        {"kind": VERSION_KIND, "name": name, "design": design_fp}
    )


class _IndexLock:
    """Cross-process mutex via ``O_CREAT|O_EXCL``; breaks stale locks."""

    def __init__(self, path: Path, timeout_s: float = 5.0) -> None:
        self.path = path
        self.timeout_s = timeout_s

    def __enter__(self) -> "_IndexLock":
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                return self
            except OSError as exc:
                if exc.errno != errno.EEXIST:
                    raise
            try:
                age = time.time() - self.path.stat().st_mtime
                if age > LOCK_STALE_S:
                    self.path.unlink()
                    continue
            except OSError:
                continue  # holder released between stat and unlink
            if time.monotonic() > deadline:
                raise RegistryError(
                    f"registry lock {self.path} held for >{self.timeout_s}s"
                )
            time.sleep(0.005)

    def __exit__(self, *exc: Any) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


class OverlayRegistry:
    """Named, versioned overlay designs over an artifact store."""

    def __init__(self, root: os.PathLike) -> None:
        self.store = ArtifactStore(root)
        self.index_dir = self.store.root / "registry"
        self.index_dir.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self.store.root

    # -- index plumbing -------------------------------------------------
    def _index_path(self, name: str) -> Path:
        if "/" in name or name.startswith("."):
            raise RegistryError(f"invalid overlay name {name!r}")
        return self.index_dir / f"{name}.json"

    def _lock(self, name: str) -> _IndexLock:
        return _IndexLock(self.index_dir / f"{name}.lock")

    def _read_index(self, name: str) -> Optional[Dict[str, Any]]:
        """The on-disk index, or ``None`` when absent **or torn**."""
        try:
            with open(self._index_path(name)) as f:
                doc = json.load(f)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(doc, dict) or not isinstance(
            doc.get("versions"), list
        ):
            return None
        return doc

    def _write_index(
        self,
        name: str,
        versions: List[OverlayVersion],
        pinned: Optional[int],
    ) -> None:
        doc = {
            "name": name,
            "versions": [v.as_doc() for v in versions],
            "pinned": pinned,
        }
        blob = json.dumps(doc, indent=2, sort_keys=True).encode("utf-8")
        ArtifactStore._write_atomic(
            self._index_path(name), lambda f: f.write(blob)
        )

    def _rebuild_from_sidecars(self, name: str) -> List[OverlayVersion]:
        """Recover the version list by scanning store meta sidecars.

        Run when the index is missing or torn.  Every published version
        wrote a ``kind=overlay_version`` sidecar next to its artifact,
        so the ordered list (minus the pin, which only the index holds)
        is always reconstructible.
        """
        found: List[OverlayVersion] = []
        for key in self.store.keys():
            meta = self.store.meta(key)
            if (
                not meta
                or meta.get("kind") != VERSION_KIND
                or meta.get("name") != name
            ):
                continue
            try:
                found.append(
                    OverlayVersion(
                        name=name,
                        version=int(meta["version"]),
                        key=key,
                        fingerprint=str(meta["fingerprint"]),
                        note=meta.get("note"),
                        published_at=float(meta.get("published_at", 0.0)),
                    )
                )
            except (KeyError, TypeError, ValueError):
                continue
        return sorted(found, key=lambda v: v.version)

    def _load(self, name: str) -> Tuple[List[OverlayVersion], Optional[int]]:
        """(ordered versions, pinned) — recovering a torn/missing index."""
        doc = self._read_index(name)
        if doc is None:
            versions = self._rebuild_from_sidecars(name)
            return versions, None
        versions = []
        for row in doc["versions"]:
            try:
                versions.append(
                    OverlayVersion(
                        name=name,
                        version=int(row["version"]),
                        key=str(row["key"]),
                        fingerprint=str(row["fingerprint"]),
                        note=row.get("note"),
                        published_at=float(row.get("published_at", 0.0)),
                    )
                )
            except (KeyError, TypeError, ValueError):
                # One torn row poisons the cache, not the registry.
                return self._rebuild_from_sidecars(name), None
        pinned = doc.get("pinned")
        return (
            sorted(versions, key=lambda v: v.version),
            int(pinned) if pinned is not None else None,
        )

    # -- public API -----------------------------------------------------
    def names(self) -> List[str]:
        """Every registered overlay name, sorted."""
        names = {p.stem for p in self.index_dir.glob("*.json")}
        # Sidecar scan catches names whose index was lost entirely.
        for key in self.store.keys():
            meta = self.store.meta(key)
            if meta and meta.get("kind") == VERSION_KIND:
                names.add(str(meta.get("name")))
        return sorted(n for n in names if n)

    def versions(self, name: str) -> List[OverlayVersion]:
        return self._load(name)[0]

    def pinned(self, name: str) -> Optional[int]:
        versions, pinned = self._load(name)
        if pinned is not None and any(v.version == pinned for v in versions):
            return pinned
        return None

    def publish(
        self,
        name: str,
        design_doc: Dict[str, Any],
        note: Optional[str] = None,
    ) -> OverlayVersion:
        """Register ``design_doc`` as the next version of ``name``.

        Idempotent per content: republishing a design whose fingerprint
        already exists under this name returns the existing version.
        """
        design_fp = fingerprint(design_doc)
        with self._lock(name):
            versions, pinned = self._load(name)
            for existing in versions:
                if existing.fingerprint == design_fp:
                    return existing
            entry = OverlayVersion(
                name=name,
                version=(versions[-1].version + 1) if versions else 1,
                key=version_key(name, design_fp),
                fingerprint=design_fp,
                note=note,
                published_at=time.time(),
            )
            self.store.put(
                entry.key,
                design_doc,
                meta={
                    "kind": VERSION_KIND,
                    "name": name,
                    "version": entry.version,
                    "fingerprint": entry.fingerprint,
                    "note": note,
                    "published_at": entry.published_at,
                },
            )
            self._write_index(name, versions + [entry], pinned)
        return entry

    def pin(self, name: str, version: int) -> OverlayVersion:
        """Make ``version`` the default resolution for bare ``name``."""
        with self._lock(name):
            versions, _pinned = self._load(name)
            entry = self._pick(name, versions, version)
            self._write_index(name, versions, entry.version)
        return entry

    def unpin(self, name: str) -> None:
        with self._lock(name):
            versions, _pinned = self._load(name)
            if not versions:
                raise RegistryError(f"unknown overlay name {name!r}")
            self._write_index(name, versions, None)

    def rollback(
        self, name: str, to_version: Optional[int] = None
    ) -> OverlayVersion:
        """Point the pin back at a previous version (non-destructive).

        Without ``to_version`` the pin moves one version before the
        currently active one (pin if set, else latest).  The rolled-back
        version stays published — rollback is a pointer move, exactly
        like re-pinning a model checkpoint.
        """
        with self._lock(name):
            versions, pinned = self._load(name)
            if not versions:
                raise RegistryError(f"unknown overlay name {name!r}")
            if to_version is None:
                active = pinned if pinned is not None else versions[-1].version
                earlier = [v for v in versions if v.version < active]
                if not earlier:
                    raise RegistryError(
                        f"{name}@v{active} has no earlier version to "
                        "roll back to"
                    )
                entry = earlier[-1]
            else:
                entry = self._pick(name, versions, to_version)
            self._write_index(name, versions, entry.version)
        return entry

    @staticmethod
    def _pick(
        name: str, versions: List[OverlayVersion], version: int
    ) -> OverlayVersion:
        for v in versions:
            if v.version == version:
                return v
        known = ", ".join(f"v{v.version}" for v in versions) or "none"
        raise RegistryError(
            f"unknown version v{version} for overlay {name!r} "
            f"(published: {known})"
        )

    def lookup(self, spec: str) -> OverlayVersion:
        """Resolve a spec to its version entry without loading the design."""
        name, selector = split_spec(spec)
        versions, pinned = self._load(name)
        if not versions:
            raise RegistryError(
                f"unknown overlay name {name!r}; registered: "
                f"{', '.join(self.names()) or 'none'}"
            )
        if selector is None:
            if pinned is not None:
                return self._pick(name, versions, pinned)
            return versions[-1]
        if selector == "latest":
            return versions[-1]
        text = selector[1:] if selector.startswith("v") else selector
        try:
            want = int(text)
        except ValueError:
            raise RegistryError(
                f"bad version selector {selector!r} in {spec!r}; expected "
                "'vN', 'N', or 'latest'"
            ) from None
        return self._pick(name, versions, want)

    def resolve(self, spec: str) -> ResolvedOverlay:
        """Spec -> entry + design document (raises on a missing artifact)."""
        name, selector = split_spec(spec)
        entry = self.lookup(spec)
        doc = self.store.get(entry.key)
        if not isinstance(doc, dict):
            raise RegistryError(
                f"design artifact for {entry.spec} is missing or corrupt "
                f"(store key {entry.key[:16]})"
            )
        return ResolvedOverlay(
            entry=entry, design_doc=doc, explicit=selector is not None
        )

    def list_doc(self) -> List[Dict[str, Any]]:
        """Plain-JSON listing of every name (CLI / stats consumption)."""
        rows = []
        for name in self.names():
            versions, pinned = self._load(name)
            if not versions:
                continue
            rows.append(
                {
                    "name": name,
                    "versions": len(versions),
                    "latest": versions[-1].version,
                    "pinned": pinned,
                    "fingerprint": versions[-1].fingerprint,
                }
            )
        return rows
