"""Spawn a whole cluster — N serve shards + the front-tier router.

``repro cluster serve`` needs shards that are real processes (each with
its own event loop, worker pool, and GIL — that is where the ≥3×
multi-shard throughput comes from), so the launcher shells out to
``python -m repro serve`` per shard, waits for every shard socket to
answer, then runs the :class:`~repro.cluster.router.ClusterRouter` in
the launching process until drain.

Shards listen on unix sockets under one run directory and share one
``--cache-dir`` artifact store (content-addressed and atomically
written, so concurrent shard writes are safe) plus one registry root,
which is how a single ``publish`` becomes visible to every shard.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from .router import ClusterRouter, RouterConfig, route_until_shutdown
from .topology import BackendSpec


@dataclass
class LauncherConfig:
    """One knob set for the whole cluster."""

    run_dir: str
    shards: int = 2
    #: Design JSON files every shard preloads (may be empty when a
    #: registry provides the overlays).
    designs: List[str] = field(default_factory=list)
    registry_dir: Optional[str] = None
    cache_dir: Optional[str] = None
    workers: int = 2
    queue_limit: int = 64
    default_timeout_s: float = 30.0
    #: Router listen endpoint (unix socket preferred).
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    health_interval_s: float = 2.0
    failover_retries: int = 2
    metrics_path: Optional[str] = None
    #: Seconds to wait for every shard socket to come up.
    startup_timeout_s: float = 30.0


class ClusterLauncher:
    """Own the shard processes; run the router until shutdown."""

    def __init__(self, config: LauncherConfig) -> None:
        if config.shards < 1:
            raise ValueError("cluster needs at least one shard")
        if not config.designs and not config.registry_dir:
            raise ValueError(
                "cluster shards need designs and/or a registry to serve"
            )
        self.config = config
        self.processes: List[subprocess.Popen] = []
        self.backends: List[BackendSpec] = []
        self.router: Optional[ClusterRouter] = None

    def shard_socket(self, index: int) -> str:
        return str(Path(self.config.run_dir) / f"shard-{index}.sock")

    def _shard_command(self, index: int) -> List[str]:
        cfg = self.config
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            *cfg.designs,
            "--socket",
            self.shard_socket(index),
            "--workers",
            str(cfg.workers),
            "--queue-limit",
            str(cfg.queue_limit),
            "--default-timeout",
            str(cfg.default_timeout_s),
        ]
        if cfg.cache_dir:
            cmd += ["--cache-dir", cfg.cache_dir]
        if cfg.registry_dir:
            cmd += ["--registry", cfg.registry_dir]
        if cfg.metrics_path:
            # Per-shard metrics file: concurrent appends to one JSONL
            # from N processes would interleave lines.
            cmd += [
                "--metrics",
                str(Path(cfg.run_dir) / f"metrics-shard-{index}.jsonl"),
            ]
        return cmd

    def spawn_shards(self) -> List[BackendSpec]:
        """Start every shard process and wait for its socket."""
        cfg = self.config
        Path(cfg.run_dir).mkdir(parents=True, exist_ok=True)
        for index in range(cfg.shards):
            log = open(
                Path(cfg.run_dir) / f"shard-{index}.log", "wb"
            )
            self.processes.append(
                subprocess.Popen(
                    self._shard_command(index),
                    stdout=log,
                    stderr=subprocess.STDOUT,
                    cwd=cfg.run_dir,
                )
            )
        deadline = time.monotonic() + cfg.startup_timeout_s
        for index, proc in enumerate(self.processes):
            sock = self.shard_socket(index)
            while not os.path.exists(sock):
                if proc.poll() is not None:
                    raise RuntimeError(
                        f"shard {index} exited with {proc.returncode} "
                        f"before listening; see "
                        f"{cfg.run_dir}/shard-{index}.log"
                    )
                if time.monotonic() > deadline:
                    self.terminate()
                    raise RuntimeError(
                        f"shard {index} socket {sock} never appeared "
                        f"within {cfg.startup_timeout_s}s"
                    )
                time.sleep(0.05)
            self.backends.append(
                BackendSpec(index=index, socket_path=sock)
            )
        return self.backends

    def router_config(self) -> RouterConfig:
        cfg = self.config
        return RouterConfig(
            backends=list(self.backends),
            socket_path=cfg.socket_path,
            host=cfg.host,
            port=cfg.port,
            registry_dir=cfg.registry_dir,
            health_interval_s=cfg.health_interval_s,
            failover_retries=cfg.failover_retries,
        )

    async def run(self) -> None:
        """Router foreground loop; returns after a graceful drain."""
        from ..engine.metrics import MetricsLogger

        self.router = ClusterRouter(
            self.router_config(),
            metrics=MetricsLogger(self.config.metrics_path),
        )
        try:
            await route_until_shutdown(self.router)
        finally:
            self.wait(timeout_s=self.config.startup_timeout_s)

    def wait(self, timeout_s: float = 30.0) -> List[int]:
        """Wait for shard processes to exit (router drain asked them to)."""
        codes: List[int] = []
        deadline = time.monotonic() + timeout_s
        for proc in self.processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                codes.append(proc.wait(timeout=remaining))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    codes.append(proc.wait(timeout=5.0))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    codes.append(proc.wait())
        return codes

    def terminate(self) -> None:
        """Hard stop every shard (error paths; drain uses ``wait``)."""
        for proc in self.processes:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.processes:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
