"""Deterministic request routing for the cluster front tier.

The router (and any topology-aware client) must agree on one rule for
"which shard owns this request", and that rule must be deterministic
across processes, platforms, and hash randomization — the same
requirements :class:`~repro.jobs.ShardPlan` already satisfies for work
splitting.  So routing *reuses* the plan: a request key is hashed into
a fixed ``SLOTS``-sized slot space (SHA-256, platform-stable), and
``ShardPlan(total=SLOTS, shards=N).shard_of(slot)`` assigns slots to
shards in the same contiguous, shard-count-deterministic way soak
shards own case indices.

Two routing keys exist:

* compute ops route on ``(overlay fingerprint, workload fingerprint)``
  — identical requests always land on the same shard, so that shard's
  single-flight coalescing and memory cache see *all* duplicates;
* ``remap`` routes on ``(registry base name, workload fingerprint)`` —
  the overlay fingerprint changes on every published version, but the
  schedule being preserved lives on the shard that served the previous
  version, so version continuity (the whole point of remap) requires
  name-keyed routing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..jobs import ShardPlan

#: Fixed slot-space size all routers and clients share.  Large enough
#: that the contiguous ShardPlan split balances well for any sane shard
#: count, small enough that a slot table is cheap to ship to clients.
SLOTS = 16384


def route_slot(overlay_key: str, workload_key: str) -> int:
    """Slot of one request; pure function of the two key strings."""
    blob = f"{overlay_key}\x00{workload_key}".encode("utf-8")
    return int.from_bytes(
        hashlib.sha256(blob).digest()[:8], "big"
    ) % SLOTS


def shard_of_slot(slot: int, shards: int) -> int:
    """Which of ``shards`` backends owns ``slot`` (ShardPlan math)."""
    return ShardPlan(total=SLOTS, shards=shards).shard_of(slot)


def route_shard(overlay_key: str, workload_key: str, shards: int) -> int:
    return shard_of_slot(route_slot(overlay_key, workload_key), shards)


@dataclass(frozen=True)
class BackendSpec:
    """How to reach one backend serve shard."""

    index: int
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0

    def as_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"index": self.index}
        if self.socket_path:
            doc["socket"] = self.socket_path
        else:
            doc["host"] = self.host
            doc["port"] = self.port
        return doc

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "BackendSpec":
        return cls(
            index=int(doc.get("index", 0)),
            socket_path=doc.get("socket"),
            host=doc.get("host", "127.0.0.1"),
            port=int(doc.get("port", 0)),
        )

    def describe(self) -> str:
        return self.socket_path or f"{self.host}:{self.port}"


@dataclass
class Topology:
    """The cluster map a router hands to topology-aware clients.

    ``overlays`` maps every served overlay name to its fingerprint so a
    client can compute the same routing key the router would; a client
    holding a Topology routes *exactly* like the router (same slot
    hash, same ShardPlan), which is what lets the data path go direct
    to shards without losing per-shard cache affinity.
    """

    shards: List[BackendSpec]
    slots: int = SLOTS
    overlays: Dict[str, str] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.shards)

    def shard_for(self, overlay_key: str, workload_key: str) -> BackendSpec:
        return self.shards[
            route_shard(overlay_key, workload_key, self.count)
        ]

    def as_doc(self) -> Dict[str, Any]:
        return {
            "slots": self.slots,
            "shards": [s.as_doc() for s in self.shards],
            "overlays": dict(sorted(self.overlays.items())),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "Topology":
        return cls(
            shards=[BackendSpec.from_doc(d) for d in doc.get("shards", [])],
            slots=int(doc.get("slots", SLOTS)),
            overlays=dict(doc.get("overlays", {})),
        )
