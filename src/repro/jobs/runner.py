"""The job runner: one batch loop for every sharded subsystem.

:class:`JobRunner` executes a batch of jobs through a pluggable executor
(see :mod:`repro.jobs.executors`) under a declarative
:class:`FaultPolicy`, with optional store-backed checkpoint/resume
(:class:`Checkpointing`) and unified observability: a ``jobs.run`` span
wrapping the batch (with per-job ``jobs.job`` spans on the serial path)
plus ``job_*`` JSONL metrics events that split wall-clock into
*scheduling* (resume scans, submission, result collection bookkeeping)
and *execution* (time inside jobs) so ``repro bench --compare`` can
attribute overhead.

The contracts every consumer (DSE engine, soak, serve) relies on:

* **Submission-order outcomes.** ``run`` returns one
  :class:`JobOutcome` per job, in the order the jobs were given — never
  completion order — so downstream event streams and merges are
  deterministic for any worker count.
* **Fault isolation.** A crashing or timed-out job becomes a recorded
  failure on its outcome; under the default ``degrade`` policy the rest
  of the batch still runs.  ``mode="fail"`` cancels the remainder after
  the first failure and raises.  If *every* job fails (and nothing was
  resumed from checkpoint) the batch raises regardless of mode unless
  ``all_failed_raises=False`` — consumers that want their own domain
  error (``EngineError``, ``SoakError``) pass ``False`` and inspect the
  outcomes.
* **Checkpoint/resume.** With :class:`Checkpointing`, each successful
  job result is pickled into an :class:`~repro.engine.store.ArtifactStore`
  under ``key_fn(job)``; with ``resume=True`` cached results are
  answered without re-execution.  Keys must be derived from
  work-content fingerprints that exclude worker/shard counts, so a
  campaign can resume under a different parallelism layout.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..profile.tracer import span


class JobsError(Exception):
    """Base error for the job runtime."""


class JobsFailedError(JobsError):
    """A batch failed as a whole; ``outcomes`` holds per-job detail."""

    def __init__(self, message: str, outcomes: Sequence["JobOutcome"] = ()):
        super().__init__(message)
        self.outcomes = list(outcomes)


@dataclass(frozen=True)
class FaultPolicy:
    """What the runner does when a job crashes or times out.

    ``mode="degrade"`` records the failure and keeps going (coverage
    degrades); ``mode="fail"`` cancels the rest of the batch after the
    first failure and raises :class:`JobsFailedError`.  ``timeout_s``
    bounds each job's wall-clock on executors that can preempt (the
    process pool; the in-process executor documents that it cannot).
    ``all_failed_raises`` controls the universal backstop: a batch where
    every executed job failed and nothing came from checkpoint raises
    even under ``degrade``.
    """

    mode: str = "degrade"
    timeout_s: Optional[float] = None
    all_failed_raises: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("degrade", "fail"):
            raise ValueError(
                f"FaultPolicy.mode must be 'degrade' or 'fail', "
                f"got {self.mode!r}"
            )


@dataclass
class JobOutcome:
    """What happened to one job."""

    index: int
    payload: Any
    result: Any = None
    error: Optional[str] = None
    timed_out: bool = False
    cached: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and not self.timed_out


@dataclass
class Checkpointing:
    """Store-backed checkpoint/resume for a batch.

    ``store`` is duck-typed to :class:`~repro.engine.store.ArtifactStore`
    (``get``/``put``).  ``key_fn(job)`` names each job's artifact —
    derive it from a content fingerprint that excludes worker/shard
    counts.  ``meta_fn(job, result)`` supplies the human-auditable
    sidecar; ``validate_fn(cached)`` rejects stale/foreign cache hits
    (return ``False`` to recompute).
    """

    store: Any
    key_fn: Callable[[Any], str]
    meta_fn: Optional[Callable[[Any, Any], Dict[str, Any]]] = None
    validate_fn: Optional[Callable[[Any], bool]] = None

    def load(self, job: Any) -> Any:
        """The cached result for ``job``, or None."""
        cached = self.store.get(self.key_fn(job))
        if cached is not None and self.validate_fn is not None:
            if not self.validate_fn(cached):
                return None
        return cached

    def save(self, job: Any, result: Any) -> None:
        # Normalize through one pickle round-trip before storing: a
        # result that crossed a worker-process boundary has a different
        # memo/sharing graph than the same value built in-process, and
        # would pickle to different bytes.  The round-trip is idempotent,
        # so serial and pool paths land on identical artifacts.
        result = pickle.loads(pickle.dumps(result))
        meta = self.meta_fn(job, result) if self.meta_fn else None
        self.store.put(self.key_fn(job), result, meta=meta)


@dataclass
class JobRunner:
    """Run a batch of jobs through ``executor`` under ``policy``."""

    executor: Any
    policy: FaultPolicy = field(default_factory=FaultPolicy)
    metrics: Any = None
    name: str = "jobs"

    def _emit(self, event: str, **fields: Any) -> None:
        if self.metrics is not None:
            self.metrics.emit(event, **fields)

    def run(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        checkpoint: Optional[Checkpointing] = None,
        resume: bool = False,
        label_fn: Optional[Callable[[Any], Any]] = None,
        on_outcome: Optional[Callable[[JobOutcome], None]] = None,
    ) -> List[JobOutcome]:
        """Execute ``fn(job)`` for every job; one outcome per job, in order.

        ``label_fn(job)`` names a job in metrics events (defaults to its
        index).  ``on_outcome`` is called for every outcome — cached,
        succeeded, or failed — in submission order, before any policy
        raise; consumers use it to emit their legacy domain events.
        """
        jobs = list(jobs)
        label = label_fn or (lambda job: None)
        started = perf_counter()
        execute_s = 0.0
        self._emit(
            "job_batch_start", runner=self.name, jobs=len(jobs),
            executor=getattr(self.executor, "kind", "unknown"),
        )
        with span("jobs.run", runner=self.name, jobs=len(jobs)):
            outcomes: Dict[int, JobOutcome] = {}
            pending: List[Any] = []
            if checkpoint is not None and resume:
                for index, job in enumerate(jobs):
                    cached = checkpoint.load(job)
                    if cached is None:
                        pending.append((index, job))
                        continue
                    outcome = JobOutcome(
                        index=index, payload=job, result=cached, cached=True
                    )
                    outcomes[index] = outcome
                    self._emit(
                        "job_cached", runner=self.name, job=label(job),
                        index=index,
                    )
                    if on_outcome is not None:
                        on_outcome(outcome)
            else:
                pending = list(enumerate(jobs))

            failed_fast = False
            for outcome in self.executor.execute(
                fn, pending,
                timeout_s=self.policy.timeout_s,
                fail_fast=self.policy.mode == "fail",
            ):
                outcomes[outcome.index] = outcome
                execute_s += outcome.wall_s
                job_name = label(outcome.payload)
                if outcome.ok:
                    if checkpoint is not None:
                        checkpoint.save(outcome.payload, outcome.result)
                    self._emit(
                        "job_done", runner=self.name, job=job_name,
                        index=outcome.index,
                        wall_s=round(outcome.wall_s, 6),
                    )
                elif outcome.timed_out:
                    failed_fast = failed_fast or self.policy.mode == "fail"
                    self._emit(
                        "job_timeout", runner=self.name, job=job_name,
                        index=outcome.index, error=outcome.error,
                    )
                else:
                    failed_fast = failed_fast or self.policy.mode == "fail"
                    self._emit(
                        "job_failed", runner=self.name, job=job_name,
                        index=outcome.index, error=outcome.error,
                    )
                if on_outcome is not None:
                    on_outcome(outcome)

        ordered = [outcomes[i] for i in sorted(outcomes)]
        wall_s = perf_counter() - started
        self._emit(
            "job_batch_end", runner=self.name, jobs=len(jobs),
            ok=sum(1 for o in ordered if o.ok),
            cached=sum(1 for o in ordered if o.cached),
            failed=sum(1 for o in ordered if not o.ok),
            mode=getattr(self.executor, "last_mode", "unknown"),
            wall_s=round(wall_s, 6),
            execute_s=round(execute_s, 6),
            schedule_s=round(max(0.0, wall_s - execute_s), 6),
        )

        failures = [o for o in ordered if not o.ok]
        if failed_fast and failures:
            first = failures[0]
            raise JobsFailedError(
                f"{self.name}: job {first.index} failed under fail "
                f"policy: {first.error}",
                ordered,
            )
        survivors = [o for o in ordered if o.ok]
        if jobs and not survivors and self.policy.all_failed_raises:
            detail = "; ".join(
                f"#{o.index}: {o.error}" for o in failures[:4]
            )
            raise JobsFailedError(
                f"{self.name}: all {len(jobs)} jobs failed: {detail}",
                ordered,
            )
        return ordered
