"""repro.jobs — sharded, fault-isolated, checkpointed job runtime.

One substrate under every parallel stage of the reproduction: the DSE
engine's multi-seed batches, soak's sharded fuzz campaigns, and the
serve worker pool all run through :class:`JobRunner` + a pluggable
executor, instead of hand-rolling ``ProcessPoolExecutor`` + serial
fallback + fault isolation + checkpoints three times.

Layout:

* :mod:`~repro.jobs.plan` — :class:`ShardPlan`, the deterministic,
  shard-count-invariant work split.
* :mod:`~repro.jobs.runner` — :class:`JobRunner`, :class:`FaultPolicy`,
  :class:`Checkpointing`, :class:`JobOutcome`, and the ``job_*``
  metrics / ``jobs.*`` span plumbing.
* :mod:`~repro.jobs.executors` — :class:`InProcessExecutor`,
  :class:`ProcessPoolJobExecutor` (owner of the one serial-fallback
  rule), :class:`SocketJobExecutor` (remote ``repro serve`` dispatch),
  and :func:`make_worker_pool` for long-lived pools.

Parallelism flag convention (mirrored by the CLI): ``--workers`` is how
many OS processes execute jobs (an execution detail — never changes
results); ``--shards`` is how work is split (also result-invariant by
the ShardPlan contract).  ``--jobs``/``-j`` survives as a deprecated
alias for ``--workers``.
"""

from .executors import (
    InProcessExecutor,
    ProcessPoolJobExecutor,
    SocketJobExecutor,
    make_worker_pool,
)
from .plan import Shard, ShardPlan
from .runner import (
    Checkpointing,
    FaultPolicy,
    JobOutcome,
    JobRunner,
    JobsError,
    JobsFailedError,
)

__all__ = [
    "Checkpointing",
    "FaultPolicy",
    "InProcessExecutor",
    "JobOutcome",
    "JobRunner",
    "JobsError",
    "JobsFailedError",
    "ProcessPoolJobExecutor",
    "Shard",
    "ShardPlan",
    "SocketJobExecutor",
    "make_worker_pool",
]
