"""Deterministic, shard-count-invariant work splitting.

A :class:`ShardPlan` divides a contiguous index range ``0..total`` into
``shards`` slices.  The split is the one rule every sharded subsystem
shares (soak campaigns, multi-seed DSE batches, the multi-node serve
front tier planned in the roadmap):

* **contiguous and complete** — concatenating the slices reproduces
  ``0..total`` exactly, in order;
* **deterministic** — the same ``(total, shards)`` always yields the
  same slices, independent of hash randomization, platform, or process;
* **shard-count-invariant merges** — because each slice is a contiguous
  run of *global* indices, per-item results can be replayed in global
  index order and any downstream aggregate is independent of how many
  shards executed them.  (This is why a soak triage report is
  byte-identical for ``--shards 1`` and ``--shards 8``.)

The arithmetic: ``base, extra = divmod(total, shards)`` — the first
``extra`` shards take ``base + 1`` items, the rest ``base``.  Requested
shard counts are clamped to at least 1; empty trailing shards (when
``shards > total``) are kept so shard *indices* stay stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the global index range."""

    index: int
    start: int
    count: int

    @property
    def stop(self) -> int:
        return self.start + self.count

    def indices(self) -> range:
        """The global indices this shard owns."""
        return range(self.start, self.stop)

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.stop


@dataclass(frozen=True)
class ShardPlan:
    """How ``total`` items split across ``shards`` workers."""

    total: int
    shards: int = 1

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ValueError(f"negative total: {self.total}")

    @property
    def count(self) -> int:
        """Effective shard count (requests below 1 clamp to 1)."""
        return max(1, int(self.shards))

    def ranges(self) -> List[Tuple[int, int]]:
        """Contiguous ``(start, count)`` slices covering ``0..total``."""
        shards = self.count
        base, extra = divmod(self.total, shards)
        ranges: List[Tuple[int, int]] = []
        start = 0
        for i in range(shards):
            count = base + (1 if i < extra else 0)
            ranges.append((start, count))
            start += count
        return ranges

    def slices(self) -> List[Shard]:
        """The same split as :meth:`ranges`, as :class:`Shard` objects."""
        return [
            Shard(index=i, start=start, count=count)
            for i, (start, count) in enumerate(self.ranges())
        ]

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.slices())

    def shard_of(self, index: int) -> int:
        """Which shard owns global item ``index``."""
        if not 0 <= index < self.total:
            raise IndexError(f"index {index} outside 0..{self.total}")
        base, extra = divmod(self.total, self.count)
        boundary = (base + 1) * extra
        if index < boundary:
            return index // (base + 1)
        return extra + (index - boundary) // base

    def scatter(self, items: Sequence[T]) -> List[Sequence[T]]:
        """Partition ``items`` (length ``total``) along the plan."""
        if len(items) != self.total:
            raise ValueError(
                f"plan covers {self.total} items, got {len(items)}"
            )
        return [items[s.start:s.stop] for s in self.slices()]
