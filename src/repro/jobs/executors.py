"""Pluggable executors for the job runtime.

All executors share one contract: ``execute(fn, pending, ...)`` yields a
:class:`~repro.jobs.runner.JobOutcome` per ``(index, payload)`` pair, in
submission order, isolating per-job faults (a crash becomes a recorded
failure, never an exception out of the loop).  Yielding in submission
order — not completion order — keeps every downstream event stream and
merge deterministic regardless of worker scheduling.

Three executors plus a pool factory:

* :class:`InProcessExecutor` — serial, in the calling process.  No
  pickling, no preemption: ``timeout_s`` cannot interrupt a running job
  and is ignored (documented engine behaviour since PR 4).
* :class:`ProcessPoolJobExecutor` — ``ProcessPoolExecutor``-backed with
  per-job wall-clock deadlines.  Owns *the* serial-fallback rule
  (``workers <= 1 or len(jobs) <= 1`` → run in-process) that the DSE
  engine and soak previously each hand-rolled, and degrades to the
  serial path when the sandbox offers no multiprocessing primitives
  (``OSError``).
* :class:`SocketJobExecutor` — dispatches each job as a request to a
  remote ``repro serve`` worker (or cluster router) over the JSON-lines
  protocol.  With a ``request_fn`` it speaks the typed compute ops
  (map/estimate/simulate/remap); without one it ships the ``fn(job)``
  closure itself through the serve-side generic ``job`` op, which is
  what multi-node soak and distributed DSE fan out over.

:func:`make_worker_pool` is the same process-else-thread fallback for
subsystems that need a long-lived ``concurrent.futures`` executor (the
serve compute pool) rather than batch semantics.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from time import perf_counter
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..profile.tracer import span
from .runner import JobOutcome

#: ``(index, payload)`` pairs as handed to an executor.
PendingJobs = Sequence[Tuple[int, Any]]


class InProcessExecutor:
    """Run every job serially in the calling process.

    The reference executor: no pickling (payloads that cannot cross a
    process boundary still run), exceptions recorded per job, and — by
    construction — identical results to any correct parallel executor.
    """

    kind = "in-process"
    workers = 1

    def __init__(self) -> None:
        self.last_mode = "serial"

    def execute(
        self,
        fn: Callable[[Any], Any],
        pending: PendingJobs,
        *,
        timeout_s: Optional[float] = None,
        fail_fast: bool = False,
    ) -> Iterator[JobOutcome]:
        # timeout_s is ignored: an in-process job cannot be preempted.
        self.last_mode = "serial"
        items = list(pending)
        for pos, (index, payload) in enumerate(items):
            t0 = perf_counter()
            try:
                with span("jobs.job", index=index):
                    result = fn(payload)
            except Exception as exc:
                yield JobOutcome(
                    index=index, payload=payload, result=None,
                    error=str(exc), wall_s=perf_counter() - t0,
                )
                if fail_fast:
                    for later_index, later_payload in items[pos + 1:]:
                        yield JobOutcome(
                            index=later_index, payload=later_payload,
                            result=None, error="cancelled (fail policy)",
                        )
                    return
                continue
            yield JobOutcome(
                index=index, payload=payload, result=result,
                wall_s=perf_counter() - t0,
            )


class ProcessPoolJobExecutor:
    """Worker-process pool with deadlines and the serial-fallback rule."""

    kind = "process-pool"

    def __init__(self, workers: int) -> None:
        self.workers = max(0, int(workers))
        self.last_mode = "serial"
        self._serial = InProcessExecutor()

    def execute(
        self,
        fn: Callable[[Any], Any],
        pending: PendingJobs,
        *,
        timeout_s: Optional[float] = None,
        fail_fast: bool = False,
    ) -> Iterator[JobOutcome]:
        items = list(pending)
        # THE serial-fallback rule (owned here, nowhere else): a pool
        # only pays when more than one worker can overlap more than one
        # job.  Every consumer inherits exactly this threshold.
        if self.workers <= 1 or len(items) <= 1:
            self.last_mode = "serial"
            yield from self._serial.execute(
                fn, items, timeout_s=timeout_s, fail_fast=fail_fast
            )
            return
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(items))
            )
            futures = [
                (index, payload, pool.submit(fn, payload))
                for index, payload in items
            ]
        except OSError:
            # No usable multiprocessing primitives (restricted
            # sandboxes) — degrade to the serial path.
            self.last_mode = "serial-fallback"
            yield from self._serial.execute(
                fn, items, timeout_s=timeout_s, fail_fast=fail_fast
            )
            return
        self.last_mode = "pool"
        # Every job's clock starts at submission, so a shared deadline of
        # started + timeout_s bounds each job's wall-clock individually.
        started = perf_counter()
        timed_out_any = False
        cancel_rest = False
        try:
            for index, payload, future in futures:
                if cancel_rest:
                    future.cancel()
                    try:
                        value = future.result(timeout=0)
                    except FutureTimeoutError:
                        yield JobOutcome(
                            index=index, payload=payload, result=None,
                            error="cancelled (fail policy)",
                        )
                        continue
                    except Exception as exc:
                        yield JobOutcome(
                            index=index, payload=payload, result=None,
                            error=str(exc),
                        )
                        continue
                    yield JobOutcome(
                        index=index, payload=payload, result=value,
                        wall_s=perf_counter() - started,
                    )
                    continue
                remaining: Optional[float] = None
                if timeout_s is not None:
                    remaining = max(0.0, started + timeout_s - perf_counter())
                try:
                    value = future.result(timeout=remaining)
                except FutureTimeoutError:
                    future.cancel()
                    timed_out_any = True
                    outcome = JobOutcome(
                        index=index, payload=payload, result=None,
                        error=f"timed out after {timeout_s}s",
                        timed_out=True,
                    )
                except Exception as exc:
                    outcome = JobOutcome(
                        index=index, payload=payload, result=None,
                        error=str(exc),
                    )
                else:
                    outcome = JobOutcome(
                        index=index, payload=payload, result=value,
                        wall_s=perf_counter() - started,
                    )
                yield outcome
                if not outcome.ok and fail_fast:
                    cancel_rest = True
        finally:
            # On a timeout, don't join hung workers — cancel whatever is
            # still queued and let the orphaned process die on its own.
            abandon = timed_out_any or cancel_rest
            pool.shutdown(wait=not abandon, cancel_futures=abandon)


class SocketJobExecutor:
    """Dispatch jobs to a remote ``repro serve`` worker over its socket.

    Two modes share the connection/fault plumbing:

    * ``request_fn(payload)`` adapts one job to the keyword arguments
      of :meth:`repro.serve.client.ServeClient.request` (``op``,
      ``workload``, ``overlay``, ``timeout_s``) — the typed compute
      path.
    * Without ``request_fn``, the executor ships ``fn(payload)``
      itself: the pair is pickled through the serve-side generic
      ``job`` op and the unpickled return value lands in
      ``JobOutcome.result`` — byte-for-byte what a local executor
      would have produced.  ``fn`` must be an importable module-level
      callable (the standard process-pool constraint), and the target
      must be a trusted server (the job op executes pickled closures).

    All jobs are fired concurrently (bounded by ``concurrency``) over
    one pipelined connection; outcomes come back in submission order.
    A structured serve error (bad request, overloaded, deadline) is a
    recorded per-job failure, never an exception — the same fault
    isolation the local executors give.  Remote ``deadline`` errors map
    onto ``timed_out`` so :class:`~repro.jobs.runner.FaultPolicy`
    treats local and remote expiry identically.
    """

    kind = "socket"

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        request_fn: Optional[Callable[[Any], dict]] = None,
        concurrency: int = 8,
    ) -> None:
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.request_fn = request_fn
        self.concurrency = max(1, int(concurrency))
        self.last_mode = "socket"

    def execute(
        self,
        fn: Callable[[Any], Any],
        pending: PendingJobs,
        *,
        timeout_s: Optional[float] = None,
        fail_fast: bool = False,
    ) -> Iterator[JobOutcome]:
        # Jobs are all in flight before the first outcome is observed,
        # so fail-fast cannot cancel siblings; the policy still raises.
        import asyncio

        if self.request_fn is None and not callable(fn):
            raise ValueError(
                "SocketJobExecutor without a request_fn ships fn itself "
                "through the generic job op; fn must be callable"
            )
        self.last_mode = "socket" if self.request_fn else "socket-job"
        yield from asyncio.run(self._dispatch(fn, list(pending), timeout_s))

    async def _dispatch(
        self,
        fn: Callable[[Any], Any],
        items: List[Tuple[int, Any]],
        timeout_s: Optional[float],
    ) -> List[JobOutcome]:
        import asyncio

        from ..serve.client import ServeClient
        from ..serve.errors import ServeError
        from ..serve.ops import pack_job, unpack_job_result

        limit = asyncio.Semaphore(self.concurrency)

        async def one(client: ServeClient, index: int, payload: Any) -> JobOutcome:
            if self.request_fn is not None:
                kwargs = dict(self.request_fn(payload))
                generic = False
            else:
                kwargs = {
                    "op": "job",
                    "options": {"payload": pack_job(fn, payload)},
                }
                generic = True
            if timeout_s is not None:
                kwargs.setdefault("timeout_s", timeout_s)
            t0 = perf_counter()
            async with limit:
                try:
                    result = await client.request(**kwargs)
                    if generic:
                        result = unpack_job_result(result["payload"])
                except ServeError as exc:
                    return JobOutcome(
                        index=index, payload=payload, result=None,
                        error=str(exc),
                        timed_out=getattr(exc, "code", "") == "deadline",
                        wall_s=perf_counter() - t0,
                    )
                except Exception as exc:
                    return JobOutcome(
                        index=index, payload=payload, result=None,
                        error=str(exc), wall_s=perf_counter() - t0,
                    )
            return JobOutcome(
                index=index, payload=payload, result=result,
                wall_s=perf_counter() - t0,
            )

        async with ServeClient(
            socket_path=self.socket_path, host=self.host, port=self.port
        ) as client:
            return list(
                await asyncio.gather(
                    *(one(client, index, payload) for index, payload in items)
                )
            )


def make_worker_pool(
    workers: int,
    on_fallback: Optional[Callable[[int], None]] = None,
    thread_name_prefix: str = "jobs-worker",
) -> Tuple[Executor, str]:
    """A long-lived ``concurrent.futures`` pool with the shared fallback.

    Process pool when ``workers > 0`` and the sandbox allows
    subprocesses; otherwise an in-process thread pool (``workers == 0``
    explicitly requests threads — used by tests and async servers that
    monkeypatch the worker entry point).  Returns ``(executor, kind)``
    where kind is ``"process"`` or ``"thread"``.
    """
    if workers > 0:
        try:
            return ProcessPoolExecutor(max_workers=workers), "process"
        except OSError:
            if on_fallback is not None:
                on_fallback(workers)
    return (
        ThreadPoolExecutor(
            max_workers=max(1, workers or 1),
            thread_name_prefix=thread_name_prefix,
        ),
        "thread",
    )
