"""Memory-enhanced dataflow graphs (mDFGs), Section IV of the paper."""

from .graph import MDFG, MdfgError, Node
from .nodes import (
    ArrayNode,
    ArrayPlacement,
    ComputeNode,
    DfgEdge,
    InputPortNode,
    OutputPortNode,
    StreamKind,
    StreamNode,
)

__all__ = [
    "ArrayNode",
    "ArrayPlacement",
    "ComputeNode",
    "DfgEdge",
    "InputPortNode",
    "MDFG",
    "MdfgError",
    "Node",
    "OutputPortNode",
    "StreamKind",
    "StreamNode",
]
