"""Node types of the memory-enhanced dataflow graph (mDFG).

The mDFG (Section IV of the paper) extends a classic spatial DFG — compute
instructions plus vector ports — with *stream* nodes carrying access-pattern
and reuse annotations, and *array* nodes representing the data structures
those streams touch.  Array nodes are what the spatial scheduler binds to
memory engines (scratchpad/DMA), making the memory system part of the
spatial design space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..ir import Affine, DType, Op


class StreamKind(enum.Enum):
    """Which stream-engine family can execute a stream (Section III-B)."""

    MEMORY_READ = "read"       # DMA or scratchpad read
    MEMORY_WRITE = "write"     # DMA or scratchpad write
    RECURRENCE = "recurrence"  # loop-carried value, out-port -> in-port
    GENERATE = "generate"      # affine value sequence
    REGISTER = "register"      # scalar collection to the control core

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ArrayPlacement(enum.Enum):
    """Where the compiler would like an array to live."""

    SPAD = "spad"
    DRAM = "dram"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ComputeNode:
    """One (possibly vectorized) instruction of the compute fabric.

    ``lanes`` counts SIMD lanes from unrolling; a lane executes on one
    functional unit, so a node with 4 lanes of ``f64`` needs a 256-bit PE
    datapath (or decomposes onto subword-SIMD units).
    """

    node_id: int
    op: Op
    dtype: DType
    lanes: int = 1
    operands: Tuple[int, ...] = ()
    #: accumulator nodes keep a running value in the PE (self-loop operand);
    #: they implement innermost-loop reductions without memory traffic.
    accumulator: bool = False

    @property
    def width_bits(self) -> int:
        return self.dtype.bits * self.lanes


@dataclass
class InputPortNode:
    """A vector input port: synchronizes a stream with the fabric.

    Attributes:
        width_bytes: ingest rate in bytes/cycle (lanes * element size).
        stationary: number of fabric firings each value is held/replayed
            for (stationary reuse captured in the port FIFO; 1 = none).
        needs_padding: stream length is not a multiple of the port width,
            so the port must support automatic padding (Section III-B).
    """

    node_id: int
    width_bytes: int
    stationary: int = 1
    needs_padding: bool = False


@dataclass
class OutputPortNode:
    """A vector output port: carries fabric results to a stream."""

    node_id: int
    width_bytes: int


@dataclass
class StreamNode:
    """A coarse-grained access/communication pattern (one stream).

    Reuse annotations follow Section IV-B:

    * ``traffic`` — elements touched over the region (product of trip
      counts for every loop, divided across vector lanes at execution).
    * ``footprint`` — distinct elements touched (affine range size).
    * ``stationary_reuse`` — consecutive reuses of one element at the port
      (innermost loop absent from the index expression).
    * ``recurrent_pair`` — node id of the matching write/read stream when
      this stream participates in a read-modify-write recurrence.
    """

    node_id: int
    kind: StreamKind
    array: Optional[str]
    dtype: DType
    port: int                      # node id of the Input/OutputPortNode
    lanes: int = 1
    pattern: Optional[Affine] = None
    indirect: bool = False
    traffic: int = 0
    footprint: int = 0
    stationary_reuse: int = 1
    #: DRAM/L2 line-overfetch multiplier for strided access: a stream with
    #: inner stride s touches s-x more line bytes than it consumes (until
    #: the whole line is skipped).  1.0 for unit-stride/stationary access.
    stride_overfetch: float = 1.0
    recurrent_pair: Optional[int] = None
    #: elements between recurrence hand-offs (pipeline concurrency needed)
    recurrence_depth: int = 0

    @property
    def is_memory(self) -> bool:
        return self.kind in (StreamKind.MEMORY_READ, StreamKind.MEMORY_WRITE)

    @property
    def general_reuse(self) -> float:
        """Average times each element is touched (traffic / footprint)."""
        if self.footprint <= 0:
            return 1.0
        return max(1.0, self.traffic / self.footprint)

    @property
    def bytes_per_cycle(self) -> int:
        """Peak bandwidth demand when the fabric runs at full rate."""
        return self.lanes * self.dtype.bytes


@dataclass
class ArrayNode:
    """A data structure referenced by one or more streams.

    ``footprint_bytes`` already includes double-buffering headroom when the
    array is a scratchpad candidate, per Section IV-A.
    """

    node_id: int
    array: str
    dtype: DType
    size_elems: int
    footprint_bytes: int
    traffic_bytes: int
    preferred: ArrayPlacement = ArrayPlacement.DRAM
    streams: Tuple[int, ...] = ()
    indirect_target: bool = False
    #: the array splits across tiles (its access patterns involve a
    #: parallel loop), so each tile's scratchpad only needs its slice.
    partitionable: bool = False

    @property
    def memory_reuse(self) -> float:
        """Array-level reuse (traffic/footprint); >1 favors scratchpad."""
        if self.footprint_bytes <= 0:
            return 1.0
        return max(1.0, self.traffic_bytes / self.footprint_bytes)


@dataclass(frozen=True)
class DfgEdge:
    """A value edge: producer node -> consumer node (operand ``slot``)."""

    src: int
    dst: int
    slot: int = 0
