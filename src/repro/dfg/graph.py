"""The mDFG container and its invariants.

An :class:`MDFG` is produced per (workload, transformation-variant) by the
compiler.  It owns four node families (compute / ports / streams / arrays)
plus value edges, and carries enough metadata for the performance model
(instruction bandwidth, loop structure) and the dispatcher (stream counts,
configuration size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..ir import DType
from .nodes import (
    ArrayNode,
    ArrayPlacement,
    ComputeNode,
    DfgEdge,
    InputPortNode,
    OutputPortNode,
    StreamKind,
    StreamNode,
)

Node = Union[ComputeNode, InputPortNode, OutputPortNode, StreamNode, ArrayNode]


class MdfgError(ValueError):
    """Raised when an mDFG violates a structural invariant."""


class MDFG:
    """Memory-enhanced dataflow graph for one compiled program region."""

    def __init__(
        self,
        workload: str,
        variant: str,
        unroll: int,
        dtype: DType,
        iterations: float,
        inner_trip: int,
        tile_parallelism: float = 1.0,
    ):
        self.workload = workload
        self.variant = variant
        self.unroll = unroll
        self.dtype = dtype
        #: total innermost-iteration count of the region (effective, i.e.
        #: variable-trip loops counted at their average trip).
        self.iterations = iterations
        #: innermost-loop trip count (bounds useful vectorization).
        self.inner_trip = inner_trip
        #: independent coarse-grain work items available for multi-tile
        #: partitioning (trip of the outermost parallel loop).
        self.tile_parallelism = tile_parallelism
        self._nodes: Dict[int, Node] = {}
        self._edges: List[DfgEdge] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add(self, factory) -> int:
        node_id = self._next_id
        self._next_id += 1
        node = factory(node_id)
        self._nodes[node_id] = node
        return node_id

    def add_compute(self, op, dtype, lanes=1, operands=(), accumulator=False) -> int:
        nid = self._add(
            lambda i: ComputeNode(i, op, dtype, lanes, tuple(operands), accumulator)
        )
        for slot, src in enumerate(operands):
            self.add_edge(src, nid, slot)
        return nid

    def add_input_port(self, width_bytes, stationary=1, needs_padding=False) -> int:
        return self._add(
            lambda i: InputPortNode(i, width_bytes, stationary, needs_padding)
        )

    def add_output_port(self, width_bytes) -> int:
        return self._add(lambda i: OutputPortNode(i, width_bytes))

    def add_stream(self, **kwargs) -> int:
        nid = self._add(lambda i: StreamNode(node_id=i, **kwargs))
        stream = self._nodes[nid]
        assert isinstance(stream, StreamNode)
        # Streams feeding the fabric produce into their (input) port; streams
        # draining the fabric consume from their (output) port.  Record the
        # direction as a value edge so the scheduler can route memory<->port
        # connections on the ADG.  Recurrence streams come in both flavors.
        if isinstance(self._nodes[stream.port], OutputPortNode):
            self.add_edge(stream.port, nid)
        else:
            self.add_edge(nid, stream.port)
        return nid

    def add_array(self, **kwargs) -> int:
        return self._add(lambda i: ArrayNode(node_id=i, **kwargs))

    def add_edge(self, src: int, dst: int, slot: int = 0) -> None:
        if src not in self._nodes or dst not in self._nodes:
            raise MdfgError(f"edge {src}->{dst} references unknown node")
        self._edges.append(DfgEdge(src, dst, slot))

    def attach_streams(self, array_id: int, stream_ids: Tuple[int, ...]) -> None:
        node = self.array_node(array_id)
        node.streams = tuple(node.streams) + tuple(stream_ids)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self._nodes[node_id]

    def array_node(self, node_id: int) -> ArrayNode:
        node = self._nodes[node_id]
        if not isinstance(node, ArrayNode):
            raise MdfgError(f"node {node_id} is not an array node")
        return node

    @property
    def edges(self) -> Tuple[DfgEdge, ...]:
        return tuple(self._edges)

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def _of_type(self, cls) -> List:
        return [n for n in self._nodes.values() if isinstance(n, cls)]

    @property
    def compute_nodes(self) -> List[ComputeNode]:
        return self._of_type(ComputeNode)

    @property
    def input_ports(self) -> List[InputPortNode]:
        return self._of_type(InputPortNode)

    @property
    def output_ports(self) -> List[OutputPortNode]:
        return self._of_type(OutputPortNode)

    @property
    def streams(self) -> List[StreamNode]:
        return self._of_type(StreamNode)

    @property
    def arrays(self) -> List[ArrayNode]:
        return self._of_type(ArrayNode)

    @property
    def memory_streams(self) -> List[StreamNode]:
        return [s for s in self.streams if s.is_memory]

    def fabric_edges(self) -> List[DfgEdge]:
        """Edges routed over the compute fabric (port/compute endpoints)."""
        fabric_types = (ComputeNode, InputPortNode, OutputPortNode)
        return [
            e
            for e in self._edges
            if isinstance(self._nodes[e.src], fabric_types)
            and isinstance(self._nodes[e.dst], fabric_types)
        ]

    def predecessors(self, node_id: int) -> List[int]:
        return [e.src for e in self._edges if e.dst == node_id]

    def successors(self, node_id: int) -> List[int]:
        return [e.dst for e in self._edges if e.src == node_id]

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def insts_per_cycle(self) -> float:
        """Peak instruction bandwidth of this DFG (Eq. 1's ``mDFG Insts``).

        Every compute node fires each cycle in steady state; memory
        operations (one per memory stream) are counted too so that pure
        data-movement DFGs still reward vectorization.  Lanes multiply.
        """
        compute = sum(n.lanes for n in self.compute_nodes)
        memory = sum(s.lanes for s in self.streams if s.is_memory)
        return float(compute + memory)

    @property
    def total_instructions(self) -> float:
        """Dynamic instruction count of the region (for IPC accounting).

        Defined as instructions-per-firing x firings so that simulator IPC
        (instructions / measured cycles) is directly comparable with the
        analytical model's Eq. 1 (which also counts lane-weighted
        instructions per cycle).
        """
        firings = self.iterations / max(1, self.unroll)
        return self.insts_per_cycle * firings

    @property
    def config_words(self) -> int:
        """Size of the spatial configuration bitstream, in 64-bit words.

        Each mapped entity contributes configuration state; used for the
        reconfiguration-time model (Fig. 17).
        """
        return (
            4 * len(self.compute_nodes)
            + 2 * (len(self.input_ports) + len(self.output_ports))
            + 6 * len(self.streams)
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`MdfgError`."""
        for edge in self._edges:
            if edge.src not in self._nodes or edge.dst not in self._nodes:
                raise MdfgError(f"dangling edge {edge}")
        for node in self.compute_nodes:
            for operand in node.operands:
                if operand not in self._nodes:
                    raise MdfgError(
                        f"compute node {node.node_id} operand {operand} missing"
                    )
        for stream in self.streams:
            port = self._nodes.get(stream.port)
            if stream.kind in (StreamKind.MEMORY_WRITE, StreamKind.REGISTER):
                if not isinstance(port, OutputPortNode):
                    raise MdfgError(
                        f"write/register stream {stream.node_id} must target "
                        f"an output port, got {type(port).__name__}"
                    )
            elif stream.kind is StreamKind.RECURRENCE:
                if not isinstance(port, (InputPortNode, OutputPortNode)):
                    raise MdfgError(
                        f"recurrence stream {stream.node_id} must target a "
                        f"port, got {type(port).__name__}"
                    )
            elif not isinstance(port, InputPortNode):
                raise MdfgError(
                    f"stream {stream.node_id} ({stream.kind}) must target an "
                    f"input port, got {type(port).__name__}"
                )
            if stream.is_memory and stream.array is None:
                raise MdfgError(f"memory stream {stream.node_id} has no array")
        stream_ids = {s.node_id for s in self.streams}
        for array in self.arrays:
            for sid in array.streams:
                if sid not in stream_ids:
                    raise MdfgError(
                        f"array {array.array} references unknown stream {sid}"
                    )
        # Recurrence pairing must be symmetric.
        by_id = {s.node_id: s for s in self.streams}
        for stream in self.streams:
            pair = stream.recurrent_pair
            if pair is not None:
                other = by_id.get(pair)
                if other is None or other.recurrent_pair != stream.node_id:
                    raise MdfgError(
                        f"stream {stream.node_id} has asymmetric recurrence "
                        f"pairing with {pair}"
                    )

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.workload}/{self.variant}: unroll={self.unroll} "
            f"compute={len(self.compute_nodes)} ivp={len(self.input_ports)} "
            f"ovp={len(self.output_ports)} streams={len(self.streams)} "
            f"arrays={len(self.arrays)}"
        )
