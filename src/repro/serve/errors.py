"""Structured errors for the overlay-compilation service.

Every failure the server can hand back to a client has a stable machine
code (``error.code`` in the response document) so load generators and
callers can branch without parsing prose:

* ``bad_request`` — malformed JSON, unknown op/overlay/workload,
  nonsensical fields.  The client's fault; retrying is pointless.
* ``overloaded``  — admission control rejected the request because the
  bounded queue is full.  Transient; back off and retry.
* ``deadline``    — the request's deadline expired while queued or
  computing.  The underlying compile keeps running and lands in the
  artifact store, so a retry is usually a cache hit.
* ``unmappable``  — the workload does not schedule onto the overlay.
  A *successful* negative answer: deterministic, cacheable, final.
* ``shutting_down`` — the server is draining and accepts no new work.
* ``internal``    — an unexpected exception inside the worker.

``ServeError.to_doc()`` is the wire form; :func:`error_from_doc` is the
client-side inverse.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type


class ServeError(Exception):
    """Base class: a failure with a stable wire code."""

    code = "internal"
    #: Whether a client retry can plausibly succeed without any change.
    retryable = False

    def to_doc(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": str(self),
            "retryable": self.retryable,
        }


class BadRequestError(ServeError):
    code = "bad_request"
    retryable = False


class OverloadedError(ServeError):
    code = "overloaded"
    retryable = True


class DeadlineError(ServeError):
    code = "deadline"
    retryable = True


class UnmappableError(ServeError):
    code = "unmappable"
    retryable = False


class ShuttingDownError(ServeError):
    code = "shutting_down"
    retryable = True


class InternalError(ServeError):
    code = "internal"
    retryable = False


_BY_CODE: Dict[str, Type[ServeError]] = {
    cls.code: cls
    for cls in (
        BadRequestError,
        OverloadedError,
        DeadlineError,
        UnmappableError,
        ShuttingDownError,
        InternalError,
    )
}


def error_from_doc(doc: Optional[Dict[str, Any]]) -> ServeError:
    """Rebuild the typed exception a response's ``error`` field encodes."""
    if not isinstance(doc, dict):
        return InternalError("malformed error document")
    cls = _BY_CODE.get(str(doc.get("code", "")), InternalError)
    return cls(str(doc.get("message", "")))
