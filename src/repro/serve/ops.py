"""The compute ops served by ``repro serve`` — and the single-shot path.

Each op is a pure function of ``(overlay design, workload)`` returning a
plain-JSON *result document*.  The same functions back three callers:

* the server's worker-pool processes (:func:`compute_op` is a
  module-level function, so it pickles to worker processes);
* the single-shot CLI path (``repro map/simulate --json``), which is the
  byte-identity reference the load tests compare against;
* the artifact store, which persists result documents keyed by
  :func:`result_key` so a restarted server answers warm.

Result documents deliberately contain only JSON scalars/containers and
are rendered with :func:`~repro.serve.protocol.canonical_dumps`, so
"identical result" is a byte comparison, not a float-tolerance argument.
"""

from __future__ import annotations

import base64
import pickle
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..adg import SysADG, sysadg_from_dict, sysadg_to_dict
from ..compiler import generate_variants
from ..engine.hashing import (
    CODE_SCHEMA_VERSION,
    fingerprint,
    workload_fingerprint,
)
from ..scheduler import revalidate_schedule, schedule_workload
from ..sim import simulate_batch, simulate_schedule
from ..workloads import get_workload
from .errors import BadRequestError, UnmappableError
from .protocol import COMPUTE_OPS, PROTOCOL_VERSION


def overlay_fingerprint(sysadg: SysADG) -> str:
    """Content digest of a full system design (ADG + system params)."""
    return fingerprint(sysadg_to_dict(sysadg))


def result_key(overlay_fp: str, workload_fp: str, op: str) -> str:
    """Content address of one served result.

    This is both the single-flight coalescing key (two in-flight
    requests with the same key share one compile) and the artifact-store
    key (a previously served result is returned without recomputing).
    """
    return fingerprint(
        {
            "kind": "serve_result",
            "protocol": PROTOCOL_VERSION,
            "schema": CODE_SCHEMA_VERSION,
            "overlay": overlay_fp,
            "workload": workload_fp,
            "op": op,
        }
    )


def _resolve_workload(name: str):
    try:
        return get_workload(name)
    except KeyError as exc:
        msg = str(exc.args[0]) if exc.args else str(exc)
        raise BadRequestError(msg) from exc


def _schedule(sysadg: SysADG, workload_name: str):
    workload = _resolve_workload(workload_name)
    variants = generate_variants(workload)
    schedule = schedule_workload(variants, sysadg.adg, sysadg.params)
    if schedule is None:
        raise UnmappableError(
            f"{workload_name} does not map onto {sysadg.name}"
        )
    return schedule


def _estimate_doc(schedule) -> Dict[str, Any]:
    est = schedule.estimate
    doc: Dict[str, Any] = {
        "ipc": est.ipc if est else 0.0,
        "bottleneck": est.bottleneck if est else "none",
        "tiles_used": est.tiles_used if est else 0.0,
        "insts_per_cycle": est.insts_per_cycle if est else 0.0,
        "factors": dict(sorted(est.factors.items())) if est else {},
    }
    return doc


def _schedule_doc(
    op: str, sysadg: SysADG, workload_name: str, schedule
) -> Dict[str, Any]:
    return {
        "op": op,
        "overlay": sysadg.name,
        "workload": workload_name,
        "variant": schedule.mdfg.variant,
        "summary": schedule.summary(),
        "placed": len(schedule.placement),
        "routes": len(schedule.routes),
        "config_words": schedule.mdfg.config_words,
        "estimate": _estimate_doc(schedule),
    }


def map_op(sysadg: SysADG, workload_name: str) -> Dict[str, Any]:
    """Compile + schedule ``workload_name`` onto the overlay."""
    schedule = _schedule(sysadg, workload_name)
    return _schedule_doc("map", sysadg, workload_name, schedule)


def estimate_op(sysadg: SysADG, workload_name: str) -> Dict[str, Any]:
    """Schedule + bottleneck-model estimate only (no cycle simulation)."""
    schedule = _schedule(sysadg, workload_name)
    return {
        "op": "estimate",
        "overlay": sysadg.name,
        "workload": workload_name,
        "variant": schedule.mdfg.variant,
        "estimate": _estimate_doc(schedule),
    }


def _simulate_doc(
    sysadg: SysADG, workload_name: str, result
) -> Dict[str, Any]:
    return {
        "op": "simulate",
        "overlay": sysadg.name,
        "workload": workload_name,
        "variant": result.variant,
        "cycles": result.cycles,
        "seconds": result.seconds(sysadg.params.frequency_mhz),
        "ipc": result.ipc,
        "instructions": result.instructions,
        "tiles_used": result.tiles_used,
        "extrapolated": result.extrapolated,
        "fabric_stalls": result.fabric_stalls,
    }


def simulate_op(sysadg: SysADG, workload_name: str) -> Dict[str, Any]:
    """Full cycle-level simulation of the scheduled workload."""
    schedule = _schedule(sysadg, workload_name)
    result = simulate_schedule(schedule, sysadg)
    return _simulate_doc(sysadg, workload_name, result)


def simulate_batch_op(
    sysadg: SysADG, workload_names: Sequence[str]
) -> List[Optional[Dict[str, Any]]]:
    """Batched :func:`simulate_op`: one stepping pass over many workloads.

    Returns one document per input name (field-identical to the doc
    :func:`simulate_op` would serve for that name) in input order, with
    ``None`` for workloads that do not map onto the overlay.  Shares the
    compiled stepping kernel warm-up and content-key dedupe of
    :func:`repro.sim.simulate_batch`.
    """
    schedules: List[Optional[Any]] = []
    for name in workload_names:
        try:
            schedules.append(_schedule(sysadg, name))
        except UnmappableError:
            schedules.append(None)
    items = [(s, sysadg) for s in schedules if s is not None]
    stepped = iter(simulate_batch(items))
    docs: List[Optional[Dict[str, Any]]] = []
    for name, schedule in zip(workload_names, schedules):
        if schedule is None:
            docs.append(None)
        else:
            docs.append(_simulate_doc(sysadg, name, next(stepped)))
    return docs


def split_workloads(workload_field: str) -> List[str]:
    """Split a request's comma-separated ``workload`` field."""
    names = [n.strip() for n in workload_field.split(",") if n.strip()]
    if not names:
        raise BadRequestError(
            f"no workload names in {workload_field!r}"
        )
    return names


def simulate_batch_doc(
    sysadg: SysADG, workload_field: str
) -> Dict[str, Any]:
    """Wire form of :func:`simulate_batch_op` for one request.

    ``results[i]`` is field-identical to the document ``simulate`` would
    serve for ``workloads[i]`` (``null`` when unmappable), so a client
    fanning a batch out as N ``simulate`` requests and a client sending
    one ``simulate_batch`` can be diffed doc-for-doc.
    """
    names = split_workloads(workload_field)
    return {
        "op": "simulate_batch",
        "overlay": sysadg.name,
        "workloads": list(names),
        "results": simulate_batch_op(sysadg, names),
    }


def _remap_schedule(
    sysadg: SysADG, workload_name: str, prior_schedule
) -> Tuple[Any, str]:
    """(schedule, path) where path ∈ preserved / recompiled / cold.

    The OverGen Fig. 18 story as an op: when the caller holds the
    schedule served for a *previous version* of this overlay,
    :func:`~repro.scheduler.revalidate_schedule` keeps it wholesale
    (no placement, no routing — the 6.8× fast path measured in
    BENCH_dse.json) and only a failed revalidation pays for a full
    recompile.
    """
    if prior_schedule is not None:
        kept = revalidate_schedule(
            prior_schedule, sysadg.adg, sysadg.params
        )
        if kept is not None:
            return kept, "preserved"
        return _schedule(sysadg, workload_name), "recompiled"
    return _schedule(sysadg, workload_name), "cold"


def remap_op(sysadg: SysADG, workload_name: str) -> Dict[str, Any]:
    """Single-shot ``remap`` (no prior schedule: always a cold compile).

    The result document deliberately omits the preservation path — it
    depends on server-side schedule history, and result documents must
    be byte-identical across serving configurations.  The server
    reports the path out-of-band (``served.remap`` + counters).
    """
    schedule, _path = _remap_schedule(sysadg, workload_name, None)
    return _schedule_doc("remap", sysadg, workload_name, schedule)


def remap_compute(
    design_doc: Dict[str, Any],
    workload_name: str,
    prior_schedule=None,
) -> Tuple[Dict[str, Any], str, Any]:
    """Worker-pool entry for ``remap``: (doc, path, schedule).

    Returns the schedule itself (plain picklable dataclass) so the
    server can retain it as the prior for the overlay's *next* version.
    """
    sysadg = sysadg_from_dict(design_doc)
    schedule, path = _remap_schedule(sysadg, workload_name, prior_schedule)
    return _schedule_doc("remap", sysadg, workload_name, schedule), path, schedule


def pack_job(fn: Callable[[Any], Any], payload: Any) -> str:
    """Encode one ``fn(payload)`` closure for the wire ``job`` op.

    The closure is pickled, so ``fn`` must be an importable module-level
    callable on the server side too — the same constraint every process
    pool imposes.  The server executes jobs on its worker pool with no
    further validation: the job op is for trusted transports
    (``SocketJobExecutor`` talking to shards it launched), not for
    exposure to untrusted clients.
    """
    return base64.b64encode(pickle.dumps((fn, payload))).decode("ascii")


def run_job_payload(payload_b64: str) -> str:
    """Worker-pool entry for ``job``: decode, call, re-encode the result."""
    fn, arg = pickle.loads(base64.b64decode(payload_b64))
    return base64.b64encode(pickle.dumps(fn(arg))).decode("ascii")


def unpack_job_result(result_b64: str) -> Any:
    return pickle.loads(base64.b64decode(result_b64))


def _simulate_batch_entry(
    sysadg: SysADG, workload_field: str
) -> Dict[str, Any]:
    return simulate_batch_doc(sysadg, workload_field)


_OPS = {
    "map": map_op,
    "estimate": estimate_op,
    "simulate": simulate_op,
    "simulate_batch": _simulate_batch_entry,
    "remap": remap_op,
}


def run_op(op: str, sysadg: SysADG, workload_name: str) -> Dict[str, Any]:
    """Dispatch one compute op against an in-memory design."""
    if op not in _OPS:
        raise BadRequestError(
            f"unknown compute op {op!r}; expected one of "
            f"{', '.join(COMPUTE_OPS)}"
        )
    return _OPS[op](sysadg, workload_name)


def compute_op(
    op: str, design_doc: Dict[str, Any], workload_name: str
) -> Dict[str, Any]:
    """Worker-process entry point: rebuild the design, run the op.

    Takes the serialized design document (not a ``SysADG``) so the job
    pickles cheaply and deterministically to pool workers.
    """
    return run_op(op, sysadg_from_dict(design_doc), workload_name)


def workload_fp(workload_name: str) -> str:
    """Fingerprint of a registry workload's full body, by name.

    A comma-separated list (the ``simulate_batch`` workload field) gets
    a batch fingerprint over the per-name fingerprints, order included.
    """
    if "," in workload_name:
        return fingerprint(
            {
                "kind": "workload_batch",
                "workloads": [
                    workload_fp(n) for n in split_workloads(workload_name)
                ],
            }
        )
    return workload_fingerprint(_resolve_workload(workload_name))


def single_shot(
    op: str, sysadg: SysADG, workload_name: str
) -> Optional[Dict[str, Any]]:
    """The CLI reference path: same doc the server serves, no service.

    Returns ``None`` for an unmappable workload (the CLI renders that as
    a non-zero exit, the server as a structured ``unmappable`` error).
    """
    try:
        return run_op(op, sysadg, workload_name)
    except UnmappableError:
        return None
