"""JSON-lines wire protocol for ``repro serve``.

One request per line, one response per line, both UTF-8 JSON objects.
The transport is any byte stream — the server listens on a unix socket
or localhost TCP; the framing is identical.

Request document::

    {"id": "r1", "op": "map", "overlay": "dsp", "workload": "fir",
     "timeout_s": 5.0, "options": {}}

``op`` is one of :data:`COMPUTE_OPS` (CPU-bound, admission-controlled,
coalesced — ``map``/``estimate``/``simulate``, the multi-workload
``simulate_batch`` whose ``workload`` is a comma-separated list, and
``remap``, the schedule-preserving incremental recompile), the generic
:data:`JOB_OPS` ``job`` (an opaque pickled closure in
``options.payload``, executed on the worker pool — the transport
``SocketJobExecutor`` ships shard work over), or :data:`ADMIN_OPS`
(served inline: ``ping``, ``stats``, ``shutdown``, ``load_overlay``,
``topology``).  ``overlay`` may be omitted when the server holds
exactly one design and may be a registry spec (``name@v2``) when the
server has a registry attached.  ``id`` is echoed back verbatim so
clients may pipeline many requests over one connection.

Response document::

    {"id": "r1", "ok": true, "result": {...}, "error": null,
     "served": {"cache": "compute", "coalesced": false,
                "latency_s": 0.012, "queue_wait_s": 0.001}}

``result`` for compute ops is the canonical result document built by
:mod:`repro.serve.ops` — byte-identical (under ``canonical_dumps``) to
what the single-shot CLI path produces for the same overlay + workload.
On failure ``ok`` is false and ``error`` carries a structured code from
:mod:`repro.serve.errors`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .errors import BadRequestError

#: Bumped whenever a wire document changes incompatibly.
PROTOCOL_VERSION = 1

#: Longest accepted request line (1 MiB) — an unframed client cannot
#: make the server buffer unboundedly.
MAX_LINE_BYTES = 1 << 20

COMPUTE_OPS = ("map", "estimate", "simulate", "simulate_batch", "remap")
JOB_OPS = ("job",)
ADMIN_OPS = ("ping", "stats", "shutdown", "load_overlay", "topology")
ALL_OPS = COMPUTE_OPS + JOB_OPS + ADMIN_OPS


def canonical_dumps(doc: Any) -> str:
    """The one serialization used for results, cache values, and tests.

    Sorted keys + tight separators: two result documents are equal iff
    their canonical dumps are byte-identical.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def encode_line(doc: Dict[str, Any]) -> bytes:
    return (canonical_dumps(doc) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"malformed request line: {exc}") from exc
    if not isinstance(doc, dict):
        raise BadRequestError(
            f"request must be a JSON object, got {type(doc).__name__}"
        )
    return doc


@dataclass
class Request:
    """A parsed, validated request."""

    id: str
    op: str
    overlay: Optional[str] = None
    workload: Optional[str] = None
    timeout_s: Optional[float] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def as_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"id": self.id, "op": self.op}
        if self.overlay is not None:
            doc["overlay"] = self.overlay
        if self.workload is not None:
            doc["workload"] = self.workload
        if self.timeout_s is not None:
            doc["timeout_s"] = self.timeout_s
        if self.options:
            doc["options"] = self.options
        return doc


def parse_request(doc: Dict[str, Any]) -> Request:
    """Validate a decoded request document; raise ``BadRequestError``."""
    op = doc.get("op")
    if op not in ALL_OPS:
        raise BadRequestError(
            f"unknown op {op!r}; expected one of {', '.join(ALL_OPS)}"
        )
    req_id = doc.get("id")
    if not isinstance(req_id, str) or not req_id:
        raise BadRequestError("request 'id' must be a non-empty string")
    overlay = doc.get("overlay")
    if overlay is not None and not isinstance(overlay, str):
        raise BadRequestError("'overlay' must be a string when present")
    workload = doc.get("workload")
    if op in COMPUTE_OPS:
        if not isinstance(workload, str) or not workload:
            raise BadRequestError(f"op {op!r} requires a 'workload' name")
    elif workload is not None and not isinstance(workload, str):
        raise BadRequestError("'workload' must be a string when present")
    timeout_s = doc.get("timeout_s")
    if timeout_s is not None:
        try:
            timeout_s = float(timeout_s)
        except (TypeError, ValueError) as exc:
            raise BadRequestError("'timeout_s' must be a number") from exc
        if timeout_s <= 0:
            raise BadRequestError("'timeout_s' must be positive")
    options = doc.get("options", {})
    if not isinstance(options, dict):
        raise BadRequestError("'options' must be an object when present")
    if op in JOB_OPS:
        payload = options.get("payload")
        if not isinstance(payload, str) or not payload:
            raise BadRequestError(
                "op 'job' requires a non-empty string 'options.payload'"
            )
    return Request(
        id=req_id,
        op=op,
        overlay=overlay,
        workload=workload,
        timeout_s=timeout_s,
        options=options,
    )


def response_doc(
    req_id: str,
    result: Optional[Dict[str, Any]] = None,
    error: Optional[Dict[str, Any]] = None,
    served: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    return {
        "id": req_id,
        "ok": error is None,
        "result": result,
        "error": error,
        "served": served or {},
    }
